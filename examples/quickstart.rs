//! Quickstart: index a handful of real documents and run Sparta.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sparta::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Analyze a tiny corpus of real text with the built-in
    //    tokenizer (lowercasing, stop words, tf/df statistics).
    let docs = [
        "Sparta is a practical parallel algorithm for fast approximate top-k retrieval",
        "The threshold algorithm retrieves the top k objects by aggregating features",
        "Block-max WAND prunes document-order traversal using per-block score bounds",
        "Score-order algorithms traverse posting lists in decreasing impact order",
        "Parallel retrieval on multi-core hardware needs careful synchronization",
        "The cleaner task prunes candidates whose upper bounds fell below the threshold",
        "Verbose voice queries challenge real-time top-k retrieval latency budgets",
        "A shared-nothing parallelization partitions the index by document id",
    ];
    let mut tok = Tokenizer::new();
    let bags: Vec<_> = docs.iter().map(|d| tok.add_document(d)).collect();
    let stats = tok.stats();

    // 2. Build an in-memory inverted index with integer tf-idf scores.
    let index: Arc<dyn Index> =
        Arc::new(IndexBuilder::new(TfIdfScorer).build_memory_from_bags(&bags, &stats));

    // 3. Search. Sparta uses up to m = #terms worker threads.
    let query_text = "parallel top-k retrieval algorithm";
    let query = tok.query(query_text);
    println!("query {query_text:?} -> terms {:?}", query.terms);

    let cfg = SearchConfig::exact(3);
    let exec = DedicatedExecutor::new(query.len().max(1));
    let top = Sparta.search(&index, &query, &cfg, &exec);

    println!("top-{} documents (Sparta, exact):", cfg.k);
    for (rank, hit) in top.hits.iter().enumerate() {
        println!(
            "  #{} doc {} (score {}): {:?}",
            rank + 1,
            hit.doc,
            hit.score,
            docs[hit.doc as usize]
        );
    }

    // 4. Verify against the exhaustive oracle and a baseline.
    let oracle = Oracle::compute(index.as_ref(), &query, cfg.k);
    assert_eq!(oracle.recall(&top.docs()), 1.0, "exact Sparta is exact");
    let bmw = SeqBmw.search(&index, &query, &cfg, &exec);
    println!(
        "agreement with BMW: {:.0}%",
        100.0 * oracle.recall(&bmw.docs())
    );
    println!(
        "work: {} postings scanned, {} heap updates",
        top.work.postings_scanned, top.work.heap_updates
    );
}
