//! Query server: serve a corpus over loopback TCP and query it.
//!
//! ```sh
//! cargo run --release --example query_server
//! ```
//!
//! Builds a small index, starts `sparta-server` on an ephemeral
//! loopback port with its admin plane, then drives it with the
//! blocking [`Client`]: a valid query, a bad request (the connection
//! survives), a walk over the admin endpoints (`/healthz`, `/readyz`,
//! `/metrics`, `/debug/slow`, `/debug/trace`), and a final metrics
//! snapshot showing the admission ledger balancing.

use sparta::prelude::*;
use sparta_obs::ServerMetrics;
use sparta_server::{
    http_get, serve_with_admin, AdmissionConfig, BatchScheduler, Client, ErrorCode, Frame,
    QueryRequest, SlowLogConfig,
};
use std::sync::Arc;

fn main() {
    // 1. Index a tiny corpus (same pipeline as the quickstart).
    let docs = [
        "Sparta is a practical parallel algorithm for fast approximate top-k retrieval",
        "The threshold algorithm retrieves the top k objects by aggregating features",
        "Block-max WAND prunes document-order traversal using per-block score bounds",
        "Score-order algorithms traverse posting lists in decreasing impact order",
        "Parallel retrieval on multi-core hardware needs careful synchronization",
        "The cleaner task prunes candidates whose upper bounds fell below the threshold",
        "Verbose voice queries challenge real-time top-k retrieval latency budgets",
        "A shared-nothing parallelization partitions the index by document id",
    ];
    let mut tok = Tokenizer::new();
    let bags: Vec<_> = docs.iter().map(|d| tok.add_document(d)).collect();
    let stats = tok.stats();
    let index: Arc<dyn Index> =
        Arc::new(IndexBuilder::new(TfIdfScorer).build_memory_from_bags(&bags, &stats));

    // 2. Start the server: 2 search workers, admit 2 in flight, queue 4.
    // Threshold 0 on the slow log so every completion is captured —
    // this demo wants to *show* a record, not wait for a real stall.
    let scheduler = BatchScheduler::new(
        Arc::clone(&index),
        SearchConfig::exact(3),
        2,
        AdmissionConfig::new(2, 4),
        ServerMetrics::new(),
    )
    .with_slow_log(SlowLogConfig {
        threshold_ns: 0,
        capacity: 8,
    });
    let handle = serve_with_admin("127.0.0.1:0", "127.0.0.1:0", scheduler).expect("bind loopback");
    let admin = handle.admin_addr().expect("admin listener bound");
    println!("serving on a loopback port (admin plane beside it)");

    // 3. A valid query over the wire.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let query = tok.query("parallel top-k retrieval algorithm");
    let reply = client
        .query(&QueryRequest {
            k: 3,
            algorithm: "sparta".to_string(),
            terms: query.terms.clone(),
        })
        .expect("query answered");
    match &reply {
        Frame::Response { hits, summary, .. } => {
            println!("top-{} documents (served):", hits.len());
            for (rank, hit) in hits.iter().enumerate() {
                println!(
                    "  #{} doc {} (score {}): {:?}",
                    rank + 1,
                    hit.doc,
                    hit.score,
                    docs[hit.doc as usize]
                );
            }
            println!("work: {} postings scanned", summary.postings_scanned);
        }
        other => panic!("expected a response, got {other:?}"),
    }

    // 4. A bad request gets a typed error and the connection survives.
    let reply = client
        .query(&QueryRequest {
            k: 3,
            algorithm: "nope".to_string(),
            terms: query.terms.clone(),
        })
        .expect("server must answer");
    match &reply {
        Frame::Error { code, message } => {
            assert_eq!(*code, ErrorCode::UnknownAlgorithm);
            println!("rejected as expected: {message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }

    // 5. The admin plane, over real HTTP: liveness, readiness, the
    // Prometheus exposition with the stage decomposition, the slow
    // log (threshold 0, so the query above is in it), and the
    // flight-recorder trace.
    let (status, body) = http_get(admin, "/healthz").expect("healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = http_get(admin, "/readyz").expect("readyz");
    assert_eq!(status, 200);
    println!("admin: healthz ok, readyz ready");

    let (status, metrics) = http_get(admin, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let samples = sparta_obs::parse_exposition(&metrics).expect("exposition parses");
    println!("admin: /metrics exposes {} series, e.g.:", samples.len());
    for line in metrics
        .lines()
        .filter(|l| l.contains("stage_duration_nanoseconds_sum"))
    {
        println!("  {line}");
    }

    // The capture lands just after the response write, so poll.
    let slow = loop {
        let (status, body) = http_get(admin, "/debug/slow").expect("slow log");
        assert_eq!(status, 200);
        if body.contains("\"kind\"") {
            break body;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let doc = sparta_obs::json::parse(&slow).expect("slow log is JSON");
    let records = doc
        .get("records")
        .and_then(sparta_obs::json::Json::as_arr)
        .expect("records");
    println!(
        "admin: /debug/slow holds {} record(s) with stage breakdown + recorder snapshot",
        records.len()
    );

    let (status, trace) = http_get(admin, "/debug/trace").expect("trace");
    assert_eq!(status, 200);
    sparta_obs::validate_trace_json(&trace).expect("valid chrome trace");
    println!(
        "admin: /debug/trace is valid Chrome-trace JSON ({} bytes)",
        trace.len()
    );

    // Drain flips readiness off while the data plane keeps serving.
    handle.drain();
    let (status, _) = http_get(admin, "/readyz").expect("readyz after drain");
    assert_eq!(status, 503);
    println!("admin: readyz flips to 503 on drain (healthz stays 200)");

    // 6. The admission ledger balances: one accepted, one completed.
    let snap = handle.metrics().snapshot();
    println!(
        "admission: accepted={} completed={} shed={} abandoned={}",
        snap.accepted, snap.completed, snap.shed, snap.abandoned
    );
    assert_eq!(snap.accepted, 1);
    assert_eq!(snap.completed, 1);

    handle.shutdown();
    println!("server shut down cleanly");
}
