//! Query server: serve a corpus over loopback TCP and query it.
//!
//! ```sh
//! cargo run --release --example query_server
//! ```
//!
//! Builds a small index, starts `sparta-server` on an ephemeral
//! loopback port, then drives it with the blocking [`Client`]: a
//! valid query, a bad request (the connection survives), and a final
//! metrics snapshot showing the admission ledger balancing.

use sparta::prelude::*;
use sparta_obs::ServerMetrics;
use sparta_server::{
    serve, AdmissionConfig, BatchScheduler, Client, ErrorCode, Frame, QueryRequest,
};
use std::sync::Arc;

fn main() {
    // 1. Index a tiny corpus (same pipeline as the quickstart).
    let docs = [
        "Sparta is a practical parallel algorithm for fast approximate top-k retrieval",
        "The threshold algorithm retrieves the top k objects by aggregating features",
        "Block-max WAND prunes document-order traversal using per-block score bounds",
        "Score-order algorithms traverse posting lists in decreasing impact order",
        "Parallel retrieval on multi-core hardware needs careful synchronization",
        "The cleaner task prunes candidates whose upper bounds fell below the threshold",
        "Verbose voice queries challenge real-time top-k retrieval latency budgets",
        "A shared-nothing parallelization partitions the index by document id",
    ];
    let mut tok = Tokenizer::new();
    let bags: Vec<_> = docs.iter().map(|d| tok.add_document(d)).collect();
    let stats = tok.stats();
    let index: Arc<dyn Index> =
        Arc::new(IndexBuilder::new(TfIdfScorer).build_memory_from_bags(&bags, &stats));

    // 2. Start the server: 2 search workers, admit 2 in flight, queue 4.
    let scheduler = BatchScheduler::new(
        Arc::clone(&index),
        SearchConfig::exact(3),
        2,
        AdmissionConfig::new(2, 4),
        ServerMetrics::new(),
    );
    let handle = serve("127.0.0.1:0", scheduler).expect("bind loopback");
    println!("serving on a loopback port");

    // 3. A valid query over the wire.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let query = tok.query("parallel top-k retrieval algorithm");
    let reply = client
        .query(&QueryRequest {
            k: 3,
            algorithm: "sparta".to_string(),
            terms: query.terms.clone(),
        })
        .expect("query answered");
    match &reply {
        Frame::Response { hits, summary, .. } => {
            println!("top-{} documents (served):", hits.len());
            for (rank, hit) in hits.iter().enumerate() {
                println!(
                    "  #{} doc {} (score {}): {:?}",
                    rank + 1,
                    hit.doc,
                    hit.score,
                    docs[hit.doc as usize]
                );
            }
            println!("work: {} postings scanned", summary.postings_scanned);
        }
        other => panic!("expected a response, got {other:?}"),
    }

    // 4. A bad request gets a typed error and the connection survives.
    let reply = client
        .query(&QueryRequest {
            k: 3,
            algorithm: "nope".to_string(),
            terms: query.terms.clone(),
        })
        .expect("server must answer");
    match &reply {
        Frame::Error { code, message } => {
            assert_eq!(*code, ErrorCode::UnknownAlgorithm);
            println!("rejected as expected: {message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }

    // 5. The admission ledger balances: one accepted, one completed.
    let snap = handle.metrics().snapshot();
    println!(
        "admission: accepted={} completed={} shed={} abandoned={}",
        snap.accepted, snap.completed, snap.shed, snap.abandoned
    );
    assert_eq!(snap.accepted, 1);
    assert_eq!(snap.completed, 1);

    handle.shutdown();
    println!("server shut down cleanly");
}
