//! The paper's motivating real-time analytics workload (§1): "a
//! real-time analytics engine might keep daily lists of application
//! access statistics — the number of users accessing every application
//! on a given day. A query may then retrieve the popular applications
//! over a ten-day period by aggregating over ten lists."
//!
//! Here each *term* is a day, each *document* is an application, and a
//! posting's score is that day's access count. Top-k over a 10-term
//! query = the TopN primitive of real-time analytics databases.
//!
//! ```sh
//! cargo run --release --example analytics_topn
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparta::index::Posting;
use sparta::prelude::*;
use std::sync::Arc;

const APPS: u32 = 200_000;
const DAYS: u32 = 10;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // Synthesize per-day access lists with app popularity following a
    // Zipf law and day-to-day noise (weekend dips, releases, …).
    let zipf = sparta::corpus::zipf::Zipf::new(u64::from(APPS), 1.05);
    let base: Vec<u64> = (0..APPS)
        .map(|app| {
            // popularity rank = permuted app id
            let rank = u64::from(app.wrapping_mul(2654435761) % APPS) + 1;
            (1e7 * zipf.pmf(rank)) as u64 + 1
        })
        .collect();
    let lists: Vec<Vec<Posting>> = (0..DAYS)
        .map(|_| {
            (0..APPS)
                .map(|app| {
                    let noise: u64 = rng.gen_range(70..130);
                    let count = (base[app as usize] * noise / 100).clamp(1, u64::from(u32::MAX));
                    Posting::new(app, count as u32)
                })
                .collect()
        })
        .collect();

    let index: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(APPS)));
    // The 10-day TopN query: aggregate daily counts over all days.
    let query = Query::new((0..DAYS).collect());
    let k = 20;
    let cfg = SearchConfig::exact(k);
    let exec = DedicatedExecutor::new(4);

    let t0 = std::time::Instant::now();
    let top = Sparta.search(&index, &query, &cfg, &exec);
    let sparta_t = t0.elapsed();

    println!("top-{k} applications by {DAYS}-day access count (Sparta, {sparta_t:.1?}):");
    for (rank, hit) in top.hits.iter().take(10).enumerate() {
        println!(
            "  #{:<2} app-{:<7} {:>12} accesses",
            rank + 1,
            hit.doc,
            hit.score
        );
    }
    println!("  … plus {} more", top.hits.len().saturating_sub(10));

    // Validate against the oracle and compare the brute-force cost.
    let t0 = std::time::Instant::now();
    let oracle = Oracle::compute(index.as_ref(), &query, k);
    let brute_t = t0.elapsed();
    assert_eq!(oracle.recall(&top.docs()), 1.0);
    println!(
        "\nSparta scanned {} of {} postings ({:.1}%); brute force took {brute_t:.1?}",
        top.work.postings_scanned,
        u64::from(APPS * DAYS),
        100.0 * top.work.postings_scanned as f64 / f64::from(APPS * DAYS),
    );

    // The approximate variant answers dashboards-grade queries faster.
    let approx = cfg.with_delta(Some(std::time::Duration::from_millis(5)));
    let t0 = std::time::Instant::now();
    let a = Sparta.search(&index, &query, &approx, &exec);
    println!(
        "approximate (Δ = 5 ms): {:.1?}, recall {:.1}%",
        t0.elapsed(),
        100.0 * oracle.recall(&a.docs())
    );
}
