//! Query tracing spans, executor metrics, and Prometheus exposition.
//!
//! ```sh
//! cargo run --release --example observability [seed]
//! ```
//!
//! Runs one traced Sparta query under the seeded
//! [`DeterministicExecutor`] with a logical-step clock — replaying the
//! seed reproduces the span vector bit-for-bit — then runs the same
//! query on an instrumented [`DedicatedExecutor`] and renders its
//! metrics in Prometheus text exposition format.

use sparta::prelude::*;
use sparta_obs::export::exec_snapshot_text;
use sparta_obs::{phase_totals, ClockMode, ExecMetrics};
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    let corpus = SynthCorpus::build(CorpusModel::tiny(7));
    let index: Arc<dyn Index> = Arc::new(IndexBuilder::new(TfIdfScorer).build_memory(&corpus));
    let query = QueryLog::generate(corpus.stats(), 1, 4, 11)
        .all()
        .next()
        .expect("query")
        .clone();

    // 1. Traced run under the deterministic executor: the logical
    //    clock stamps spans with scheduling steps, not nanoseconds.
    let cfg = SearchConfig::exact(10)
        .with_seg_size(64)
        .with_spans(true)
        .with_clock(ClockMode::Logical);
    let run = |s: u64| Sparta.search(&index, &query, &cfg, &DeterministicExecutor::new(s));
    let a = run(seed);
    let spans = a.spans.as_deref().expect("spans enabled");
    println!(
        "seed {seed}: {} spans, phase totals (logical ticks):",
        spans.len()
    );
    for t in phase_totals(spans) {
        println!(
            "  {:<13} count {:>3}  ticks {:>4}",
            t.phase.as_str(),
            t.count,
            t.total_ticks
        );
    }

    // 2. Replay: same seed => bit-identical span vector and results.
    let b = run(seed);
    assert_eq!(a.spans, b.spans, "span replay diverged");
    assert_eq!(a.hits, b.hits, "result replay diverged");
    assert_eq!(a.work, b.work, "work-counter replay diverged");
    println!("replay of seed {seed}: spans bit-identical across runs");

    // 3. The same query on an instrumented thread-pool executor, its
    //    metrics scraped into Prometheus text exposition format.
    let metrics = ExecMetrics::new(2);
    let exec = DedicatedExecutor::instrumented(2, Arc::clone(&metrics));
    let r = Sparta.search(&index, &query, &SearchConfig::exact(10), &exec);
    assert_eq!(a.docs(), r.docs(), "instrumented run changed results");
    let snap = metrics.snapshot();
    assert!(snap.jobs_run > 0, "no jobs observed");
    assert_eq!(snap.jobs_panicked, 0, "unexpected panics");
    let text = exec_snapshot_text("dedicated", &snap);
    let mut families: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split(' ').next())
        .collect();
    families.sort_unstable();
    println!(
        "prometheus exposition ({} metric families):",
        families.len()
    );
    for f in families {
        println!("  {f}");
    }
}
