//! Deterministic schedule replay and fault injection.
//!
//! ```sh
//! cargo run --release --example determinism [seed]
//! ```
//!
//! Runs the same Sparta query under the seeded single-threaded
//! [`DeterministicExecutor`]: replaying a seed reproduces the exact
//! interleaving bit-for-bit, different seeds explore different
//! schedules, and a [`FaultPlan`] injects panics / delays / lost
//! continuations at chosen scheduling steps.

use sparta::prelude::*;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    // A small synthetic corpus (the paper's ClueWeb-like generator).
    let corpus = SynthCorpus::build(CorpusModel::tiny(7));
    let index: Arc<dyn Index> = Arc::new(IndexBuilder::new(TfIdfScorer).build_memory(&corpus));
    let query = QueryLog::generate(corpus.stats(), 1, 4, 11)
        .all()
        .next()
        .expect("query")
        .clone();
    let cfg = SearchConfig::exact(10).with_seg_size(64);
    let oracle = Oracle::compute(index.as_ref(), &query, cfg.k);

    // 1. Same seed => bit-identical results AND work counters.
    let run = |exec: &DeterministicExecutor| Sparta.search(&index, &query, &cfg, exec);
    let a = run(&DeterministicExecutor::new(seed));
    let b = run(&DeterministicExecutor::new(seed));
    assert_eq!(a.hits, b.hits);
    assert_eq!(a.work, b.work);
    println!(
        "seed {seed}: replay is bit-identical ({} hits, {} postings scanned, {} cleaner passes)",
        a.hits.len(),
        a.work.postings_scanned,
        a.work.cleaner_passes
    );

    // 2. Different seeds explore different schedules; results never change.
    let mut profiles = std::collections::HashSet::new();
    for s in 0..16 {
        let r = run(&DeterministicExecutor::new(s));
        assert_eq!(oracle.recall(&r.docs()), 1.0, "seed {s} lost recall");
        assert_eq!(r.work.docmap_final, r.hits.len() as u64, "Eq. 2 at stop");
        profiles.insert((
            r.work.postings_scanned,
            r.work.cleaner_passes,
            r.work.docmap_peak,
        ));
    }
    println!(
        "16 seeds -> {} distinct schedule fingerprints, recall 1.0 on all",
        profiles.len()
    );

    // 3. Inject a panicking job: it is caught, counted, and the query
    //    still returns the exact top-k.
    let faulty = DeterministicExecutor::new(seed).with_faults(FaultPlan::none().panic_at(3));
    let r = run(&faulty);
    assert_eq!(r.work.jobs_panicked, 1);
    assert_eq!(oracle.recall(&r.docs()), 1.0);
    println!(
        "panic at step 3: jobs_panicked = {}, recall still {:.1}",
        r.work.jobs_panicked,
        oracle.recall(&r.docs())
    );

    // 4. Drop a continuation: the query may lose recall but must still
    //    terminate (the cleaner's starvation guard stops the run).
    let lossy = DeterministicExecutor::new(seed).with_faults(FaultPlan::none().drop_at(2));
    let r = run(&lossy);
    println!(
        "dropped continuation at step 2: terminated with {} hits (recall {:.2})",
        r.hits.len(),
        oracle.recall(&r.docs())
    );
}
