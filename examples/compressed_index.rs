//! Compressed posting backend: build one corpus, serve it raw and
//! compressed, and show that every algorithm family returns identical
//! results while the compressed side reports its footprint win and
//! decode traffic.
//!
//! ```sh
//! cargo run --release --example compressed_index [seed]
//! ```

use sparta::index::{IndexBuilder, IndexKind};
use sparta::prelude::*;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    // 1. One synthetic corpus, two backends from the same postings.
    let corpus = SynthCorpus::build(CorpusModel::clueweb_sim(6_000, seed));
    let builder = IndexBuilder::new(TfIdfScorer);
    let raw: Arc<dyn Index> = Arc::from(builder.build_kind(&corpus, IndexKind::Raw));
    let comp: Arc<dyn Index> = Arc::from(builder.build_kind(&corpus, IndexKind::Compressed));

    let rf = raw.footprint().expect("raw footprint").total();
    let cf = comp.footprint().expect("compressed footprint").total();
    println!(
        "footprint: raw {rf} B, compressed {cf} B ({:.2}x smaller)",
        rf as f64 / cf as f64
    );

    // 2. Run one algorithm per traversal family on both backends;
    //    results must be bit-identical (exact codebook scores).
    let log = QueryLog::generate(corpus.stats(), 4, 6, seed);
    let cfg = SearchConfig::exact(10);
    for name in ["sparta", "pjass", "pbmw", "maxscore", "pra"] {
        let algo = sparta::core::algorithm_by_name(name).expect("registered algorithm");
        for q in log.of_length(4) {
            // Same seeded schedule on both backends so parallel
            // algorithms break k-boundary score ties identically.
            let a = algo.search(&raw, q, &cfg, &DeterministicExecutor::new(seed));
            let b = algo.search(&comp, q, &cfg, &DeterministicExecutor::new(seed));
            assert_eq!(a.docs(), b.docs(), "{name}: doc ids diverged");
            assert_eq!(a.scores(), b.scores(), "{name}: scores diverged");
        }
        println!("{name}: identical top-k on raw and compressed");
    }

    // 3. The compressed index accounts every block it decodes.
    let (blocks, bytes) = comp
        .io_stats()
        .expect("compressed backend exposes IoStats")
        .decode_snapshot();
    println!("decode traffic: {blocks} blocks, {bytes} compressed bytes");
    assert!(blocks > 0, "queries above must have decoded blocks");
}
