//! Recall dynamics (Figure 3f): how fast each algorithm accrues the
//! true top-k over its running time. Prints an ASCII recall-vs-time
//! curve per algorithm for one long query.
//!
//! ```sh
//! cargo run --release --example recall_dynamics [num_docs]
//! ```

use sparta::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let num_docs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let corpus = SynthCorpus::build(CorpusModel::clueweb_sim(num_docs, 5));
    let index: Arc<dyn Index> = Arc::new(IndexBuilder::new(TfIdfScorer).build_memory(&corpus));
    let k = (num_docs / 100).clamp(10, 1000) as usize;

    // One 12-term query, 12 workers — the Figure 3f setup.
    let log = QueryLog::generate(corpus.stats(), 1, 12, 13);
    let q = &log.of_length(12)[0];
    let oracle = Oracle::compute(index.as_ref(), q, k);
    let exec = DedicatedExecutor::new(4);
    let cfg = SearchConfig::exact(k).with_trace(true);

    println!("recall dynamics, 12-term query, k = {k}, {num_docs} docs\n");
    let samples = 24;
    for name in ["sparta", "pra", "pjass", "pbmw", "pnra"] {
        let algo = sparta::core::algorithm_by_name(name).unwrap();
        let r = algo.search(&index, q, &cfg, &exec);
        let trace = r.trace.clone().expect("trace enabled");
        let horizon = r.elapsed.max(Duration::from_micros(100));
        let curve = sparta::core::recall::recall_dynamics(&trace, &oracle, horizon, samples);
        print!("{name:>7} |");
        for (_, recall) in &curve {
            let c = match (recall * 10.0) as u32 {
                0 => ' ',
                1..=2 => '.',
                3..=5 => 'o',
                6..=8 => 'O',
                _ => '#',
            };
            print!("{c}");
        }
        println!(
            "| total {:.1?}, final recall {:.1}%",
            r.elapsed,
            100.0 * oracle.recall(&r.docs())
        );
        if let Some(t80) = sparta::core::recall::time_to_recall(&curve, 0.8) {
            println!("{:>8} 80% recall after {:.1?}", "", t80);
        }
    }
    println!("\n( ' '<10%  '.'<30%  'o'<60%  'O'<90%  '#'>=90% of exact top-k )");
}
