//! The paper's web-search case study in miniature (§5): build a
//! synthetic ClueWeb-like corpus, index it, and race all six parallel
//! algorithms on AOL-like queries of growing length.
//!
//! ```sh
//! cargo run --release --example web_search [num_docs]
//! ```

use sparta::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let num_docs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let threads = 4;
    let k = (num_docs / 100).clamp(10, 1000) as usize;

    println!("building synthetic ClueWeb-like corpus: {num_docs} docs …");
    let t0 = Instant::now();
    let corpus = SynthCorpus::build(CorpusModel::clueweb_sim(num_docs, 42));
    println!(
        "  vocab {} terms, avg doc len {:.0} tokens ({:.1?})",
        corpus.stats().vocab_size(),
        corpus.stats().avg_doc_len,
        t0.elapsed()
    );

    let t0 = Instant::now();
    let index: Arc<dyn Index> = Arc::new(IndexBuilder::new(TfIdfScorer).build_memory(&corpus));
    println!("indexed in {:.1?}", t0.elapsed());

    let log = QueryLog::generate(corpus.stats(), 5, 12, 7);
    let exec = DedicatedExecutor::new(threads);
    let cfg = SearchConfig::exact(k);

    println!("\nmean exact latency by query length (k = {k}, {threads} threads):");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "terms", "sparta", "pra", "pnra", "snra", "pbmw", "pjass"
    );
    for m in [2usize, 4, 8, 12] {
        print!("{m:>7}");
        for algo in sparta::core::registry::case_study_algorithms() {
            // registry order: sparta, pnra, snra, pra, pbmw, pjass —
            // reorder for the header above.
            let _ = algo;
        }
        for name in ["sparta", "pra", "pnra", "snra", "pbmw", "pjass"] {
            let algo = sparta::core::algorithm_by_name(name).unwrap();
            let t0 = Instant::now();
            let mut checked = false;
            for q in log.of_length(m) {
                let r = algo.search(&index, q, &cfg, &exec);
                if !checked {
                    // Spot-check exactness on the first query.
                    let oracle = Oracle::compute(index.as_ref(), q, k);
                    assert_eq!(oracle.recall(&r.docs()), 1.0, "{name} not exact");
                    checked = true;
                }
            }
            let mean = t0.elapsed() / log.of_length(m).len() as u32;
            print!(" {:>9.2?}", mean);
        }
        println!();
    }
    println!("\n(every cell spot-checked against the exhaustive oracle)");
}
