//! Verbose (voice) queries — the workload Sparta was built for (§1:
//! "more than 5% of voice search queries exceed 10 terms", and
//! "state-of-the-art algorithms fail to process long queries in
//! real-time").
//!
//! Generates the production voice-query mix of Guy [SIGIR'16] (mean
//! length 4.2, σ 2.96) and compares Sparta's high-recall variant
//! against pBMW and pJASS on it, reporting mean latency, p95 latency
//! and recall — the axes of the paper's Figures 3a/3b and Table 4.
//!
//! ```sh
//! cargo run --release --example verbose_queries [num_docs]
//! ```

use sparta::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let num_docs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let corpus = SynthCorpus::build(CorpusModel::clueweb_sim(num_docs, 11));
    let index: Arc<dyn Index> = Arc::new(IndexBuilder::new(TfIdfScorer).build_memory(&corpus));
    let k = (num_docs / 100).clamp(10, 1000) as usize;

    let log = QueryLog::generate(corpus.stats(), 20, 12, 3);
    let mix = log.voice_mix(60, 9);
    let lengths: Vec<usize> = mix.iter().map(|q| q.len()).collect();
    println!(
        "voice mix: {} queries, mean length {:.1}, max {}",
        mix.len(),
        lengths.iter().sum::<usize>() as f64 / lengths.len() as f64,
        lengths.iter().max().unwrap()
    );

    let exec = DedicatedExecutor::new(4);
    let high = SearchConfig::exact(k)
        .with_delta(Some(Duration::from_millis(10)))
        .with_bmw_f(1.2)
        .with_jass_p(0.3);

    println!(
        "\n{:<8} {:>10} {:>10} {:>8}",
        "algo", "mean", "p95", "recall"
    );
    for name in ["sparta", "pbmw", "pjass", "pra"] {
        let algo = sparta::core::algorithm_by_name(name).unwrap();
        let mut times = Vec::new();
        let mut recall_sum = 0.0;
        for q in &mix {
            let t0 = Instant::now();
            let r = algo.search(&index, q, &high, &exec);
            times.push(t0.elapsed());
            let oracle = Oracle::compute(index.as_ref(), q, k);
            recall_sum += oracle.recall(&r.docs());
        }
        times.sort();
        let mean: Duration = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{:<8} {:>10.2?} {:>10.2?} {:>7.1}%",
            name,
            mean,
            percentile(&times, 0.95),
            100.0 * recall_sum / mix.len() as f64
        );
    }
    println!("\n(high-recall variants: Δ=10ms for TA-family, f=1.2, p=0.3)");
}
