//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, range/tuple/vec strategies, `prop_map`, and the
//! `prop_assert*` macros — over a seeded deterministic PRNG. There is
//! **no shrinking**: a failing case reports the base seed and case
//! index instead, and `SPARTA_TEST_SEED=<seed>` replays the exact same
//! generated inputs (the same knob the deterministic executor uses, so
//! one seed story covers the whole suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `len` — `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case-loop driver behind [`proptest!`](crate::proptest).

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (`proptest::test_runner::Config` subset).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no forking).
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                fork: false,
            }
        }
    }

    /// A failed property with its explanation.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Base seed: `SPARTA_TEST_SEED` when set, else a fixed default so
    /// plain `cargo test` is reproducible run to run.
    pub fn base_seed() -> u64 {
        match std::env::var("SPARTA_TEST_SEED") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("SPARTA_TEST_SEED must be a u64, got {v:?}")),
            Err(_) => 0xC0FF_EE00,
        }
    }

    /// Runs `f` over `cfg.cases` generated cases. Each case's PRNG is
    /// derived from (base seed, test name, case index) so tests are
    /// independent and individually replayable.
    pub fn run<F>(test_name: &str, cfg: ProptestConfig, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = base_seed();
        for case in 0..cfg.cases {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            (base, test_name, case).hash(&mut h);
            let mut rng = StdRng::seed_from_u64(h.finish());
            if let Err(TestCaseError(msg)) = f(&mut rng) {
                panic!(
                    "property `{test_name}` failed at case {case}/{}: {msg}\n\
                     replay: SPARTA_TEST_SEED={base} cargo test {test_name}",
                    cfg.cases
                );
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a normal test that generates inputs for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(stringify!($name), cfg, |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}: {}", format!($($fmt)+));
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}: {}", format!($($fmt)+));
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = crate::collection::vec((0u32..10, 0u64..5), 1..20);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 10 && b < 5));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = (0u32..5).prop_map(|x| x * 100);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 100, 0);
            assert!(v < 500);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_patterns(x in 0u32..10, (a, b) in (0u8..3, 0u8..3)) {
            prop_assert!(x < 10);
            prop_assert!(a < 3 && b < 3, "a={} b={}", a, b);
            prop_assert_eq!(a / 3, 0);
            prop_assert_ne!(x + 1, 0);
        }
    }

    #[test]
    fn failing_property_names_seed() {
        let err = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                "demo",
                ProptestConfig {
                    cases: 1,
                    ..ProptestConfig::default()
                },
                |_rng| Err(crate::test_runner::TestCaseError("boom".into())),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("SPARTA_TEST_SEED="), "got: {msg}");
        assert!(msg.contains("boom"), "got: {msg}");
    }
}
