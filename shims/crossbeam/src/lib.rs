//! Offline stand-in for the `crossbeam` crate (see shims/README.md).
//! Only the pieces this workspace uses are provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Utilities (`crossbeam::utils`).
pub mod utils {
    /// Pads and aligns a value to the length of a cache line, so two
    /// `CachePadded` values never share a line (no false sharing).
    ///
    /// 128 bytes covers the common cases: x86_64 prefetches line pairs
    /// and recent aarch64 cores use 128-byte lines.
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwraps the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn aligned_and_transparent() {
            let c = CachePadded::new(7u64);
            assert_eq!(*c, 7);
            assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
            assert_eq!(c.into_inner(), 7);
        }
    }
}
