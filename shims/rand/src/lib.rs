//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the surface it uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] here is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a given seed, statistically solid for synthetic
//! corpora and tests, but a *different stream* than upstream rand's
//! ChaCha12-based `StdRng`. Anything persisted must therefore record
//! the generator alongside the seed (the corpus builders do).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the uniform "standard" distribution
/// (`rng.gen::<T>()`): full range for integers, `[0, 1)` for floats.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = rng.gen();
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.gen::<u64>(), "different seed, different stream");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(10u32..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(0usize..=5);
            assert!(b <= 5);
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        // Every value of a small range appears (sanity against
        // off-by-one or bias catastrophes).
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dyn_rng_usable() {
        // `R: Rng + ?Sized` call sites (zipf sampler) must compile and run.
        fn draw(rng: &mut dyn super::RngCore) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
