//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkId`], [`Throughput`], benchmark groups with
//! `sample_size`/`warm_up_time`/`measurement_time`/`throughput`, and
//! `Bencher::iter` — backed by a simple wall-clock loop that prints
//! mean per-iteration times as plain text. No statistics, outlier
//! rejection, or HTML reports; numbers are indicative, not rigorous.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, passed as `&mut Criterion` to each
/// target registered in [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores
    /// the standard flags (it exists so `criterion_group!` expansions
    /// and user code calling it keep compiling).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Units-of-work declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, &id.label, b.mean, self.throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Statistics finalization in real criterion; a
    /// no-op here.)
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Measures `routine`, storing the mean per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: up to sample_size iterations within the budget.
        let mut iters = 0u32;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if iters as usize >= self.sample_size || start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean = start.elapsed() / iters;
    }
}

fn report(group: &str, label: &str, mean: Duration, throughput: Option<Throughput>) {
    match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {group}/{label}: {mean:?}/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {group}/{label}: {mean:?}/iter ({rate:.0} B/s)");
        }
        _ => println!("bench {group}/{label}: {mean:?}/iter"),
    }
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_demo");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
