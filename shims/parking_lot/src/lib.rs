//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses, implemented on top of
//! `std::sync`. Semantics match `parking_lot` where the workspace
//! depends on them:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); a poisoned std lock is recovered transparently, which
//!   matches `parking_lot`'s no-poisoning behaviour.
//! * [`Condvar::wait`] / [`Condvar::wait_for`] take a `&mut MutexGuard`
//!   from this crate's [`Mutex`].
//!
//! Performance differs from the real crate (std mutexes are futex-based
//! on Linux and close enough for tests and benches at this scale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires
    /// exclusive access to the mutex itself, so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with this crate's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot has no poisoning; the shim must recover too.
        assert_eq!(*m.lock(), 0);
    }
}
