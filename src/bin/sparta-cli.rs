//! `sparta-cli` — index plain text and search it from the shell.
//!
//! ```sh
//! # Index a file (one document per line) into ./idx
//! sparta-cli index corpus.txt ./idx
//!
//! # Top-10 with Sparta (default), 4 threads
//! sparta-cli search ./idx "parallel retrieval algorithms"
//!
//! # Any algorithm from the registry, custom k/threads
//! sparta-cli search ./idx "query" --algo pbmw --k 20 --threads 8
//! ```
//!
//! The index directory holds the binary posting files plus `vocab.txt`
//! (one term per line, line number = term id) so queries can be
//! analyzed with the same vocabulary at search time.

#![forbid(unsafe_code)]

use sparta::prelude::*;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("index") if args.len() >= 3 => cmd_index(&args[1], &args[2]),
        Some("search") if args.len() >= 3 => cmd_search(&args[1], &args[2], &args[3..]),
        _ => {
            eprintln!(
                "usage:\n  sparta-cli index <text-file> <index-dir>\n  \
                 sparta-cli search <index-dir> <query> [--algo NAME] [--k N] [--threads N] [--exact]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_index(text_file: &str, out_dir: &str) -> Result<(), String> {
    let file = std::fs::File::open(text_file).map_err(|e| format!("open {text_file}: {e}"))?;
    let mut tok = Tokenizer::new();
    let mut bags = Vec::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|e| e.to_string())?;
        bags.push(tok.add_document(&line));
    }
    if bags.is_empty() {
        return Err("no documents (file is empty)".into());
    }
    let stats = tok.stats();
    let builder = IndexBuilder::new(TfIdfScorer);
    // Build in memory, then persist via the streaming writer.
    let mem = builder.build_memory_from_bags(&bags, &stats);
    let mut writer = sparta::index::storage::IndexWriter::create(
        out_dir,
        stats.num_docs,
        mem.num_terms(),
        sparta::index::DEFAULT_BLOCK_SIZE,
    )
    .map_err(|e| format!("create index at {out_dir}: {e}"))?;
    for t in 0..mem.num_terms() {
        let postings = mem
            .term_data(t)
            .map(|td| td.doc_order.as_ref().clone())
            .unwrap_or_default();
        writer.add_term(postings).map_err(|e| e.to_string())?;
    }
    writer.finish().map_err(|e| e.to_string())?;

    // Persist the vocabulary (line number = term id).
    let mut vf = std::io::BufWriter::new(
        std::fs::File::create(Path::new(out_dir).join("vocab.txt")).map_err(|e| e.to_string())?,
    );
    for t in 0..mem.num_terms() {
        writeln!(vf, "{}", tok.term_str(t).unwrap_or("")).map_err(|e| e.to_string())?;
    }
    vf.flush().map_err(|e| e.to_string())?;

    println!(
        "indexed {} documents, {} terms -> {out_dir}",
        stats.num_docs,
        mem.num_terms()
    );
    Ok(())
}

fn cmd_search(index_dir: &str, query_text: &str, flags: &[String]) -> Result<(), String> {
    let mut algo_name = "sparta".to_string();
    let mut k = 10usize;
    let mut threads = 4usize;
    let mut exact = true;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--algo" => algo_name = it.next().ok_or("--algo needs a value")?.clone(),
            "--k" => {
                k = it
                    .next()
                    .ok_or("--k needs a value")?
                    .parse()
                    .map_err(|e| format!("--k: {e}"))?
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--exact" => exact = true,
            "--approx" => exact = false,
            other => return Err(format!("unknown flag {other}")),
        }
    }

    let index: Arc<dyn Index> = Arc::new(
        DiskIndex::open(index_dir, IoModel::free())
            .map_err(|e| format!("open index {index_dir}: {e}"))?,
    );
    // Load the vocabulary and analyze the query the same way the
    // indexer did.
    let vocab_path = Path::new(index_dir).join("vocab.txt");
    let vocab = std::fs::read_to_string(&vocab_path)
        .map_err(|e| format!("read {}: {e}", vocab_path.display()))?;
    let term_of: std::collections::HashMap<&str, u32> = vocab
        .lines()
        .enumerate()
        .map(|(i, s)| (s, i as u32))
        .collect();
    let analyzer = Tokenizer::new();
    let terms: Vec<u32> = analyzer
        .tokenize(query_text)
        .iter()
        .filter_map(|t| term_of.get(t.as_str()).copied())
        .collect();
    if terms.is_empty() {
        return Err("no query term matches the index vocabulary".into());
    }
    let query = Query::new(terms);

    let algo = sparta::core::algorithm_by_name(&algo_name)
        .ok_or_else(|| format!("unknown algorithm {algo_name} (try: sparta pra pnra snra pbmw pjass nra ra bmw wand maxscore jass)"))?;
    let cfg = if exact {
        SearchConfig::exact(k)
    } else {
        SearchConfig::exact(k).with_delta(Some(std::time::Duration::from_millis(10)))
    };
    let exec = DedicatedExecutor::new(threads.max(1));
    let t0 = std::time::Instant::now();
    let top = algo.search(&index, &query, &cfg, &exec);
    let dt = t0.elapsed();
    println!(
        "{} results in {:.2?} ({} postings scanned, algo {}):",
        top.hits.len(),
        dt,
        top.work.postings_scanned,
        algo.name()
    );
    for (rank, h) in top.hits.iter().enumerate() {
        println!("{:>4}. doc {:<10} score {}", rank + 1, h.doc, h.score);
    }
    Ok(())
}
