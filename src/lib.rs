//! # Sparta — scalable parallel top-k retrieval
//!
//! A from-scratch Rust reproduction of *"Scalable Top-K Retrieval with
//! Sparta"* (Sheffi, Basin, Bortnikov, Carmel, Keidar — PPoPP 2020):
//! the Sparta algorithm, every substrate it depends on, and every
//! baseline it is evaluated against.
//!
//! ## Quick start
//!
//! ```
//! use sparta::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A corpus. Here: the paper's synthetic ClueWeb-like generator
//! //    at toy scale (use `Tokenizer` for real text instead).
//! let corpus = SynthCorpus::build(CorpusModel::tiny(42));
//!
//! // 2. An inverted index with tf-idf integer scoring.
//! let index: Arc<dyn Index> =
//!     Arc::new(IndexBuilder::new(TfIdfScorer).build_memory(&corpus));
//!
//! // 3. A query and a search. Sparta uses up to m worker threads.
//! let query = Query::new(vec![3, 17, 29]);
//! let cfg = SearchConfig::exact(10);
//! let exec = DedicatedExecutor::new(3);
//! let top = Sparta.search(&index, &query, &cfg, &exec);
//!
//! assert_eq!(top.hits.len(), 10);
//! assert!(top.hits.windows(2).all(|w| w[0].score >= w[1].score));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`collections`] | striped map, bounded/mutable top-k, swap cell |
//! | [`corpus`] | synthetic corpus, tokenizer, scoring, query logs |
//! | [`index`] | posting lists, block-max metadata, memory/disk indexes |
//! | [`exec`] | job queue, per-query executor, shared worker pool |
//! | [`core`] | Sparta + all baselines (pRA, pNRA, sNRA, pBMW, pJASS, …) |

#![forbid(unsafe_code)]

pub use sparta_collections as collections;
pub use sparta_core as core;
pub use sparta_corpus as corpus;
pub use sparta_exec as exec;
pub use sparta_index as index;

/// One-stop imports for typical use.
pub mod prelude {
    pub use sparta_core::config::{SearchConfig, Variant};
    pub use sparta_core::docorder::{MaxScore, PBmw, SeqBmw, Wand};
    pub use sparta_core::jass::Jass;
    pub use sparta_core::oracle::Oracle;
    pub use sparta_core::pjass::PJass;
    pub use sparta_core::pnra::PNra;
    pub use sparta_core::pra::PRa;
    pub use sparta_core::result::{SearchHit, TopKResult};
    pub use sparta_core::snra::SNra;
    pub use sparta_core::sparta::Sparta;
    pub use sparta_core::ta::{SeqNra, SeqRa};
    pub use sparta_core::Algorithm;
    pub use sparta_corpus::querylog::{QueryLog, VoiceLengthDistribution};
    pub use sparta_corpus::scoring::{Bm25Scorer, Scorer, TfIdfScorer};
    pub use sparta_corpus::synth::{CorpusModel, SynthCorpus};
    pub use sparta_corpus::tokenizer::Tokenizer;
    pub use sparta_corpus::types::{DocId, Query, TermId};
    pub use sparta_exec::{
        DedicatedExecutor, DeterministicExecutor, Executor, FaultPlan, WorkerPool,
    };
    pub use sparta_index::{DiskIndex, InMemoryIndex, Index, IndexBuilder, IoModel};
}
