//! Stall watchdog: detects quiet hangs and dumps the flight recorder.
//!
//! The failure class this targets (ROADMAP: the throughput-pool
//! lost-wakeup hang) is the worst kind to debug in CI: every thread is
//! parked, no progress counter moves, and the job's only trace is a
//! timeout hours later with zero state attached. The watchdog inverts
//! that: a monitor thread polls the [`FlightRecorder`]'s monotone
//! `total_events()` counter, and when **no worker has recorded an
//! event for a configurable quiet period while work is still
//! outstanding**, it dumps every ring plus the executor's queue/pool
//! state to stderr (and optionally a file) — the last thing each
//! worker did, straight from its ring.
//!
//! The watchdog deliberately reads only monotone counters and a
//! caller-supplied `probe` closure; it takes no executor locks itself
//! beyond what the probe does, so it cannot deadlock with the thing it
//! is watching (the probe must scope its own guards — see
//! [`WorkerPool::watchdog`](crate::WorkerPool::watchdog)).

use sparta_obs::{dump_text, FlightRecorder};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Callback invoked with the full dump text each time the watchdog
/// fires — the hook the server's slow-query log uses to capture wedge
/// evidence from a live process instead of scraping stderr.
pub type DumpHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Tunables for [`StallWatchdog::spawn`].
#[derive(Clone)]
pub struct WatchdogConfig {
    /// How long `total_events()` must stay flat (with work outstanding)
    /// before the watchdog declares a stall and dumps.
    pub quiet: Duration,
    /// Poll interval of the monitor thread.
    pub poll: Duration,
    /// If set, the dump is also written to this file (the stderr copy
    /// always happens).
    pub dump_path: Option<PathBuf>,
    /// Maximum number of dumps per watchdog lifetime; after this the
    /// monitor keeps polling but stays silent (a wedged pool would
    /// otherwise re-dump every quiet period).
    pub max_dumps: usize,
    /// If set, called with the dump text on every firing (in addition
    /// to stderr and `dump_path`). Runs on the monitor thread; it must
    /// not block on the executor it is watching.
    pub on_dump: Option<DumpHook>,
}

impl std::fmt::Debug for WatchdogConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchdogConfig")
            .field("quiet", &self.quiet)
            .field("poll", &self.poll)
            .field("dump_path", &self.dump_path)
            .field("max_dumps", &self.max_dumps)
            .field("on_dump", &self.on_dump.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            quiet: Duration::from_secs(2),
            poll: Duration::from_millis(50),
            dump_path: None,
            max_dumps: 1,
            on_dump: None,
        }
    }
}

/// Handle to a running watchdog thread. Stops and joins on drop.
#[derive(Debug)]
pub struct StallWatchdog {
    stop: Arc<AtomicBool>,
    fired: Arc<AtomicUsize>,
    handle: Option<JoinHandle<()>>,
}

impl StallWatchdog {
    /// Spawns the monitor thread.
    ///
    /// `probe` is called on every poll where the event counter is flat;
    /// it returns `(outstanding, detail)` — how many units of work are
    /// still pending (0 means "idle, quiet is fine") and a
    /// human-readable state line included in the dump. It runs on the
    /// monitor thread and must not hold locks across the call
    /// boundary longer than needed.
    pub fn spawn(
        recorder: Arc<FlightRecorder>,
        probe: impl Fn() -> (usize, String) + Send + 'static,
        config: WatchdogConfig,
    ) -> StallWatchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicUsize::new(0));
        let stop2 = Arc::clone(&stop);
        let fired2 = Arc::clone(&fired);
        let handle = std::thread::spawn(move || {
            monitor(&recorder, &probe, &config, &stop2, &fired2);
        });
        StallWatchdog {
            stop,
            fired,
            handle: Some(handle),
        }
    }

    /// How many times the watchdog has dumped.
    pub fn fired(&self) -> usize {
        self.fired.load(Ordering::Relaxed)
    }

    /// Signals the monitor thread to exit (joined on drop).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for StallWatchdog {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn monitor(
    recorder: &FlightRecorder,
    probe: &dyn Fn() -> (usize, String),
    config: &WatchdogConfig,
    stop: &AtomicBool,
    fired: &AtomicUsize,
) {
    let mut last_total = recorder.total_events();
    // lint: allow(wall-clock): the watchdog measures real elapsed quiet
    // time; it is diagnostic-only and never on a query path.
    let mut last_change = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(config.poll);
        let total = recorder.total_events();
        if total != last_total {
            last_total = total;
            // lint: allow(wall-clock): see above.
            last_change = Instant::now();
            continue;
        }
        // lint: allow(wall-clock): see above.
        if last_change.elapsed() < config.quiet {
            continue;
        }
        let (outstanding, detail) = probe();
        if outstanding == 0 {
            // Quiet because idle: re-arm so a later stall needs a fresh
            // quiet period.
            // lint: allow(wall-clock): see above.
            last_change = Instant::now();
            continue;
        }
        let n = fired.load(Ordering::Relaxed);
        if n < config.max_dumps {
            dump(recorder, outstanding, &detail, config);
            fired.store(n + 1, Ordering::Relaxed);
        }
        // lint: allow(wall-clock): see above.
        last_change = Instant::now();
    }
}

fn dump(recorder: &FlightRecorder, outstanding: usize, detail: &str, config: &WatchdogConfig) {
    let mut text = String::new();
    text.push_str(&format!(
        "=== sparta stall watchdog: no recorder events for {:?} with {} unit(s) outstanding ===\n",
        config.quiet, outstanding
    ));
    text.push_str(detail);
    if !detail.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&dump_text(recorder));
    eprint!("{text}");
    if let Some(path) = &config.dump_path {
        let write = std::fs::File::create(path).and_then(|mut f| f.write_all(text.as_bytes()));
        if let Err(e) = write {
            eprintln!("sparta stall watchdog: failed to write dump to {path:?}: {e}");
        }
    }
    if let Some(hook) = &config.on_dump {
        hook(&text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparta_obs::{ClockMode, EventKind};

    fn fast_config() -> WatchdogConfig {
        WatchdogConfig {
            quiet: Duration::from_millis(40),
            poll: Duration::from_millis(5),
            dump_path: None,
            max_dumps: 1,
            on_dump: None,
        }
    }

    #[test]
    fn dump_hook_receives_the_dump_text() {
        let rec = FlightRecorder::new(1, 16, ClockMode::Logical);
        {
            let _g = rec.install(0);
            sparta_obs::recorder::record(EventKind::Park, 0);
        }
        let captured = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&captured);
        let mut cfg = fast_config();
        cfg.on_dump = Some(Arc::new(move |text: &str| {
            sink.lock().unwrap().push(text.to_string());
        }));
        let wd = StallWatchdog::spawn(Arc::clone(&rec), || (2, "probe: wedged".into()), cfg);
        let deadline = Instant::now() + Duration::from_secs(5);
        while wd.fired() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(wd);
        let dumps = captured.lock().unwrap();
        assert_eq!(dumps.len(), 1, "max_dumps=1 caps the hook too");
        assert!(dumps[0].contains("stall watchdog"));
        assert!(dumps[0].contains("probe: wedged"));
    }

    #[test]
    fn fires_on_quiet_with_outstanding_work() {
        let rec = FlightRecorder::new(1, 16, ClockMode::Logical);
        {
            let _g = rec.install(0);
            sparta_obs::recorder::record(EventKind::Park, 0);
        }
        let wd = StallWatchdog::spawn(
            Arc::clone(&rec),
            || (3, "probe: wedged".into()),
            fast_config(),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while wd.fired() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wd.fired() >= 1, "watchdog never fired on a wedged probe");
    }

    #[test]
    fn stays_silent_when_idle() {
        let rec = FlightRecorder::new(1, 16, ClockMode::Logical);
        let wd = StallWatchdog::spawn(Arc::clone(&rec), || (0, String::new()), fast_config());
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(wd.fired(), 0, "idle quiet must not fire");
    }

    #[test]
    fn stays_silent_while_events_flow() {
        let rec = FlightRecorder::new(1, 64, ClockMode::Logical);
        let wd = StallWatchdog::spawn(Arc::clone(&rec), || (1, "busy".into()), fast_config());
        let _g = rec.install(0);
        for _ in 0..30 {
            sparta_obs::recorder::record(EventKind::QueuePop, 0);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(wd.fired(), 0, "steady event flow must not fire");
    }

    #[test]
    fn dump_file_written_and_capped() {
        let rec = FlightRecorder::new(2, 16, ClockMode::Logical);
        {
            let _g = rec.install(0);
            sparta_obs::recorder::record(EventKind::Park, 7);
        }
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sparta_watchdog_test_{}.txt", std::process::id()));
        let mut cfg = fast_config();
        cfg.dump_path = Some(path.clone());
        let wd = StallWatchdog::spawn(Arc::clone(&rec), || (1, "probe: stuck".into()), cfg);
        let deadline = Instant::now() + Duration::from_secs(5);
        while wd.fired() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Give it time to tempt a second dump; max_dumps=1 must cap it.
        std::thread::sleep(Duration::from_millis(120));
        drop(wd);
        let text = std::fs::read_to_string(&path).expect("dump file written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("stall watchdog"), "header present");
        assert!(text.contains("probe: stuck"), "probe detail present");
        assert!(text.contains("park"), "parked worker's last event visible");
    }
}
