//! Latency-mode executor: one query owns the whole thread pool.

use crate::{Executor, JobQueue};
use sparta_obs::{ExecMetrics, FlightRecorder};
use std::sync::Arc;

/// Spawns `threads` scoped worker threads for each query ("When
/// testing latency, the entire thread pool is used by a single query",
/// §5.1). With `threads == 1` the query runs on the calling thread —
/// the sequential baselines of Figures 3h/3i.
///
/// Metrics are opt-in via [`DedicatedExecutor::instrumented`]: the
/// plain constructor runs the uninstrumented worker loop, which does
/// no timing work at all.
#[derive(Debug, Clone)]
pub struct DedicatedExecutor {
    threads: usize,
    metrics: Option<Arc<ExecMetrics>>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl DedicatedExecutor {
    /// Creates an executor with `threads ≥ 1` workers per query.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        Self {
            threads,
            metrics: None,
            recorder: None,
        }
    }

    /// Creates an executor whose workers record into `metrics`: per-job
    /// durations and panics, busy/idle split, queue-depth high-water,
    /// and queries run.
    pub fn instrumented(threads: usize, metrics: Arc<ExecMetrics>) -> Self {
        assert!(threads >= 1);
        Self {
            threads,
            metrics: Some(metrics),
            recorder: None,
        }
    }

    /// Attaches a flight recorder: worker `i` installs ring `i` for
    /// the duration of each query it drains.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The metric registry, if this executor is instrumented.
    pub fn metrics(&self) -> Option<&Arc<ExecMetrics>> {
        self.metrics.as_ref()
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }
}

impl Executor for DedicatedExecutor {
    fn run(&self, queue: Arc<JobQueue>) {
        let rec = self.recorder.as_ref();
        match &self.metrics {
            None => {
                if self.threads == 1 {
                    let _g = rec.map(|r| r.install(0));
                    queue.run_worker();
                    return;
                }
                std::thread::scope(|s| {
                    for i in 0..self.threads {
                        let q = Arc::clone(&queue);
                        let r = rec.map(Arc::clone);
                        s.spawn(move || {
                            let _g = r.map(|r| r.install(i));
                            q.run_worker();
                        });
                    }
                });
            }
            Some(m) => {
                if self.threads == 1 {
                    let _g = rec.map(|r| r.install(0));
                    queue.run_worker_observed(m.worker(0));
                } else {
                    std::thread::scope(|s| {
                        for i in 0..self.threads {
                            let q = Arc::clone(&queue);
                            let wm = Arc::clone(m.worker(i));
                            let r = rec.map(Arc::clone);
                            s.spawn(move || {
                                let _g = r.map(|r| r.install(i));
                                q.run_worker_observed(&wm);
                            });
                        }
                    });
                }
                m.queue_depth_highwater.observe(queue.depth_highwater());
                m.queries_run.incr();
            }
        }
    }

    fn parallelism(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_runs_inline() {
        let q = JobQueue::new();
        let tid = std::thread::current().id();
        let same = Arc::new(AtomicUsize::new(0));
        {
            let same = Arc::clone(&same);
            q.push(Box::new(move || {
                if std::thread::current().id() == tid {
                    same.store(1, Ordering::Relaxed);
                }
            }));
        }
        DedicatedExecutor::new(1).run(Arc::clone(&q));
        assert_eq!(same.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn multi_thread_completes_all() {
        let q = JobQueue::new();
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let n = Arc::clone(&n);
            q.push(Box::new(move || {
                n.fetch_add(1, Ordering::Relaxed);
            }));
        }
        DedicatedExecutor::new(4).run(Arc::clone(&q));
        assert_eq!(n.load(Ordering::Relaxed), 500);
        assert!(q.is_complete());
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = DedicatedExecutor::new(0);
    }

    #[test]
    fn instrumented_executor_populates_registry() {
        let metrics = sparta_obs::ExecMetrics::new(2);
        let exec = DedicatedExecutor::instrumented(2, Arc::clone(&metrics));
        let q = JobQueue::new();
        for _ in 0..50 {
            q.push(Box::new(|| {}));
        }
        q.push(Box::new(|| panic!("injected fault")));
        exec.run(Arc::clone(&q));
        let s = metrics.snapshot();
        assert_eq!(s.jobs_run, 51);
        assert_eq!(s.jobs_panicked, 1);
        assert_eq!(s.queries_run, 1);
        assert_eq!(s.queue_depth_highwater, 51);
        assert_eq!(s.job_ns.count, 51);
        assert!(exec.metrics().is_some());
    }
}
