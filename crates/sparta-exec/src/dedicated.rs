//! Latency-mode executor: one query owns the whole thread pool.

use crate::{Executor, JobQueue};
use std::sync::Arc;

/// Spawns `threads` scoped worker threads for each query ("When
/// testing latency, the entire thread pool is used by a single query",
/// §5.1). With `threads == 1` the query runs on the calling thread —
/// the sequential baselines of Figures 3h/3i.
#[derive(Debug, Clone, Copy)]
pub struct DedicatedExecutor {
    threads: usize,
}

impl DedicatedExecutor {
    /// Creates an executor with `threads ≥ 1` workers per query.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        Self { threads }
    }
}

impl Executor for DedicatedExecutor {
    fn run(&self, queue: Arc<JobQueue>) {
        if self.threads == 1 {
            queue.run_worker();
            return;
        }
        std::thread::scope(|s| {
            for _ in 0..self.threads {
                let q = Arc::clone(&queue);
                s.spawn(move || q.run_worker());
            }
        });
    }

    fn parallelism(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_runs_inline() {
        let q = JobQueue::new();
        let tid = std::thread::current().id();
        let same = Arc::new(AtomicUsize::new(0));
        {
            let same = Arc::clone(&same);
            q.push(Box::new(move || {
                if std::thread::current().id() == tid {
                    same.store(1, Ordering::Relaxed);
                }
            }));
        }
        DedicatedExecutor::new(1).run(Arc::clone(&q));
        assert_eq!(same.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn multi_thread_completes_all() {
        let q = JobQueue::new();
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let n = Arc::clone(&n);
            q.push(Box::new(move || {
                n.fetch_add(1, Ordering::Relaxed);
            }));
        }
        DedicatedExecutor::new(4).run(Arc::clone(&q));
        assert_eq!(n.load(Ordering::Relaxed), 500);
        assert!(q.is_complete());
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = DedicatedExecutor::new(0);
    }
}
