//! Deterministic schedule-exploring executor for concurrency tests.
//!
//! The parallel algorithms in this workspace are *schedule-oblivious*:
//! their invariants (exact recall, lower-bound partial scores, Eq. 2
//! termination) must hold no matter which queued job a worker grabs
//! next. Real thread pools explore schedules haphazardly and
//! unreproducibly; [`DeterministicExecutor`] explores them on purpose.
//!
//! It drains the queue on the *calling thread*, and at every step picks
//! the next job with a seeded PRNG — so one `u64` seed fully determines
//! the schedule. Re-running with the same seed replays the exact
//! interleaving, turning "flaky once a week under load" into "fails
//! every time with seed 17". Tests that sweep seeds print the failing
//! seed so it can be replayed with `SPARTA_TEST_SEED=<n>`.
//!
//! Because jobs run one at a time, data races are not exercised — this
//! executor targets *ordering* bugs (lost wakeups, premature
//! termination, threshold updates observed out of order) and, combined
//! with a [`FaultPlan`], *robustness* bugs (panicking jobs, delayed
//! segments, lost continuations).

use crate::fault::FaultPlan;
use crate::{Executor, JobQueue};
use sparta_obs::ring::EventKind;
use sparta_obs::FlightRecorder;
use std::sync::Arc;

/// SplitMix64 (Steele et al.), inlined so `sparta-exec` stays
/// dependency-free. Passes BigCrush; more than enough to pick queue
/// positions.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A single-threaded executor that replays a pseudo-random schedule
/// chosen by a seed, optionally injecting faults from a [`FaultPlan`].
///
/// Implements [`Executor`], so it drops into any `search(...)` call in
/// place of [`DedicatedExecutor`](crate::DedicatedExecutor). It
/// *reports* a configurable virtual parallelism (default 4) so
/// algorithms still fan out work into many jobs — giving the scheduler
/// interleavings to explore — while actually running them one at a
/// time.
#[derive(Debug, Clone)]
pub struct DeterministicExecutor {
    seed: u64,
    parallelism: usize,
    faults: FaultPlan,
    recorder: Option<Arc<FlightRecorder>>,
}

impl DeterministicExecutor {
    /// Creates an executor whose schedule is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            parallelism: 4,
            faults: FaultPlan::none(),
            recorder: None,
        }
    }

    /// Sets the parallelism the executor *advertises* to algorithms
    /// (they size job fan-out from it; execution stays single-threaded).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        assert!(parallelism >= 1);
        self.parallelism = parallelism;
        self
    }

    /// Attaches a fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The seed this executor replays. Tests print it on failure.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Attaches a flight recorder. Each scheduling step runs under the
    /// ring of *virtual worker* `step % parallelism` — the events a
    /// real pool would spread over threads land in the same per-worker
    /// rings, deterministically. Pair with a
    /// [`ClockMode::Logical`](sparta_obs::ClockMode::Logical) recorder
    /// for byte-identical traces across same-seed runs.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }
}

impl Executor for DeterministicExecutor {
    fn run(&self, queue: Arc<JobQueue>) {
        let mut rng = SplitMix64(self.seed);
        let mut step: u64 = 0;
        loop {
            if self.faults.panic_steps.contains(&step) {
                queue.push(Box::new(|| panic!("injected fault: panicking job")));
            }
            let len = queue.queued_len();
            if len == 0 {
                // Single-threaded: nothing queued means nothing running,
                // so the query is complete (jobs only enqueue while they
                // run, and no job is running now).
                debug_assert!(queue.is_complete());
                break;
            }
            // Multiplex the schedule over virtual workers: step s runs
            // under worker (s % parallelism)'s ring, so one thread
            // produces the per-worker timelines a real pool would.
            // Sequential re-installs keep each ring single-writer.
            let _rec = self
                .recorder
                .as_ref()
                .map(|r| r.install((step % self.parallelism as u64) as usize));
            let pick = (rng.next() % len as u64) as usize;
            let Some(job) = queue.try_pop_nth(pick) else {
                continue; // unreachable single-threaded; defensive
            };
            if self.faults.stall_steps.contains(&step) {
                // Injected wedge: the job vanishes with no completion
                // bookkeeping, so `outstanding` stays above zero forever
                // — exactly the state a stall watchdog must detect. Skip
                // the completeness debug_assert by returning here.
                drop(job);
                return;
            }
            if self.faults.drop_steps.contains(&step) {
                queue.discard(job);
            } else if self.faults.defer_steps.contains(&step) {
                queue.requeue(job);
            } else {
                queue.run_job(job);
            }
            step += 1;
        }
        // Drained: every virtual worker that ran a step goes idle, as
        // pool workers would. The synthetic Park/Unpark pair closes each
        // worker's timeline with one complete park interval.
        if let Some(rec) = &self.recorder {
            let workers = (self.parallelism as u64).min(step.max(1));
            for w in 0..workers {
                let _g = rec.install(w as usize);
                sparta_obs::recorder::record(EventKind::Park, 0);
                sparta_obs::recorder::record(EventKind::Unpark, 0);
            }
        }
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Pushes a two-level job tree and records execution order.
    fn run_tree(exec: &DeterministicExecutor) -> Vec<u32> {
        let q = JobQueue::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let log = Arc::clone(&log);
            let q2 = Arc::clone(&q);
            q.push(Box::new(move || {
                log.lock().push(i);
                let log2 = Arc::clone(&log);
                q2.push(Box::new(move || log2.lock().push(10 + i)));
            }));
        }
        exec.run(Arc::clone(&q));
        assert!(q.is_complete());
        let order = log.lock().clone();
        order
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = run_tree(&DeterministicExecutor::new(42));
        let b = run_tree(&DeterministicExecutor::new(42));
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn seeds_explore_distinct_schedules() {
        let orders: Vec<_> = (0..16)
            .map(|s| run_tree(&DeterministicExecutor::new(s)))
            .collect();
        let distinct: std::collections::HashSet<_> = orders.iter().collect();
        assert!(
            distinct.len() >= 2,
            "16 seeds produced a single schedule: {orders:?}"
        );
    }

    #[test]
    fn injected_panic_does_not_wedge_run() {
        let exec = DeterministicExecutor::new(7).with_faults(FaultPlan::none().panic_at(1));
        let order = run_tree(&exec);
        assert_eq!(order.len(), 8, "all real jobs still ran");
    }

    #[test]
    fn dropped_job_still_terminates() {
        let exec = DeterministicExecutor::new(7).with_faults(FaultPlan::none().drop_at(0));
        let order = run_tree(&exec);
        // One root job (and thus its child) never ran, but no hang.
        assert!(order.len() < 8);
    }

    #[test]
    fn deferred_job_runs_eventually() {
        let exec = DeterministicExecutor::new(7).with_faults(FaultPlan::none().defer_at(0));
        let order = run_tree(&exec);
        assert_eq!(order.len(), 8);
    }
}
