//! Throughput-mode shared worker pool with FCFS query admission.
//!
//! §5.1: "queries are scheduled first-come-first-served, and a new
//! query is scheduled for execution (i.e., assigned threads) once
//! there are idle threads with no outstanding work from currently
//! executing queries. All queries scheduled for execution equally
//! share the thread pool."
//!
//! Implementation: `threads` persistent workers multiplex over the set
//! of *active* query queues round-robin (equal sharing). A worker that
//! sweeps all active queues without finding a runnable job is idle; it
//! then admits the next *pending* query (FCFS). Completed queues
//! (outstanding == 0) are retired during the sweep.

use crate::watchdog::{StallWatchdog, WatchdogConfig};
use crate::{Executor, JobQueue};
use parking_lot::{Condvar, Mutex};
use sparta_obs::{recorder, EventKind, ExecMetrics, FlightRecorder};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

struct Shared {
    /// Queries currently sharing the pool.
    active: Mutex<Vec<Arc<JobQueue>>>,
    /// FCFS backlog.
    pending: Mutex<VecDeque<Arc<JobQueue>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    rr: AtomicUsize,
    /// Opt-in registry; `None` keeps the worker loop timing-free.
    metrics: Option<Arc<ExecMetrics>>,
    /// Opt-in flight recorder; workers install their ring on entry.
    recorder: Option<Arc<FlightRecorder>>,
}

/// A persistent pool of worker threads shared by many queries.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    parallelism: usize,
}

impl WorkerPool {
    /// Starts `threads` persistent workers.
    pub fn new(threads: usize) -> Self {
        Self::build(threads, None, None)
    }

    /// Starts `threads` persistent workers that record into `metrics`:
    /// per-job durations and panics, busy/idle split, retired queries'
    /// queue-depth high-water, and queries run.
    pub fn instrumented(threads: usize, metrics: Arc<ExecMetrics>) -> Self {
        Self::build(threads, Some(metrics), None)
    }

    /// Starts `threads` persistent workers that additionally record
    /// flight-recorder events (job start/end, queue traffic,
    /// park/unpark transitions) into `recorder` — each worker installs
    /// its ring for the lifetime of its loop. Metrics stay optional.
    pub fn with_recorder(
        threads: usize,
        metrics: Option<Arc<ExecMetrics>>,
        recorder: Arc<FlightRecorder>,
    ) -> Self {
        Self::build(threads, metrics, Some(recorder))
    }

    fn build(
        threads: usize,
        metrics: Option<Arc<ExecMetrics>>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Self {
        assert!(threads >= 1);
        let shared = Arc::new(Shared {
            active: Mutex::new(Vec::new()),
            pending: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            metrics,
            recorder,
        });
        let handles = (0..threads)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh, i))
            })
            .collect();
        Self {
            shared,
            threads: handles,
            parallelism: threads,
        }
    }

    /// The metric registry, if this pool is instrumented.
    pub fn metrics(&self) -> Option<&Arc<ExecMetrics>> {
        self.shared.metrics.as_ref()
    }

    /// The flight recorder, if this pool records events.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.shared.recorder.as_ref()
    }

    /// Spawns a [`StallWatchdog`] watching this pool's recorder:
    /// when no worker records an event for `config.quiet` while jobs
    /// are still outstanding (queued, running, or pending admission),
    /// it dumps every worker's ring and the pool state. Returns `None`
    /// if the pool has no recorder.
    ///
    /// The probe scopes each pool lock in its own block — it never
    /// holds `active` and `pending` together, so it adds no edge to
    /// the lock graph.
    pub fn watchdog(&self, config: WatchdogConfig) -> Option<StallWatchdog> {
        let rec = Arc::clone(self.shared.recorder.as_ref()?);
        let sh = Arc::clone(&self.shared);
        let probe = move || {
            let (active_queries, outstanding) = {
                let active = sh.active.lock();
                let out: usize = active.iter().map(|q| q.outstanding()).sum();
                (active.len(), out)
            };
            let pending = sh.pending.lock().len();
            let detail = format!(
                "pool: {active_queries} active query(ies), {outstanding} outstanding job(s), {pending} pending query(ies)"
            );
            (outstanding + pending, detail)
        };
        Some(StallWatchdog::spawn(rec, probe, config))
    }

    /// Submits a query's job queue to the FCFS backlog. Returns
    /// immediately; pair with [`JobQueue::wait_complete`].
    pub fn submit(&self, queue: Arc<JobQueue>) {
        self.shared.pending.lock().push_back(queue);
        self.shared.cv.notify_all();
    }

    /// Number of queries currently executing (sharing the pool).
    pub fn active_queries(&self) -> usize {
        self.shared.active.lock().len()
    }

    /// Number of queries waiting for admission.
    pub fn pending_queries(&self) -> usize {
        self.shared.pending.lock().len()
    }
}

impl Executor for WorkerPool {
    /// Submits and blocks until the query completes — the algorithm
    /// code is identical in latency and throughput modes.
    fn run(&self, queue: Arc<JobQueue>) {
        // Guard against waiting on a queue that never had jobs.
        if queue.outstanding() == 0 {
            return;
        }
        self.submit(Arc::clone(&queue));
        queue.wait_complete();
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(sh: &Shared, worker: usize) {
    // Install this worker's ring for the lifetime of the loop: every
    // recorder::record below (and inside run_job / StripedMap / spans)
    // lands in it. No recorder → all of those are one-branch no-ops.
    let _rec_guard = sh.recorder.as_ref().map(|r| r.install(worker));
    // Park/Unpark are recorded on busy↔idle *transitions*, not on every
    // 200µs wait_for cycle — an idle pool must go recorder-quiet, or
    // the stall watchdog could never distinguish "wedged" from
    // "parked and periodically re-checking".
    let mut idle = false;
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Sweep active queues round-robin for a runnable job.
        let mut ran = false;
        {
            let mut active = sh.active.lock();
            // Retire completed queries, folding their queue stats into
            // the registry (high-water is only final once retired).
            active.retain(|q| {
                let done = q.is_complete();
                if done {
                    if let Some(m) = &sh.metrics {
                        m.queue_depth_highwater.observe(q.depth_highwater());
                        m.queries_run.incr();
                    }
                }
                !done
            });
            let n = active.len();
            if n > 0 {
                let start = sh.rr.fetch_add(1, Ordering::Relaxed) % n;
                for i in 0..n {
                    let q = Arc::clone(&active[(start + i) % n]);
                    if let Some(job) = q.try_pop() {
                        drop(active);
                        if idle {
                            idle = false;
                            recorder::record(EventKind::Unpark, 0);
                        }
                        match &sh.metrics {
                            None => {
                                q.run_job(job);
                            }
                            Some(m) => {
                                // lint: allow(wall-clock): executor metrics timing (busy/parked nanos)
                                let started = Instant::now();
                                let panicked = q.run_job(job);
                                m.worker(worker)
                                    .record_job(started.elapsed().as_nanos() as u64, panicked);
                            }
                        }
                        sh.cv.notify_all();
                        ran = true;
                        break;
                    }
                }
            }
        }
        if ran {
            continue;
        }
        // Idle: no runnable work among active queries — admit the next
        // pending query (FCFS), if any.
        let admitted = {
            let next = sh.pending.lock().pop_front();
            match next {
                Some(q) => {
                    sh.active.lock().push(q);
                    sh.cv.notify_all();
                    true
                }
                None => false,
            }
        };
        if admitted {
            continue;
        }
        // Nothing to do: wait for a push/submission/completion.
        let mut guard = sh.pending.lock();
        if guard.is_empty() && !sh.shutdown.load(Ordering::Acquire) {
            if !idle {
                idle = true;
                recorder::record(EventKind::Park, 0);
            }
            // lint: allow(wall-clock): executor metrics timing (busy/parked nanos)
            let parked = Instant::now();
            sh.cv
                .wait_for(&mut guard, std::time::Duration::from_micros(200));
            if let Some(m) = &sh.metrics {
                m.worker(worker)
                    .idle_ns
                    .add(parked.elapsed().as_nanos() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn make_query(jobs: usize, counter: &Arc<AtomicU64>) -> Arc<JobQueue> {
        let q = JobQueue::new();
        for _ in 0..jobs {
            let c = Arc::clone(counter);
            q.push(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        q
    }

    #[test]
    fn pool_completes_single_query() {
        let pool = WorkerPool::new(2);
        let c = Arc::new(AtomicU64::new(0));
        let q = make_query(100, &c);
        pool.run(Arc::clone(&q));
        assert_eq!(c.load(Ordering::Relaxed), 100);
        assert!(q.is_complete());
    }

    #[test]
    fn pool_runs_many_queries_fcfs() {
        let pool = WorkerPool::new(3);
        let c = Arc::new(AtomicU64::new(0));
        let queues: Vec<_> = (0..20).map(|_| make_query(50, &c)).collect();
        for q in &queues {
            pool.submit(Arc::clone(q));
        }
        for q in &queues {
            q.wait_complete();
        }
        assert_eq!(c.load(Ordering::Relaxed), 20 * 50);
    }

    #[test]
    fn pool_handles_self_scheduling_jobs() {
        let pool = WorkerPool::new(2);
        let q = JobQueue::new();
        let count = Arc::new(AtomicU64::new(0));
        fn chain(q: Arc<JobQueue>, count: Arc<AtomicU64>, left: u32) {
            if left == 0 {
                return;
            }
            let q2 = Arc::clone(&q);
            q.push(Box::new(move || {
                count.fetch_add(1, Ordering::Relaxed);
                chain(Arc::clone(&q2), count, left - 1);
            }));
        }
        chain(Arc::clone(&q), Arc::clone(&count), 64);
        pool.run(Arc::clone(&q));
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = Arc::new(WorkerPool::new(4));
        let c = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let pool = Arc::clone(&pool);
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..5 {
                        let q = make_query(20, &c);
                        pool.run(q);
                    }
                });
            }
        });
        assert_eq!(c.load(Ordering::Relaxed), 6 * 5 * 20);
    }

    #[test]
    fn empty_query_returns_immediately() {
        let pool = WorkerPool::new(1);
        let q = JobQueue::new();
        pool.run(q); // must not hang
    }

    #[test]
    fn drop_shuts_down_threads() {
        let pool = WorkerPool::new(2);
        drop(pool); // must not hang
    }

    #[test]
    fn instrumented_pool_populates_registry() {
        let metrics = sparta_obs::ExecMetrics::new(2);
        let pool = WorkerPool::instrumented(2, Arc::clone(&metrics));
        let c = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            pool.run(make_query(25, &c));
        }
        assert_eq!(c.load(Ordering::Relaxed), 100);
        // Retirement happens on a worker's next sweep, and the last
        // job's duration is recorded *after* its completion bookkeeping
        // (a queue can retire while that worker is still between
        // run_job and record_job) — wait for both counters.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while {
            let s = metrics.snapshot();
            s.queries_run < 4 || s.jobs_run < 100
        } && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = metrics.snapshot();
        assert_eq!(s.jobs_run, 100);
        assert_eq!(s.jobs_panicked, 0);
        assert_eq!(s.queries_run, 4);
        assert!(s.queue_depth_highwater >= 25);
        assert_eq!(s.job_ns.count, 100);
        assert!(pool.metrics().is_some());
    }
}
