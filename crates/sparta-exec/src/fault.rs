//! Fault-injection plans for schedule-exploration tests.
//!
//! A [`FaultPlan`] tells the [`DeterministicExecutor`](crate::DeterministicExecutor)
//! to misbehave at specific *steps* of a run (a step = one scheduling
//! decision). Because the executor is fully deterministic, a fault plan
//! plus a seed exactly reproduces a failure: the same jobs panic, the
//! same segments are delayed, the same continuations vanish.
//!
//! Three fault kinds model the concurrency hazards the Sparta stack
//! must tolerate:
//!
//! * **Panic** — an extra job that panics is injected into the queue.
//!   Exercises the panic-safe recovery path in
//!   [`JobQueue::run_job`](crate::JobQueue::run_job): the query must
//!   still terminate and later queries on the same pool must be
//!   unaffected.
//! * **Defer** — the job chosen at that step is re-enqueued at the back
//!   instead of running ([`JobQueue::requeue`](crate::JobQueue::requeue)),
//!   modelling a worker stalled mid-segment. Results must not change
//!   (scores are order-independent) and termination must still happen.
//! * **Drop** — the chosen job is discarded unrun
//!   ([`JobQueue::discard`](crate::JobQueue::discard)), modelling a lost
//!   continuation. The query must still *terminate* (no hang), though
//!   results may be partial — tests assert liveness, not recall.
//! * **Stall** — the run *stops* at that step: the chosen job vanishes
//!   with **no completion bookkeeping**, leaving the queue's
//!   outstanding count permanently above zero. This models a worker
//!   dying mid-job (or a lost wakeup wedging a pool) and exists to
//!   exercise the stall watchdog: unlike the other faults, the queue
//!   deliberately never completes, so only pair it with watchdog /
//!   timeout-guarded tests.

use std::collections::BTreeSet;

/// A deterministic schedule of injected faults, keyed by step number.
///
/// Steps count scheduling decisions made by the deterministic executor,
/// starting at 0. A step listed in more than one set applies the faults
/// in this order: panic injection first (it adds a job), then drop, then
/// defer.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Steps at which an extra panicking job is pushed onto the queue.
    pub panic_steps: BTreeSet<u64>,
    /// Steps whose chosen job is re-enqueued at the back (delayed).
    pub defer_steps: BTreeSet<u64>,
    /// Steps whose chosen job is discarded without running.
    pub drop_steps: BTreeSet<u64>,
    /// Steps at which the run wedges: the chosen job vanishes without
    /// completion bookkeeping and the executor returns immediately.
    pub stall_steps: BTreeSet<u64>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns true if the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.panic_steps.is_empty()
            && self.defer_steps.is_empty()
            && self.drop_steps.is_empty()
            && self.stall_steps.is_empty()
    }

    /// Adds a step at which a panicking job is injected.
    #[must_use]
    pub fn panic_at(mut self, step: u64) -> Self {
        self.panic_steps.insert(step);
        self
    }

    /// Adds a step whose chosen job is delayed to the back of the queue.
    #[must_use]
    pub fn defer_at(mut self, step: u64) -> Self {
        self.defer_steps.insert(step);
        self
    }

    /// Adds a step whose chosen job is dropped without running.
    #[must_use]
    pub fn drop_at(mut self, step: u64) -> Self {
        self.drop_steps.insert(step);
        self
    }

    /// Adds a step at which the run wedges (see the module docs): the
    /// queue is left with outstanding work forever. Watchdog tests only.
    #[must_use]
    pub fn stall_at(mut self, step: u64) -> Self {
        self.stall_steps.insert(step);
        self
    }
}
