//! Execution substrate: job queues, per-query executors, and the
//! shared worker pool used for throughput experiments.
//!
//! The paper's benchmarking environment (§5.1): "A benchmark driver
//! draws queries from an input queue and submits them to the algorithm
//! being tested, which uses a thread pool for intra-query parallelism.
//! … When testing latency, the entire thread pool is used by a single
//! query. In the throughput evaluation mode, queries are scheduled
//! first-come-first-served, and a new query is scheduled for execution
//! … once there are idle threads with no outstanding work from
//! currently executing queries. All queries scheduled for execution
//! equally share the thread pool."
//!
//! All parallel algorithms in `sparta-core` express their work as
//! *self-scheduling jobs* on a [`JobQueue`] (Sparta's `PROCESSTERM`
//! re-enqueues itself per segment, Alg. 1 line 25; pBMW enqueues
//! doc-range jobs; etc.). An [`Executor`] then drains the queue:
//! [`DedicatedExecutor`] spawns scoped threads for one query (latency
//! mode), [`WorkerPool`] multiplexes many queries over persistent
//! threads (throughput mode).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dedicated;
pub mod deterministic;
pub mod fault;
pub mod job_queue;
pub mod pool;
pub mod watchdog;

pub use dedicated::DedicatedExecutor;
pub use deterministic::DeterministicExecutor;
pub use fault::FaultPlan;
pub use job_queue::{CyclicJob, Job, JobQueue};
pub use pool::WorkerPool;
pub use watchdog::{DumpHook, StallWatchdog, WatchdogConfig};

use std::sync::Arc;

/// Drains a query's job queue to completion.
pub trait Executor: Sync {
    /// Runs jobs from `queue` until all work completes (the queue's
    /// outstanding count reaches zero). Blocks the caller.
    fn run(&self, queue: Arc<JobQueue>);

    /// The number of worker threads a single query may use. Algorithms
    /// size their job sets from this (e.g. pBMW creates `2 ×
    /// parallelism` document ranges, §5.2.1).
    fn parallelism(&self) -> usize;
}
