//! The per-query job queue.
//!
//! Sparta (Alg. 1) "divide[s] posting list traversals to segments …
//! and use[s] a job queue to allocate posting list segments to
//! threads". Jobs are self-scheduling closures: a job that finishes a
//! segment pushes the follow-up job for the next segment. The queue
//! tracks an *outstanding* count (queued + currently running jobs);
//! when it reaches zero the query is complete and all waiters wake.

use parking_lot::{Condvar, Mutex};
use sparta_obs::{recorder, Counter, EventKind, MaxGauge, WorkerMetrics};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A resumable job that keeps its own state between steps.
///
/// The segment-continuation pattern (`PROCESSTERM` re-enqueuing itself
/// per segment, Alg. 1 line 25) used to allocate a fresh
/// `Box<dyn FnOnce>` per segment: thousands of short-lived boxes per
/// query, all carrying the same captured state. A `CyclicJob` instead
/// holds that state in **one** box for the job's whole lifetime;
/// [`run_step`](CyclicJob::run_step) returning `true` re-enqueues the
/// *same* box (see [`JobQueue::run_job`]), so steady-state traversal
/// allocates zero job boxes.
pub trait CyclicJob: Send {
    /// Runs one step of the job. Return `true` to have the queue
    /// re-enqueue this same (recycled) box for another step, `false`
    /// when the job is finished.
    fn run_step(&mut self) -> bool;
}

/// A unit of work. Jobs re-enqueue their own continuations either by
/// pushing fresh closures via the `Arc<JobQueue>` they capture
/// ([`Job::Once`]) or by returning `true` from
/// [`run_step`](CyclicJob::run_step), which recycles the job's own box
/// ([`Job::Cyclic`]).
pub enum Job {
    /// A one-shot closure; consumed by its single run.
    Once(Box<dyn FnOnce() + Send>),
    /// A resumable job whose box is recycled across steps.
    Cyclic(Box<dyn CyclicJob>),
}

impl Job {
    /// Wraps a resumable job.
    pub fn cyclic<J: CyclicJob + 'static>(job: J) -> Self {
        Job::Cyclic(Box::new(job))
    }
}

// `queue.push(Box::new(closure))` call sites keep working, with the
// one box they already allocate becoming the `Job::Once` payload.
impl<F: FnOnce() + Send + 'static> From<Box<F>> for Job {
    fn from(f: Box<F>) -> Self {
        Job::Once(f)
    }
}

impl From<Box<dyn FnOnce() + Send>> for Job {
    fn from(f: Box<dyn FnOnce() + Send>) -> Self {
        Job::Once(f)
    }
}

/// A FIFO queue of self-scheduling jobs with completion tracking.
///
/// Jobs are run *panic-safely*: a job that panics is caught and
/// recorded (see [`JobQueue::panicked`]) and completion bookkeeping
/// still happens, so one poisoned job can neither wedge the query it
/// belongs to nor kill the worker thread that ran it — essential for
/// throughput mode, where workers are shared by many queries.
pub struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    /// Caller-assigned query tag (0 = untagged). Shared-pool consumers
    /// use it to correlate a queue with the request that spawned it.
    tag: u64,
    /// Jobs queued or currently executing.
    outstanding: AtomicUsize,
    /// Jobs executed in total (statistics).
    executed: Counter,
    /// Jobs whose closure panicked (caught in [`JobQueue::run_job`]).
    panicked: Counter,
    /// Jobs discarded unrun via [`JobQueue::discard`] (fault injection).
    dropped: Counter,
    /// Cyclic-job steps whose box was re-enqueued instead of freed —
    /// each is one `Box<dyn FnOnce>` allocation the continuation
    /// pattern no longer pays.
    recycled: Counter,
    /// Deepest the queue has ever been (observed at push/requeue, while
    /// the queue lock is held, so the reading is exact).
    depth_highwater: MaxGauge,
}

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Creates an empty queue carrying a per-query `tag`. Tags flow
    /// through shared executors untouched; the query server assigns one
    /// per admitted request so a queue observed inside the pool (stall
    /// dumps, retirement accounting) can be traced back to its request.
    pub fn tagged(tag: u64) -> Arc<Self> {
        Arc::new(Self {
            tag,
            ..Self::default()
        })
    }

    /// The caller-assigned query tag (0 = untagged).
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Enqueues a job. Accepts a boxed closure (`Box::new(move || …)`)
    /// or a [`Job`] directly (`Job::cyclic(…)` for resumable jobs).
    pub fn push(&self, job: impl Into<Job>) {
        let job = job.into();
        // ordering: outstanding is a completion *protocol*, not a mere (model: job_queue_outstanding)
        // stat — wait_for_completion spins on it reaching 0, so every
        // increment/decrement is AcqRel to pair with the Acquire load
        // in outstanding(): the release of the final fetch_sub makes
        // the finished job's writes visible to the woken waiter.
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let depth = {
            let mut guard = self.jobs.lock();
            guard.push_back(job);
            guard.len()
        };
        self.depth_highwater.observe(depth as u64);
        recorder::record(EventKind::QueuePush, depth as u64);
        self.cv.notify_one();
    }

    /// Number of jobs queued or running.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Total jobs executed so far.
    pub fn executed(&self) -> usize {
        self.executed.get() as usize
    }

    /// Jobs whose closure panicked. The panics were caught; the queue
    /// (and any pool running it) remains usable.
    pub fn panicked(&self) -> usize {
        self.panicked.get() as usize
    }

    /// Jobs discarded without running via [`JobQueue::discard`].
    pub fn dropped(&self) -> usize {
        self.dropped.get() as usize
    }

    /// Cyclic-job steps that recycled their box (continuations run
    /// without allocating). See [`CyclicJob`].
    pub fn recycled(&self) -> usize {
        self.recycled.get() as usize
    }

    /// Deepest the queue has ever been. Executors fold this into their
    /// registry's `queue_depth_highwater` when the query retires.
    pub fn depth_highwater(&self) -> u64 {
        self.depth_highwater.get()
    }

    /// Number of jobs currently queued (excluding running jobs).
    pub fn queued_len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// Whether all work has completed (nothing queued or running).
    /// Meaningful only after at least one job has been pushed.
    pub fn is_complete(&self) -> bool {
        self.outstanding() == 0
    }

    /// Pops a job without blocking. Used by the shared pool, which
    /// multiplexes several queues per thread.
    pub fn try_pop(&self) -> Option<Job> {
        let (job, depth) = {
            let mut guard = self.jobs.lock();
            (guard.pop_front(), guard.len())
        };
        if job.is_some() {
            recorder::record(EventKind::QueuePop, depth as u64);
        }
        job
    }

    /// Pops the `n`-th queued job (0 = front) without blocking.
    /// `n` is taken modulo the current queue length, so any `usize`
    /// selects *some* job when the queue is non-empty. This is the
    /// [`DeterministicExecutor`](crate::DeterministicExecutor)'s hook
    /// for exploring schedules: picking a pseudo-random position
    /// simulates an arbitrary interleaving of worker threads.
    pub fn try_pop_nth(&self, n: usize) -> Option<Job> {
        let (job, depth) = {
            let mut guard = self.jobs.lock();
            let len = guard.len();
            if len == 0 {
                return None;
            }
            (guard.remove(n % len), guard.len())
        };
        if job.is_some() {
            recorder::record(EventKind::QueuePop, depth as u64);
        }
        job
    }

    /// Runs one popped job and performs completion bookkeeping. The
    /// caller must have obtained `job` from this queue. Returns whether
    /// the job panicked, so observed workers can count panics without
    /// inspecting queue counters.
    ///
    /// A panic inside the job is caught and counted (see
    /// [`JobQueue::panicked`]); bookkeeping still runs, so the query
    /// completes and the calling worker thread survives. A panicking
    /// cyclic job is dropped mid-flight — its continuation is lost,
    /// exactly like a panicking `FnOnce` whose captured state unwound.
    pub fn run_job(&self, job: Job) -> bool {
        recorder::record(EventKind::JobStart, self.outstanding() as u64);
        let panicked = match job {
            Job::Once(f) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err(),
            Job::Cyclic(mut job) => {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    let more = job.run_step();
                    (job, more)
                }));
                match result {
                    Ok((job, true)) => {
                        // Recycle: the same box goes straight back on
                        // the queue via `requeue`, which leaves the
                        // outstanding count untouched — the job's slot
                        // carries over to the next step, so the count
                        // never dips to zero between segments.
                        self.recycled.incr();
                        self.executed.incr();
                        self.requeue(Job::Cyclic(job));
                        recorder::record(EventKind::JobEnd, 0);
                        return false;
                    }
                    Ok((_, false)) => false,
                    Err(_) => true,
                }
            }
        };
        if panicked {
            self.panicked.incr();
        }
        self.executed.incr();
        recorder::record(EventKind::JobEnd, u64::from(panicked));
        self.finish_one();
        panicked
    }

    /// Completion-side bookkeeping shared by [`JobQueue::run_job`] and
    /// [`JobQueue::discard`]: decrement `outstanding` and, if this was
    /// the last job, wake every waiter — with a lock bridge that makes
    /// the wakeup impossible to lose.
    ///
    /// The waiters (`wait_complete`, the `run_worker` inner loops) take
    /// the `jobs` mutex, check `is_complete()` — an *atomic* the mutex
    /// does not guard — and park on `cv`. Without the bridge, this
    /// decrement and the notify can both land in the window between a
    /// waiter's check and its park, and the notify is lost forever:
    /// `wait_complete` has no timeout, so the waiter sleeps for good
    /// (the ROADMAP's ~1-in-12 `throughput_pool.rs` hang — drivers
    /// futex-parked in `wait_complete` while the pool sat idle).
    /// Briefly acquiring and releasing the `jobs` mutex between the
    /// final decrement and the notify serializes with the waiter's
    /// check-then-park critical section: once the bridge acquires the
    /// lock, any waiter that missed the decrement has already released
    /// the mutex *by parking*, so the notify reaches it.
    fn finish_one(&self) {
        // ordering: AcqRel — release publishes this job's side effects (model: job_queue_outstanding)
        // to the waiter that observes outstanding() == 0; acquire
        // orders this decrement after the job body above it.
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Lost-wakeup bridge: see the doc comment above.
            drop(self.jobs.lock());
            self.cv.notify_all();
        }
    }

    /// Discards a popped job *without running it*, performing the same
    /// completion bookkeeping as [`JobQueue::run_job`]. Fault-injection
    /// hook: models a lost continuation (e.g. a worker dying between
    /// popping a job and executing it). The query still terminates; the
    /// loss is observable via [`JobQueue::dropped`].
    pub fn discard(&self, job: Job) {
        drop(job);
        self.dropped.incr();
        self.finish_one();
    }

    /// Re-enqueues a popped job at the back of the queue without
    /// touching the outstanding count (the job is already accounted
    /// for). Fault-injection hook: models a delayed segment — the job
    /// runs eventually, but later than the scheduler would naturally
    /// have run it.
    pub fn requeue(&self, job: Job) {
        self.requeue_batch(std::iter::once(job));
    }

    /// Re-enqueues a *batch* of popped jobs under one lock acquisition,
    /// without touching the outstanding count. The queue-depth
    /// high-water gauge is observed once, after the whole batch: the
    /// queue only grows while the lock is held, so the post-batch
    /// length is exactly the burst's deepest point — the gauge cannot
    /// under-report a recycled-job burst the way per-item sampling
    /// could if a concurrent pop interleaved mid-burst.
    pub fn requeue_batch<I: IntoIterator<Item = Job>>(&self, jobs: I) {
        let (depth, pushed) = {
            let mut guard = self.jobs.lock();
            let before = guard.len();
            for job in jobs {
                guard.push_back(job);
            }
            (guard.len(), guard.len() - before)
        };
        if pushed == 0 {
            return;
        }
        self.depth_highwater.observe(depth as u64);
        recorder::record(EventKind::Requeue, depth as u64);
        if pushed == 1 {
            self.cv.notify_one();
        } else {
            self.cv.notify_all();
        }
    }

    /// Worker loop: pop and run jobs until the queue completes.
    /// Multiple threads may run this concurrently.
    pub fn run_worker(&self) {
        loop {
            let mut guard = self.jobs.lock();
            loop {
                if let Some(job) = guard.pop_front() {
                    drop(guard);
                    self.run_job(job);
                    break;
                }
                if self.is_complete() {
                    return;
                }
                recorder::record(EventKind::Park, 0);
                self.cv.wait(&mut guard);
                recorder::record(EventKind::Unpark, 0);
            }
        }
    }

    /// [`JobQueue::run_worker`] with per-job instrumentation: job
    /// durations and panics go to `m`, condvar waits are accounted as
    /// idle time. Kept separate from the plain loop so uninstrumented
    /// executors pay no timing overhead.
    pub fn run_worker_observed(&self, m: &WorkerMetrics) {
        loop {
            let mut guard = self.jobs.lock();
            loop {
                if let Some(job) = guard.pop_front() {
                    drop(guard);
                    // lint: allow(wall-clock): executor metrics timing (busy/parked nanos)
                    let started = Instant::now();
                    let panicked = self.run_job(job);
                    m.record_job(started.elapsed().as_nanos() as u64, panicked);
                    break;
                }
                if self.is_complete() {
                    return;
                }
                // lint: allow(wall-clock): executor metrics timing (busy/parked nanos)
                let parked = Instant::now();
                recorder::record(EventKind::Park, 0);
                self.cv.wait(&mut guard);
                recorder::record(EventKind::Unpark, 0);
                m.idle_ns.add(parked.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Blocks until all work completes.
    pub fn wait_complete(&self) {
        let mut guard = self.jobs.lock();
        while !self.is_complete() {
            self.cv.wait(&mut guard);
        }
    }

    /// Blocks until `pred()` holds. The predicate is re-evaluated after
    /// every job completion or push. Used by orchestration steps such
    /// as Sparta's "wait until UBStop" (Alg. 1 line 4); completion also
    /// wakes the waiter so it never sleeps past the end of the query.
    pub fn wait_until<F: FnMut() -> bool>(&self, mut pred: F) {
        let mut guard = self.jobs.lock();
        while !pred() && !self.is_complete() {
            // Re-check periodically as well: predicates like UBStop
            // flip due to worker-side writes that do not notify.
            self.cv
                .wait_for(&mut guard, std::time::Duration::from_micros(200));
        }
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            tag: 0,
            outstanding: AtomicUsize::new(0),
            executed: Counter::new(),
            panicked: Counter::new(),
            dropped: Counter::new(),
            recycled: Counter::new(),
            depth_highwater: MaxGauge::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_jobs_single_thread() {
        let q = JobQueue::new();
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=10u64 {
            let sum = Arc::clone(&sum);
            q.push(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }));
        }
        q.run_worker();
        assert_eq!(sum.load(Ordering::Relaxed), 55);
        assert!(q.is_complete());
        assert_eq!(q.executed(), 10);
    }

    #[test]
    fn tagged_queue_carries_tag() {
        assert_eq!(JobQueue::new().tag(), 0);
        let q = JobQueue::tagged(42);
        assert_eq!(q.tag(), 42);
        q.push(Box::new(|| {}));
        q.run_worker();
        assert_eq!(q.tag(), 42, "tag survives execution");
    }

    #[test]
    fn self_scheduling_jobs_chain() {
        // A job chain that counts down by re-enqueuing itself.
        let q = JobQueue::new();
        let count = Arc::new(AtomicU64::new(0));
        fn step(q: Arc<JobQueue>, count: Arc<AtomicU64>, left: u32) {
            if left == 0 {
                return;
            }
            let q2 = Arc::clone(&q);
            q.push(Box::new(move || {
                count.fetch_add(1, Ordering::Relaxed);
                step(Arc::clone(&q2), count, left - 1);
            }));
        }
        step(Arc::clone(&q), Arc::clone(&count), 100);
        q.run_worker();
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn multiple_workers_drain_queue() {
        let q = JobQueue::new();
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let count = Arc::clone(&count);
            q.push(Box::new(move || {
                count.fetch_add(1, Ordering::Relaxed);
            }));
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || q.run_worker());
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert!(q.is_complete());
    }

    #[test]
    fn wait_complete_blocks_until_done() {
        let q = JobQueue::new();
        let done = Arc::new(AtomicU64::new(0));
        {
            let done = Arc::clone(&done);
            q.push(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                done.store(1, Ordering::Relaxed);
            }));
        }
        std::thread::scope(|s| {
            let q2 = Arc::clone(&q);
            s.spawn(move || q2.run_worker());
            q.wait_complete();
            assert_eq!(done.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn wait_until_observes_worker_writes() {
        let q = JobQueue::new();
        let flag = Arc::new(AtomicU64::new(0));
        {
            let flag = Arc::clone(&flag);
            q.push(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                flag.store(7, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_millis(30));
            }));
        }
        std::thread::scope(|s| {
            let q2 = Arc::clone(&q);
            s.spawn(move || q2.run_worker());
            let flag2 = Arc::clone(&flag);
            q.wait_until(move || flag2.load(Ordering::Acquire) == 7);
            // The job is still sleeping: outstanding is nonzero, the
            // predicate fired.
            assert_eq!(flag.load(Ordering::Acquire), 7);
        });
    }

    #[test]
    fn panicking_job_is_caught_and_counted() {
        let q = JobQueue::new();
        let count = Arc::new(AtomicU64::new(0));
        q.push(Box::new(|| panic!("injected fault")));
        {
            let count = Arc::clone(&count);
            q.push(Box::new(move || {
                count.fetch_add(1, Ordering::Relaxed);
            }));
        }
        q.run_worker();
        assert!(q.is_complete());
        assert_eq!(q.panicked(), 1);
        assert_eq!(q.executed(), 2);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn try_pop_nth_selects_by_index() {
        let q = JobQueue::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let log = Arc::clone(&log);
            q.push(Box::new(move || log.lock().push(i)));
        }
        // Pop index 2 ("2"), then index 5 % 3 == 2 ("3"), then fronts.
        for n in [2usize, 5, 0, 0] {
            let job = q.try_pop_nth(n).expect("job available");
            q.run_job(job);
        }
        assert!(q.try_pop_nth(0).is_none());
        assert_eq!(*log.lock(), vec![2, 3, 0, 1]);
        assert!(q.is_complete());
    }

    #[test]
    fn discard_completes_bookkeeping_without_running() {
        let q = JobQueue::new();
        let ran = Arc::new(AtomicU64::new(0));
        {
            let ran = Arc::clone(&ran);
            q.push(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let job = q.try_pop().unwrap();
        q.discard(job);
        assert!(q.is_complete());
        assert_eq!(q.dropped(), 1);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn requeue_moves_job_to_back_keeping_outstanding() {
        let q = JobQueue::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u32 {
            let log = Arc::clone(&log);
            q.push(Box::new(move || log.lock().push(i)));
        }
        let front = q.try_pop().unwrap();
        q.requeue(front); // delay job 0 behind job 1
        assert_eq!(q.outstanding(), 2);
        q.run_worker();
        assert_eq!(*log.lock(), vec![1, 0]);
    }

    #[test]
    fn depth_highwater_tracks_deepest_point() {
        let q = JobQueue::new();
        for _ in 0..5 {
            q.push(Box::new(|| {}));
        }
        assert_eq!(q.depth_highwater(), 5);
        q.run_worker();
        // Draining does not lower the high-water mark.
        assert_eq!(q.depth_highwater(), 5);
    }

    #[test]
    fn observed_worker_records_jobs_and_panics() {
        let q = JobQueue::new();
        q.push(Box::new(|| {}));
        q.push(Box::new(|| panic!("injected fault")));
        let m = sparta_obs::WorkerMetrics::new();
        q.run_worker_observed(&m);
        assert_eq!(m.jobs_run.get(), 2);
        assert_eq!(m.jobs_panicked.get(), 1);
        assert_eq!(m.job_ns.count(), 2);
        assert!(q.is_complete());
    }

    #[test]
    fn cyclic_job_recycles_box_until_done() {
        struct Countdown {
            left: u32,
            count: Arc<AtomicU64>,
        }
        impl CyclicJob for Countdown {
            fn run_step(&mut self) -> bool {
                self.count.fetch_add(1, Ordering::Relaxed);
                self.left -= 1;
                self.left > 0
            }
        }
        let q = JobQueue::new();
        let count = Arc::new(AtomicU64::new(0));
        q.push(Job::cyclic(Countdown {
            left: 100,
            count: Arc::clone(&count),
        }));
        q.run_worker();
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert!(q.is_complete());
        assert_eq!(q.executed(), 100);
        assert_eq!(q.recycled(), 99, "every step but the last recycles");
    }

    #[test]
    fn cyclic_recycle_keeps_outstanding_nonzero() {
        // Between run_step returning true and the next step starting,
        // the outstanding count must not dip to zero — a transient zero
        // would let run_worker/wait_complete exit with work remaining.
        struct Probe {
            q: Arc<JobQueue>,
            left: u32,
            min_seen: Arc<AtomicU64>,
        }
        impl CyclicJob for Probe {
            fn run_step(&mut self) -> bool {
                self.min_seen
                    .fetch_min(self.q.outstanding() as u64, Ordering::Relaxed);
                self.left -= 1;
                self.left > 0
            }
        }
        let q = JobQueue::new();
        let min_seen = Arc::new(AtomicU64::new(u64::MAX));
        q.push(Job::cyclic(Probe {
            q: Arc::clone(&q),
            left: 50,
            min_seen: Arc::clone(&min_seen),
        }));
        q.run_worker();
        assert!(q.is_complete());
        assert!(min_seen.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn panicking_cyclic_job_is_caught_and_completes() {
        struct Bomb {
            steps: u32,
        }
        impl CyclicJob for Bomb {
            fn run_step(&mut self) -> bool {
                self.steps += 1;
                if self.steps == 3 {
                    panic!("injected fault");
                }
                true
            }
        }
        let q = JobQueue::new();
        q.push(Job::cyclic(Bomb { steps: 0 }));
        q.run_worker();
        assert!(q.is_complete());
        assert_eq!(q.panicked(), 1);
        assert_eq!(q.recycled(), 2);
    }

    #[test]
    fn requeue_batch_accounts_burst_depth_once() {
        let q = JobQueue::new();
        // Keep the live queue depth at 1 while accumulating popped
        // jobs, so the pre-batch high-water stays at 1.
        let mut held = Vec::new();
        for _ in 0..3 {
            q.push(Box::new(|| {}));
            held.push(q.try_pop().unwrap());
        }
        assert_eq!(q.depth_highwater(), 1);
        assert_eq!(q.outstanding(), 3);
        q.requeue_batch(held);
        assert_eq!(
            q.depth_highwater(),
            3,
            "the burst's deepest point must be accounted"
        );
        assert_eq!(q.outstanding(), 3, "requeue never touches outstanding");
        q.run_worker();
        assert!(q.is_complete());
        assert_eq!(q.executed(), 3);
    }

    #[test]
    fn requeue_batch_of_nothing_is_inert() {
        let q = JobQueue::new();
        q.requeue_batch(std::iter::empty());
        assert_eq!(q.depth_highwater(), 0);
        assert_eq!(q.queued_len(), 0);
    }

    #[test]
    fn completion_wakeup_is_never_lost() {
        // Regression for the ROADMAP hang: the final decrement+notify
        // used to run without the jobs mutex, so it could land between
        // wait_complete's is_complete() check and its park — a lost
        // wakeup with no timeout to save it. finish_one's lock bridge
        // closes the window; this hammers the race window from both
        // sides with a deadline instead of hanging CI on regression.
        use std::time::{Duration, Instant};
        for _ in 0..200 {
            let q = JobQueue::new();
            q.push(Box::new(|| {}));
            let waiter = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.wait_complete())
            };
            let runner = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let job = q.try_pop().unwrap();
                    q.run_job(job);
                })
            };
            runner.join().unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            while !waiter.is_finished() {
                assert!(
                    Instant::now() < deadline,
                    "wait_complete hung: completion wakeup was lost"
                );
                std::thread::yield_now();
            }
            waiter.join().unwrap();
        }
    }

    #[test]
    fn queue_operations_record_flight_events() {
        use sparta_obs::{ClockMode, FlightRecorder};
        let rec = FlightRecorder::new(1, 64, ClockMode::Logical);
        let q = JobQueue::new();
        let _g = rec.install(0);
        q.push(Box::new(|| {}));
        let job = q.try_pop().unwrap();
        q.run_job(job);
        let mut kinds = Vec::new();
        rec.ring(0).for_each(|e| kinds.push(e.kind));
        assert_eq!(
            kinds,
            [
                EventKind::QueuePush,
                EventKind::QueuePop,
                EventKind::JobStart,
                EventKind::JobEnd,
            ]
        );
    }

    #[test]
    fn wait_until_returns_on_completion_even_if_pred_never_true() {
        let q = JobQueue::new();
        q.push(Box::new(|| {}));
        std::thread::scope(|s| {
            let q2 = Arc::clone(&q);
            s.spawn(move || q2.run_worker());
            q.wait_until(|| false);
        });
        assert!(q.is_complete());
    }
}
