//! Stress tests for the execution substrate: mixed dedicated/pool
//! usage, deep self-scheduling chains, and rapid query churn.

use sparta_exec::{DedicatedExecutor, Executor, JobQueue, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn chain(q: &Arc<JobQueue>, counter: &Arc<AtomicU64>, fanout: u32, depth: u32) {
    if depth == 0 {
        return;
    }
    for _ in 0..fanout {
        let q2 = Arc::clone(q);
        let c2 = Arc::clone(counter);
        q.push(Box::new(move || {
            c2.fetch_add(1, Ordering::Relaxed);
            chain(&q2, &c2, 1, depth - 1);
        }));
    }
}

#[test]
fn deep_chains_complete_on_both_executors() {
    for threads in [1usize, 3] {
        let q = JobQueue::new();
        let c = Arc::new(AtomicU64::new(0));
        chain(&q, &c, 8, 50); // 8 chains of depth 50
        DedicatedExecutor::new(threads).run(Arc::clone(&q));
        assert_eq!(c.load(Ordering::Relaxed), 8 * 50, "threads={threads}");
    }
    let pool = WorkerPool::new(3);
    let q = JobQueue::new();
    let c = Arc::new(AtomicU64::new(0));
    chain(&q, &c, 8, 50);
    pool.run(Arc::clone(&q));
    assert_eq!(c.load(Ordering::Relaxed), 8 * 50);
}

#[test]
fn rapid_query_churn_on_shared_pool() {
    let pool = Arc::new(WorkerPool::new(2));
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            s.spawn(move || {
                for _ in 0..50 {
                    let q = JobQueue::new();
                    let t2 = Arc::clone(&total);
                    q.push(Box::new(move || {
                        t2.fetch_add(1, Ordering::Relaxed);
                    }));
                    pool.run(q);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 200);
}

#[test]
fn pool_interleaves_long_and_short_queries() {
    // A long-running query must not starve short ones (equal sharing).
    let pool = Arc::new(WorkerPool::new(2));
    let long_done = Arc::new(AtomicU64::new(0));
    let long_q = JobQueue::new();
    {
        // 2000 self-rescheduling steps.
        fn step(q: Arc<JobQueue>, c: Arc<AtomicU64>, left: u32) {
            if left == 0 {
                return;
            }
            let q2 = Arc::clone(&q);
            q.push(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
                step(q2, c, left - 1);
            }));
        }
        step(Arc::clone(&long_q), Arc::clone(&long_done), 2000);
    }
    pool.submit(Arc::clone(&long_q));
    // Short queries submitted while the long one runs must complete
    // well before it exhausts its 2000 steps.
    for _ in 0..10 {
        let q = JobQueue::new();
        let hit = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hit);
        q.push(Box::new(move || {
            h2.store(1, Ordering::Relaxed);
        }));
        pool.run(q);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
    long_q.wait_complete();
    assert_eq!(long_done.load(Ordering::Relaxed), 2000);
}

#[test]
fn executor_reports_parallelism() {
    assert_eq!(DedicatedExecutor::new(7).parallelism(), 7);
    assert_eq!(WorkerPool::new(3).parallelism(), 3);
}
