//! Shared test fixtures and the deterministic schedule-sweep driver.
//!
//! Every top-level integration test builds the same kind of synthetic
//! corpus, index, and query log; this crate centralizes those fixtures
//! so they are defined once, and adds the *schedule sweep*: re-running
//! a search across many [`DeterministicExecutor`] seeds and asserting
//! the algorithm's invariants on every explored schedule.
//!
//! ## Seed replay
//!
//! Sweeps derive their seeds from [`base_seed`], which reads the
//! `SPARTA_TEST_SEED` environment variable. When an invariant fails,
//! the harness panics with the offending schedule seed and the exact
//! command to replay it:
//!
//! ```sh
//! SPARTA_TEST_SEED=17 cargo test -p sparta <failing test>
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wakeup_model;

use sparta_core::config::SearchConfig;
use sparta_core::oracle::Oracle;
use sparta_core::result::TopKResult;
use sparta_core::Algorithm;
use sparta_corpus::{CorpusModel, Query, QueryLog, SynthCorpus, TfIdfScorer};
use sparta_exec::{DeterministicExecutor, WorkerPool};
use sparta_index::{Index, IndexBuilder};
use std::sync::Arc;

/// Default sweep base when `SPARTA_TEST_SEED` is unset.
pub const DEFAULT_BASE_SEED: u64 = 0x5EED_0000;

/// The base seed for schedule sweeps: `SPARTA_TEST_SEED` if set (any
/// failing sweep prints the exact value to export), else
/// [`DEFAULT_BASE_SEED`].
pub fn base_seed() -> u64 {
    match std::env::var("SPARTA_TEST_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("SPARTA_TEST_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_BASE_SEED,
    }
}

/// The standard integration-test corpus: the paper's ClueWeb-like
/// synthetic generator at toy scale.
pub fn build_corpus(seed: u64) -> SynthCorpus {
    SynthCorpus::build(CorpusModel::tiny(seed))
}

/// Builds the standard integration-test fixture: [`build_corpus`]
/// indexed in memory with tf-idf scoring.
pub fn build_index(seed: u64) -> (Arc<dyn Index>, SynthCorpus) {
    let corpus = build_corpus(seed);
    let ix: Arc<dyn Index> = Arc::new(IndexBuilder::new(TfIdfScorer).build_memory(&corpus));
    (ix, corpus)
}

/// Generates `per_len` queries of every length `1..=max_len` drawn
/// from the corpus's term distribution.
pub fn queries(corpus: &SynthCorpus, per_len: usize, max_len: usize, seed: u64) -> Vec<Query> {
    let log = QueryLog::generate(corpus.stats(), per_len, max_len, seed);
    (1..=max_len)
        .flat_map(|m| log.of_length(m).to_vec())
        .collect()
}

/// One 8-term query — the long-query regime where approximation knobs
/// and the cleaner have the most work to do.
pub fn long_query(corpus: &SynthCorpus, seed: u64) -> Query {
    QueryLog::generate(corpus.stats(), 1, 8, seed).of_length(8)[0].clone()
}

/// Runs `check` once per schedule seed, for `n` consecutive seeds
/// starting at [`base_seed`]. A panic inside `check` is re-thrown after
/// printing the failing seed and the replay command, so a sweep failure
/// is reproducible in isolation.
pub fn sweep_schedules<F>(n: u64, mut check: F)
where
    F: FnMut(u64, &DeterministicExecutor),
{
    let base = base_seed();
    for i in 0..n {
        let seed = base.wrapping_add(i);
        let exec = DeterministicExecutor::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(seed, &exec);
        }));
        if let Err(cause) = outcome {
            eprintln!(
                "schedule sweep failed at seed {seed} (base {base}, schedule {i}/{n}); \
                 replay with: SPARTA_TEST_SEED={seed} cargo test"
            );
            std::panic::resume_unwind(cause);
        }
    }
}

/// Runs `check` once per seed against a fresh [`WorkerPool`] whose
/// size is derived from the seed (1..=4 workers), for `n` consecutive
/// seeds starting at [`base_seed`]. Each iteration constructs the pool,
/// runs the check, and drops the pool — so every seed exercises worker
/// spawn, the park/unpark path while the check runs, and the full
/// retire/join shutdown handshake, across the different worker counts.
/// Panics inside `check` are re-thrown after printing the failing seed
/// and the `SPARTA_TEST_SEED` replay command, like [`sweep_schedules`].
pub fn sweep_pool_schedules<F>(n: u64, mut check: F)
where
    F: FnMut(u64, &WorkerPool),
{
    let base = base_seed();
    for i in 0..n {
        let seed = base.wrapping_add(i);
        // SplitMix64 finalizer: decorrelate worker count from the seed
        // sequence so consecutive seeds do not walk sizes in lockstep.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let threads = 1 + (z ^ (z >> 31)) as usize % 4;
        let pool = WorkerPool::new(threads);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(seed, &pool);
        }));
        if let Err(cause) = outcome {
            eprintln!(
                "pool schedule sweep failed at seed {seed} ({threads} workers, \
                 base {base}, schedule {i}/{n}); \
                 replay with: SPARTA_TEST_SEED={seed} cargo test"
            );
            std::panic::resume_unwind(cause);
        }
        drop(pool);
    }
}

/// Asserts the invariants every *exact* run must satisfy on every
/// schedule: perfect recall against the oracle, rank-ordered hits, and
/// reported scores that never exceed the true document scores (NRA
/// lower-bound semantics; full-scoring algorithms satisfy it with
/// equality).
pub fn assert_exact_invariants(oracle: &Oracle, r: &TopKResult, context: &str) {
    assert_eq!(
        oracle.recall(&r.docs()),
        1.0,
        "{context}: exact run missed the true top-k: got {:?}",
        r.docs()
    );
    assert!(
        r.hits.windows(2).all(|w| w[0].score >= w[1].score),
        "{context}: hits not rank-ordered"
    );
    for h in &r.hits {
        assert!(
            h.score <= oracle.score(h.doc),
            "{context}: reported score {} exceeds true score {} for doc {}",
            h.score,
            oracle.score(h.doc),
            h.doc
        );
    }
}

/// Asserts Sparta's Eq. 2 termination evidence: an exact run stops only
/// when the candidate map has been pruned down to exactly the heap
/// members (`|docMap| == |docHeap|`), and never via the Δ timeout.
pub fn assert_eq2_termination(r: &TopKResult, context: &str) {
    assert_eq!(
        r.work.timeout_stops, 0,
        "{context}: exact run stopped on the Δ timeout"
    );
    assert_eq!(
        r.work.docmap_final,
        r.hits.len() as u64,
        "{context}: |docMap| != |docHeap| at termination (Eq. 2 violated)"
    );
}

/// Convenience: run `algo` on the standard fixture with `exec` and the
/// given config.
pub fn run(
    algo: &dyn Algorithm,
    ix: &Arc<dyn Index>,
    q: &Query,
    cfg: &SearchConfig,
    exec: &DeterministicExecutor,
) -> TopKResult {
    algo.search(ix, q, cfg, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparta_core::sparta::Sparta;

    #[test]
    fn fixture_is_deterministic() {
        let (a, _) = build_index(9);
        let (b, _) = build_index(9);
        assert_eq!(a.num_docs(), b.num_docs());
    }

    #[test]
    fn sweep_reports_failing_seed() {
        let caught = std::panic::catch_unwind(|| {
            sweep_schedules(4, |seed, _| {
                assert_ne!(seed, base_seed().wrapping_add(2), "planted failure");
            });
        });
        assert!(caught.is_err(), "sweep must propagate the panic");
    }

    #[test]
    fn exact_invariants_hold_on_default_schedule() {
        let (ix, corpus) = build_index(3);
        let q = long_query(&corpus, 1);
        let cfg = SearchConfig::exact(10).with_seg_size(64).with_phi(256);
        let oracle = Oracle::compute(ix.as_ref(), &q, 10);
        sweep_schedules(4, |seed, exec| {
            let r = Sparta.search(&ix, &q, &cfg, exec);
            assert_exact_invariants(&oracle, &r, &format!("sparta seed {seed}"));
            assert_eq2_termination(&r, &format!("sparta seed {seed}"));
        });
    }
}
