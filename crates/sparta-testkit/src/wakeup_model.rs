//! Exhaustive interleaving model of the queue-completion wakeup
//! protocol.
//!
//! `JobQueue::wait_done` parks on a condvar after checking the
//! outstanding counter under the queue mutex; `finish_one` performs the
//! final decrement with a plain atomic RMW, *outside* that mutex. The
//! correctness of the pair therefore rests on an ordering argument the
//! type system cannot check: a notify issued between the waiter's
//! check and its park is silently lost, and the waiter sleeps forever.
//!
//! This module models both finish-side protocols as small-step state
//! machines — one waiter thread, one finisher thread — and enumerates
//! **every** interleaving:
//!
//! - [`Protocol::Legacy`]: decrement, then `notify_all`, never touching
//!   the waiter's mutex. The sweep proves this loses wakeups.
//! - [`Protocol::LockBridge`]: the shipped protocol — after the final
//!   decrement the finisher acquires and immediately drops the queue
//!   mutex *before* notifying. Because the waiter holds that mutex
//!   continuously from its check until the condvar's atomic
//!   release-and-park, the bridge cannot complete inside the race
//!   window, so the notify always lands after the park.
//!
//! The model gives the condvar its guaranteed semantics only: a notify
//! wakes a currently-parked waiter and is lost otherwise. Spurious
//! wakeups and `wait_for` timeouts are deliberately excluded — the
//! point is that the protocol needs neither.

use std::collections::VecDeque;

/// Which finish-side protocol the model executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Decrement then notify, without touching the waiter's mutex.
    /// Exhibits the classic lost wakeup.
    Legacy,
    /// The shipped `finish_one` protocol: decrement, acquire + drop the
    /// queue mutex (the *lock bridge*), then notify.
    LockBridge,
}

/// Outcome counts of an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Total complete interleavings explored.
    pub interleavings: usize,
    /// Interleavings that end wedged: the waiter parked forever with
    /// the finisher already done.
    pub lost_wakeups: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaiterPc {
    /// About to acquire the queue mutex.
    Lock,
    /// Holding the mutex, about to read the outstanding counter.
    Check,
    /// Saw outstanding > 0; about to atomically release + park.
    Park,
    /// Parked on the condvar; runnable only via a notify.
    Waiting,
    /// Woken; must reacquire the mutex before rechecking.
    Relock,
    /// Returned from `wait_done`.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FinisherPc {
    /// About to perform the final `fetch_sub` on the counter.
    Sub,
    /// (LockBridge only) about to acquire the queue mutex.
    Bridge,
    /// (LockBridge only) holding the mutex, about to drop it.
    BridgeDrop,
    /// About to `notify_all`.
    Notify,
    /// Returned from `finish_one`.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Holder {
    Waiter,
    Finisher,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    outstanding: u8,
    lock: Option<Holder>,
    waiter: WaiterPc,
    finisher: FinisherPc,
}

fn waiter_step(mut s: State) -> Option<State> {
    match s.waiter {
        WaiterPc::Lock | WaiterPc::Relock => {
            if s.lock.is_some() {
                return None;
            }
            s.lock = Some(Holder::Waiter);
            s.waiter = WaiterPc::Check;
            Some(s)
        }
        WaiterPc::Check => {
            if s.outstanding == 0 {
                s.lock = None;
                s.waiter = WaiterPc::Done;
            } else {
                s.waiter = WaiterPc::Park;
            }
            Some(s)
        }
        // The condvar's atomic release-and-park: one indivisible step.
        WaiterPc::Park => {
            s.lock = None;
            s.waiter = WaiterPc::Waiting;
            Some(s)
        }
        WaiterPc::Waiting | WaiterPc::Done => None,
    }
}

fn finisher_step(mut s: State, p: Protocol) -> Option<State> {
    match s.finisher {
        FinisherPc::Sub => {
            s.outstanding -= 1;
            s.finisher = match p {
                Protocol::Legacy => FinisherPc::Notify,
                Protocol::LockBridge => FinisherPc::Bridge,
            };
            Some(s)
        }
        FinisherPc::Bridge => {
            if s.lock.is_some() {
                return None;
            }
            s.lock = Some(Holder::Finisher);
            s.finisher = FinisherPc::BridgeDrop;
            Some(s)
        }
        FinisherPc::BridgeDrop => {
            s.lock = None;
            s.finisher = FinisherPc::Notify;
            Some(s)
        }
        FinisherPc::Notify => {
            // Guaranteed condvar semantics: a parked waiter wakes (and
            // must relock); anyone else misses the notify entirely.
            if s.waiter == WaiterPc::Waiting {
                s.waiter = WaiterPc::Relock;
            }
            s.finisher = FinisherPc::Done;
            Some(s)
        }
        FinisherPc::Done => None,
    }
}

/// Exhaustively explores every interleaving of one waiter and one
/// finisher (one unit outstanding) under `protocol`.
pub fn explore(protocol: Protocol) -> ModelStats {
    let mut stats = ModelStats {
        interleavings: 0,
        lost_wakeups: 0,
    };
    // Iterative DFS over the (tiny) interleaving tree; each leaf is a
    // state with no runnable thread.
    let mut stack = VecDeque::new();
    stack.push_back(State {
        outstanding: 1,
        lock: None,
        waiter: WaiterPc::Lock,
        finisher: FinisherPc::Sub,
    });
    while let Some(s) = stack.pop_back() {
        let w = waiter_step(s);
        let f = finisher_step(s, protocol);
        if w.is_none() && f.is_none() {
            stats.interleavings += 1;
            if !(s.waiter == WaiterPc::Done && s.finisher == FinisherPc::Done) {
                stats.lost_wakeups += 1;
            }
            continue;
        }
        if let Some(next) = w {
            stack.push_back(next);
        }
        if let Some(next) = f {
            stack.push_back(next);
        }
    }
    stats
}

/// Number of interleavings under `protocol` that end with the waiter
/// parked forever. The shipped [`Protocol::LockBridge`] must return 0;
/// [`Protocol::Legacy`] returns at least 1 (the bug the bridge fixes).
pub fn lost_wakeup_interleavings(protocol: Protocol) -> usize {
    explore(protocol).lost_wakeups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_protocol_loses_wakeups() {
        let stats = explore(Protocol::Legacy);
        assert!(
            stats.lost_wakeups >= 1,
            "legacy model must exhibit the lost wakeup: {stats:?}"
        );
        assert!(
            stats.interleavings > stats.lost_wakeups,
            "legacy model must also have successful interleavings: {stats:?}"
        );
    }

    #[test]
    fn lock_bridge_never_loses_wakeups() {
        let stats = explore(Protocol::LockBridge);
        assert_eq!(
            stats.lost_wakeups, 0,
            "lock-bridge protocol must wake on every interleaving: {stats:?}"
        );
        assert!(stats.interleavings > 0);
    }

    #[test]
    fn every_interleaving_terminates_with_counter_drained() {
        // Sanity on the model itself: the finisher's decrement happens
        // exactly once on every path, so a wedged waiter can only be a
        // lost *notify*, never lost work.
        for p in [Protocol::Legacy, Protocol::LockBridge] {
            let stats = explore(p);
            assert!(stats.interleavings >= 2, "{p:?}: {stats:?}");
        }
    }
}
