//! Exhaustive model of the queue-completion wakeup protocol — now a
//! thin wrapper over `sparta-model`'s instruction-level port.
//!
//! This module used to carry its own bespoke state-machine explorer
//! (one waiter, one finisher, hand-enumerated program counters). That
//! explorer only checked the *scheduling* half of the protocol; the
//! `sparta-model` port ([`sparta_model::protocols::job_queue`]) checks
//! the same interleaving space **and** the weak-memory half (the
//! release edge of the final `fetch_sub` publishing the finished job's
//! writes), so the bespoke machinery is gone and this module just
//! re-expresses its old API on top of the checker.
//!
//! The golden regression is unchanged: [`Protocol::Legacy`]
//! (decrement + notify, no lock bridge) must lose a wakeup on some
//! interleaving, and the shipped [`Protocol::LockBridge`] must verify
//! clean over every interleaving.

use sparta_model::protocols::job_queue::{self, Variant};
use sparta_model::protocols::Mutation;

/// Which finish-side protocol the model executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Decrement then notify, without touching the waiter's mutex.
    /// Exhibits the classic lost wakeup.
    Legacy,
    /// The shipped `finish_one` protocol: decrement, acquire + drop the
    /// queue mutex (the *lock bridge*), then notify.
    LockBridge,
}

/// Outcome counts of an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Total complete interleavings explored.
    pub interleavings: usize,
    /// Interleavings that end wedged: the waiter parked forever with
    /// the finisher already done.
    pub lost_wakeups: usize,
}

/// Exhaustively explores every interleaving (and every permitted stale
/// read) of one waiter and one finisher under `protocol`.
pub fn explore(protocol: Protocol) -> ModelStats {
    let variant = match protocol {
        Protocol::Legacy => Variant::Legacy,
        Protocol::LockBridge => Variant::LockBridge,
    };
    let report = job_queue::model(variant, Mutation::None).check();
    assert!(
        !report.truncated,
        "wakeup model must be explored exhaustively"
    );
    ModelStats {
        interleavings: report.executions,
        lost_wakeups: report.violations,
    }
}

/// Number of interleavings under `protocol` that end with the waiter
/// parked forever. The shipped [`Protocol::LockBridge`] must return 0;
/// [`Protocol::Legacy`] returns at least 1 (the bug the bridge fixes).
pub fn lost_wakeup_interleavings(protocol: Protocol) -> usize {
    explore(protocol).lost_wakeups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_protocol_loses_wakeups() {
        let stats = explore(Protocol::Legacy);
        assert!(
            stats.lost_wakeups >= 1,
            "legacy model must exhibit the lost wakeup: {stats:?}"
        );
        assert!(
            stats.interleavings > stats.lost_wakeups,
            "legacy model must also have successful interleavings: {stats:?}"
        );
    }

    #[test]
    fn lock_bridge_never_loses_wakeups() {
        let stats = explore(Protocol::LockBridge);
        assert_eq!(
            stats.lost_wakeups, 0,
            "lock-bridge protocol must wake on every interleaving: {stats:?}"
        );
        assert!(stats.interleavings > 0);
    }

    #[test]
    fn every_interleaving_terminates_with_counter_drained() {
        // Sanity on the model itself: the finisher's decrement happens
        // exactly once on every path, so a wedged waiter can only be a
        // lost *notify*, never lost work.
        for p in [Protocol::Legacy, Protocol::LockBridge] {
            let stats = explore(p);
            assert!(stats.interleavings >= 2, "{p:?}: {stats:?}");
        }
    }
}
