//! Focused stress tests for the concurrent collections (ISSUE
//! satellite): threshold monotonicity under random interleavings,
//! multi-thread StripedMap consistency, SwapCell publish visibility,
//! and ShardedCounter sum consistency.
//!
//! Randomized tests derive their RNG from `SPARTA_TEST_SEED` (default
//! 0) so any failure is replayable with the printed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparta_collections::{BoundedTopK, MutableTopK, ShardedCounter, StripedMap, SwapCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn test_seed() -> u64 {
    std::env::var("SPARTA_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// The top-k threshold (Θ) must be monotonically non-decreasing no
/// matter the order offers arrive in — Sparta's pruning correctness
/// rests on Θ only ever rising (a candidate pruned against Θ can never
/// become viable again).
#[test]
fn bounded_topk_threshold_monotone_under_random_interleavings() {
    let base = test_seed();
    for round in 0..32u64 {
        let seed = base.wrapping_add(round);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap: BoundedTopK<u32> = BoundedTopK::new(8);
        let mut last = 0u64;
        for i in 0..500u32 {
            let score: u64 = rng.gen_range(1..10_000);
            heap.offer(score, i);
            let theta = heap.threshold();
            assert!(
                theta >= last,
                "seed {seed}: threshold fell {last} -> {theta} (replay with \
                 SPARTA_TEST_SEED={seed})"
            );
            last = theta;
        }
    }
}

/// Same monotonicity contract for the mutable heap, including under
/// score *updates* to existing members (the operation BoundedTopK
/// doesn't support).
#[test]
fn mutable_topk_threshold_monotone_under_updates() {
    let base = test_seed();
    for round in 0..32u64 {
        let seed = base.wrapping_add(round ^ 0xA5A5);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap: MutableTopK<u32> = MutableTopK::new(8);
        let mut last = 0u64;
        for _ in 0..500 {
            let item: u32 = rng.gen_range(0..64); // duplicates = updates
            let score: u64 = rng.gen_range(1..10_000);
            heap.offer(score, item);
            let theta = heap.threshold();
            assert!(
                theta >= last,
                "seed {seed}: threshold fell {last} -> {theta} (replay with \
                 SPARTA_TEST_SEED={seed})"
            );
            last = theta;
        }
    }
}

/// Concurrent stress: threads hammer disjoint key ranges (for a
/// checkable end state) while also reading each other's ranges. The
/// final contents must be exactly the surviving inserts.
#[test]
fn striped_map_concurrent_stress() {
    const THREADS: u32 = 8;
    const PER_THREAD: u32 = 2_000;
    let map: Arc<StripedMap<u32, u32>> = Arc::new(StripedMap::with_stripes(16));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let lo = t * PER_THREAD;
                for k in lo..lo + PER_THREAD {
                    map.insert(k, k.wrapping_mul(31));
                    // Cross-thread reads must never observe torn state.
                    let foreign = (k.wrapping_mul(2654435761)) % (THREADS * PER_THREAD);
                    if let Some(v) = map.get(&foreign) {
                        assert_eq!(v, foreign.wrapping_mul(31), "torn read of {foreign}");
                    }
                }
                // Remove the odd half of our own range.
                for k in (lo..lo + PER_THREAD).filter(|k| k % 2 == 1) {
                    assert_eq!(map.remove(&k), Some(k.wrapping_mul(31)));
                }
            });
        }
    });
    assert_eq!(map.len(), (THREADS * PER_THREAD / 2) as usize);
    let mut got = map.collect();
    got.sort_unstable();
    let want: Vec<(u32, u32)> = (0..THREADS * PER_THREAD)
        .filter(|k| k % 2 == 0)
        .map(|k| (k, k.wrapping_mul(31)))
        .collect();
    assert_eq!(got, want);
}

/// SwapCell's pointer swing must publish fully-built values: readers
/// racing with a writer may see the old or the new map, never a
/// half-initialized one, and the version they observe must be
/// monotone per reader (swaps happen in order from one writer).
#[test]
fn swap_cell_publishes_fully_built_values() {
    const VERSIONS: u64 = 2_000;
    // A value whose internal consistency is checkable: v.1 must always
    // equal v.0 * 2 + 1, which only holds if the whole tuple was
    // visible before the pointer swing.
    let cell = Arc::new(SwapCell::new((0u64, 1u64)));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let v = cell.load();
                    assert_eq!(v.1, v.0 * 2 + 1, "torn publication of version {}", v.0);
                    assert!(v.0 >= last, "version went backwards: {last} -> {}", v.0);
                    last = v.0;
                }
            });
        }
        for ver in 1..=VERSIONS {
            cell.swap(Arc::new((ver, ver * 2 + 1)));
        }
        stop.store(true, Ordering::Release);
    });
    assert_eq!(cell.load().0, VERSIONS);
}

/// The sharded counter must never lose increments: concurrent adds
/// from many threads sum exactly, and `get` during the run is always
/// ≤ the true total (monotone, no phantom counts).
#[test]
fn sharded_counter_sum_consistency() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 100_000;
    let c = Arc::new(ShardedCounter::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.incr();
                }
            });
        }
        // Concurrent observer: totals must never exceed the maximum.
        let c2 = Arc::clone(&c);
        s.spawn(move || {
            let mut last = 0;
            for _ in 0..1_000 {
                let now = c2.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                assert!(now <= THREADS * PER_THREAD, "phantom increments: {now}");
                last = now;
            }
        });
    });
    assert_eq!(c.get(), THREADS * PER_THREAD);
    c.add(5);
    assert_eq!(c.get(), THREADS * PER_THREAD + 5);
    c.reset();
    assert_eq!(c.get(), 0);
}
