//! Bounded top-k min-heap with threshold tracking.
//!
//! Every top-k retrieval algorithm in the paper maintains "the top-k
//! documents among those scored so far in a heap" together with a
//! threshold Θ holding "the score of the k-th (lowest-ranked) document
//! in the heap; any document whose score is below this threshold is not
//! a candidate for the final top-k list. As long as the heap contains
//! fewer than k documents, Θ remains zero." (§3.1). [`BoundedTopK`]
//! implements exactly this contract.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, item)` pair ordered as a *min*-heap entry by score, with
/// the item as tie-breaker so heap contents are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<T> {
    /// Aggregated score of the item.
    pub score: u64,
    /// The item (usually a document id).
    pub item: T,
}

impl<T: Ord> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the *lowest*
        // score at the top so it can be evicted in O(log k).
        other
            .score
            .cmp(&self.score)
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// A bounded min-heap retaining the `k` highest-scoring items inserted
/// so far.
///
/// ```
/// use sparta_collections::BoundedTopK;
/// let mut heap = BoundedTopK::new(2);
/// heap.offer(30, 1u32);
/// heap.offer(10, 2);
/// heap.offer(20, 3); // displaces (10, 2)
/// assert_eq!(heap.threshold(), 20);
/// let top: Vec<u32> = heap.into_sorted_vec().iter().map(|e| e.item).collect();
/// assert_eq!(top, vec![1, 3]);
/// ```
///
/// The threshold Θ ([`BoundedTopK::threshold`]) is the k-th best score
/// once the heap is full and `0` before that, matching the paper's
/// definition. Ties at the threshold are broken by the item ordering
/// (larger items win), which keeps results deterministic across runs
/// and thread interleavings.
#[derive(Debug, Clone)]
pub struct BoundedTopK<T> {
    k: usize,
    heap: BinaryHeap<Entry<T>>,
}

impl<T: Ord + Copy> BoundedTopK<T> {
    /// Creates an empty heap that will retain at most `k` items.
    ///
    /// # Panics
    /// Panics if `k == 0`; a top-0 query is meaningless and would make
    /// the threshold semantics degenerate.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k heap requires k >= 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The capacity bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently held (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap holds `k` items (the threshold is now "live").
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The threshold Θ: the lowest score in the heap once full, `0`
    /// otherwise (§3.1).
    #[inline]
    pub fn threshold(&self) -> u64 {
        if self.is_full() {
            self.heap.peek().map_or(0, |e| e.score)
        } else {
            0
        }
    }

    /// The lowest score currently in the heap, even when not yet full.
    /// `None` when empty.
    #[inline]
    pub fn min_score(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.score)
    }

    /// Offers an item. Returns `true` if the heap changed (the item was
    /// admitted), `false` if it was rejected for scoring at or below
    /// the current contents' floor.
    ///
    /// An evicted item (when the heap was full and the new item
    /// displaced the minimum) does *not* count as "no change": the heap
    /// changed and callers tracking `heapUpdTime` must refresh it.
    pub fn offer(&mut self, score: u64, item: T) -> bool {
        let entry = Entry { score, item };
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return true;
        }
        // Full: admit only if strictly better than the current minimum
        // (ties broken by item so outcomes are deterministic).
        match self.heap.peek() {
            // Reversed ordering: "better" entries compare *smaller*.
            Some(min) if entry < *min => {
                self.heap.pop();
                self.heap.push(entry);
                true
            }
            Some(_) => false,
            None => unreachable!("k >= 1 and len == k implies non-empty"),
        }
    }

    /// Offers an item and reports what was evicted, for callers that
    /// maintain auxiliary bookkeeping (e.g. Sparta's heap trace).
    pub fn offer_evict(&mut self, score: u64, item: T) -> OfferOutcome<T> {
        if self.heap.len() < self.k {
            self.heap.push(Entry { score, item });
            return OfferOutcome::Inserted;
        }
        let entry = Entry { score, item };
        match self.heap.peek() {
            Some(min) if entry < *min => {
                let evicted = self.heap.pop().expect("non-empty");
                self.heap.push(entry);
                OfferOutcome::Displaced(evicted.item)
            }
            Some(_) => OfferOutcome::Rejected,
            None => unreachable!(),
        }
    }

    /// Whether an item with `score` would be admitted right now.
    #[inline]
    pub fn would_admit(&self, score: u64, item: T) -> bool {
        if self.heap.len() < self.k {
            return true;
        }
        match self.heap.peek() {
            Some(min) => (Entry { score, item }) < *min,
            None => true,
        }
    }

    /// Iterates over the current entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        self.heap.iter()
    }

    /// Consumes the heap and returns entries sorted by descending
    /// score (ties: descending item), i.e. rank order.
    pub fn into_sorted_vec(self) -> Vec<Entry<T>> {
        let mut v: Vec<Entry<T>> = self.heap.into_vec();
        v.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| b.item.cmp(&a.item)));
        v
    }

    /// Returns entries sorted by rank without consuming the heap.
    pub fn sorted_entries(&self) -> Vec<Entry<T>> {
        let mut v: Vec<Entry<T>> = self.heap.iter().copied().collect();
        v.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| b.item.cmp(&a.item)));
        v
    }

    /// Replaces the entire contents from an iterator of `(score, item)`
    /// pairs, keeping only the top k. Used when a caller recomputes all
    /// scores (Sparta's lazy lower-bound refresh, Alg. 1 lines 30–32).
    pub fn rebuild<I: IntoIterator<Item = (u64, T)>>(&mut self, items: I) {
        self.heap.clear();
        for (score, item) in items {
            self.offer(score, item);
        }
    }
}

/// Result of [`BoundedTopK::offer_evict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome<T> {
    /// The heap was not yet full; the item was inserted.
    Inserted,
    /// The heap was full; the item displaced the previous minimum.
    Displaced(T),
    /// The item scored at or below the floor and was rejected.
    Rejected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_zero_until_full() {
        let mut h = BoundedTopK::new(3);
        assert_eq!(h.threshold(), 0);
        h.offer(10, 1u32);
        h.offer(20, 2);
        assert_eq!(h.threshold(), 0, "not full yet");
        h.offer(30, 3);
        assert_eq!(h.threshold(), 10, "k-th best once full");
    }

    #[test]
    fn keeps_k_best() {
        let mut h = BoundedTopK::new(2);
        for (s, d) in [(5u64, 1u32), (9, 2), (1, 3), (7, 4)] {
            h.offer(s, d);
        }
        let top = h.into_sorted_vec();
        assert_eq!(
            top.iter().map(|e| (e.score, e.item)).collect::<Vec<_>>(),
            vec![(9, 2), (7, 4)]
        );
    }

    #[test]
    fn rejects_below_threshold() {
        let mut h = BoundedTopK::new(1);
        assert!(h.offer(10, 1u32));
        assert!(!h.offer(5, 2));
        assert!(!h.offer(10, 0), "tie broken toward larger item");
        assert!(h.offer(10, 3), "tie broken toward larger item");
        assert_eq!(h.sorted_entries()[0].item, 3);
    }

    #[test]
    fn offer_evict_reports_displacement() {
        let mut h = BoundedTopK::new(1);
        assert_eq!(h.offer_evict(10, 7u32), OfferOutcome::Inserted);
        assert_eq!(h.offer_evict(12, 8), OfferOutcome::Displaced(7));
        assert_eq!(h.offer_evict(3, 9), OfferOutcome::Rejected);
    }

    #[test]
    fn would_admit_matches_offer() {
        let mut h = BoundedTopK::new(2);
        for (s, d) in [(5u64, 1u32), (9, 2), (1, 3), (7, 4), (7, 0), (8, 9)] {
            let predicted = h.would_admit(s, d);
            let actual = h.offer(s, d);
            assert_eq!(predicted, actual, "score {s} item {d}");
        }
    }

    #[test]
    fn rebuild_keeps_top_k() {
        let mut h = BoundedTopK::new(2);
        h.offer(1, 1u32);
        h.rebuild([(4u64, 10u32), (2, 11), (9, 12)]);
        let v = h.into_sorted_vec();
        assert_eq!(v.iter().map(|e| e.item).collect::<Vec<_>>(), vec![12, 10]);
    }

    #[test]
    fn deterministic_under_duplicate_scores() {
        // All items share one score; the k retained must be the k
        // largest item ids regardless of insertion order.
        let mut a = BoundedTopK::new(3);
        let mut b = BoundedTopK::new(3);
        let items = [5u32, 1, 9, 7, 3, 8];
        for &i in &items {
            a.offer(100, i);
        }
        for &i in items.iter().rev() {
            b.offer(100, i);
        }
        assert_eq!(a.sorted_entries(), b.sorted_entries());
        assert_eq!(
            a.sorted_entries()
                .iter()
                .map(|e| e.item)
                .collect::<Vec<_>>(),
            vec![9, 8, 7]
        );
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = BoundedTopK::<u32>::new(0);
    }
}
