//! A fast multiplicative hasher for the hot-path integer keys.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, a keyed hash
//! designed to resist hash-flooding from *adversarial* keys. Sparta's
//! shared `docMap` and the per-term `termMap` replicas are keyed by
//! document ids — small machine integers produced by our own index,
//! never by an attacker — so SipHash's ~10 ns per hash is pure
//! overhead, and the hot path pays it **twice** per access (once to
//! pick the stripe, once inside the stripe's map). [`FastIntHasher`]
//! replaces it with Fibonacci (multiplicative) hashing: one XOR and
//! one multiply per written word plus a two-round xor-shift finalizer,
//! totalling a handful of cycles.
//!
//! The hasher is deterministic (no per-process random state, unlike
//! `RandomState`), which the property tests exploit: a
//! [`StripedMap`](crate::StripedMap) with this hasher must be
//! observationally equivalent to `std::collections::HashMap` under any
//! operation sequence.
//!
//! Why not `fxhash`/`ahash`? This workspace builds offline (no registry
//! access; see `shims/README.md`), and the mixer below is ~30 lines —
//! vendoring a dependency for it would be all cost and no benefit.

use std::hash::{BuildHasher, Hasher};

/// 2^64 / φ, the Fibonacci hashing constant (Knuth, TAOCP §6.4). Odd,
/// so multiplication by it is a bijection on `u64`.
const PHI64: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalizer multipliers (SplitMix64's, Steele et al.) — two xor-shift
/// multiply rounds give full avalanche so both the *high* bits (used
/// for stripe selection) and the *low* bits (used for bucket indexing)
/// are well mixed.
const MIX_A: u64 = 0xBF58_476D_1CE4_E5B9;
const MIX_B: u64 = 0x94D0_49BB_1331_11EB;

/// A multiplicative hasher specialized for small integer keys.
///
/// Each written word folds into the state with one XOR + one multiply;
/// [`finish`](Hasher::finish) applies a xor-shift avalanche. For the
/// common case — a single `u32`/`u64` key — the whole hash is 3
/// multiplies, an order of magnitude cheaper than SipHash-1-3.
#[derive(Debug, Clone, Default)]
pub struct FastIntHasher {
    state: u64,
}

impl FastIntHasher {
    #[inline]
    fn mix_word(&mut self, w: u64) {
        self.state = (self.state ^ w).wrapping_mul(PHI64);
    }
}

impl Hasher for FastIntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(MIX_A);
        z = (z ^ (z >> 27)).wrapping_mul(MIX_B);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys (e.g. strings): fold 8-byte
        // chunks, then the (length-tagged) tail, so distinct lengths
        // hash differently.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix_word(u64::from_le_bytes(tail));
        }
        self.mix_word(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix_word(i as u64);
        self.mix_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix_word(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// [`BuildHasher`] for [`FastIntHasher`]. Zero-sized and deterministic:
/// two builders always produce identical hashes, so a hash computed
/// once can drive both stripe selection and in-stripe bucket placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastBuildHasher;

impl BuildHasher for FastBuildHasher {
    type Hasher = FastIntHasher;

    #[inline]
    fn build_hasher(&self) -> FastIntHasher {
        FastIntHasher::default()
    }
}

/// A `HashMap` keyed with [`FastIntHasher`] — the drop-in replacement
/// for `std::collections::HashMap` on integer-keyed hot paths (Sparta's
/// per-term `termMap` replicas).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastIntHasher`] (heap membership snapshots).
pub type FastHashSet<T> = std::collections::HashSet<T, FastBuildHasher>;

/// Hashes one value with [`FastIntHasher`] — the shared hash function
/// behind both stripe selection and bucket indexing.
#[inline]
pub fn fast_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    FastBuildHasher.hash_one(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(fast_hash_one(&42u32), fast_hash_one(&42u32));
        let a = FastBuildHasher.hash_one(7u64);
        let b = FastBuildHasher.hash_one(7u64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Multiplicative hashing is a bijection per word, so distinct
        // single-word keys can never collide before the finalizer, and
        // the finalizer is a bijection too.
        let hashes: std::collections::HashSet<u64> =
            (0u32..10_000).map(|i| fast_hash_one(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn high_and_low_bits_both_spread() {
        // Sequential doc ids must spread across 64 stripes (high bits)
        // and across 256 buckets (low bits) — the two consumers of the
        // single hash.
        let mut stripes = std::collections::HashSet::new();
        let mut buckets = std::collections::HashSet::new();
        for i in 0u32..4096 {
            let h = fast_hash_one(&i);
            stripes.insert((h >> 32) as usize & 63);
            buckets.insert(h as usize & 255);
        }
        assert_eq!(stripes.len(), 64, "high bits collapse");
        assert_eq!(buckets.len(), 256, "low bits collapse");
    }

    #[test]
    fn byte_streams_length_tagged() {
        use std::hash::Hash;
        // "ab" followed by "c" must differ from "a" followed by "bc":
        // Hash for str writes a length/terminator, and our fallback
        // additionally folds the length.
        let h1 = fast_hash_one(&("ab", "c"));
        let h2 = fast_hash_one(&("a", "bc"));
        assert_ne!(h1, h2);
        // And the raw write path distinguishes lengths.
        let mut a = FastIntHasher::default();
        let mut b = FastIntHasher::default();
        [1u8, 2, 3].hash(&mut a);
        [1u8, 2, 3, 0].hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fast_map_and_set_usable() {
        let mut m: FastHashMap<u32, u32> = FastHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&7), Some(&14));
        let s: FastHashSet<u32> = (0..50).collect();
        assert!(s.contains(&49) && !s.contains(&50));
    }
}
