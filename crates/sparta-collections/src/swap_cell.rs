//! A snapshot-readable, wholesale-replaceable shared pointer.
//!
//! Sparta's cleaner "repeatedly builds a new map `tmpDocMap` … Once
//! `tmpDocMap` is ready, the cleaner replaces `docMap` with it via a
//! single pointer swing (flipping the global reference)" (§4.3).
//! Readers (the worker threads) never block the writer and vice versa:
//! a reader takes an `Arc` snapshot of the current map and keeps using
//! it for a whole posting-list segment; the cleaner swaps in the pruned
//! map underneath.
//!
//! The implementation uses a `parking_lot::RwLock<Arc<T>>`: readers
//! hold the read lock only for the duration of an `Arc::clone` (a few
//! nanoseconds), and the single writer holds the write lock only for a
//! pointer store. This gives the wait-free-in-practice behaviour of an
//! atomic pointer swing without `unsafe` or an epoch reclamation
//! scheme — once the swing happens, old snapshots die when the last
//! reader drops its `Arc`.

use parking_lot::RwLock;
use std::sync::Arc;

/// Shared cell holding an `Arc<T>` that readers snapshot and a writer
/// replaces atomically.
///
/// ```
/// use sparta_collections::SwapCell;
/// let cell = SwapCell::new(vec![1, 2, 3]);
/// let snapshot = cell.load();
/// cell.store(vec![4]);                   // the pointer swing
/// assert_eq!(*snapshot, vec![1, 2, 3]);  // old readers unaffected
/// assert_eq!(*cell.load(), vec![4]);
/// ```
pub struct SwapCell<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> SwapCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: RwLock::new(Arc::new(value)),
        }
    }

    /// Creates a cell from an existing `Arc`.
    pub fn from_arc(value: Arc<T>) -> Self {
        Self {
            inner: RwLock::new(value),
        }
    }

    /// Takes a snapshot of the current value. The snapshot remains
    /// valid (and unchanged) even if the cell is swapped afterwards.
    #[inline]
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.read())
    }

    /// Replaces the current value, returning the previous one.
    /// This is the cleaner's "single pointer swing".
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let mut guard = self.inner.write();
        std::mem::replace(&mut guard, value)
    }

    /// Replaces the current value with `value`.
    pub fn store(&self, value: T) {
        self.swap(Arc::new(value));
    }

    /// Whether the current value is the same allocation as `other`.
    /// Workers use this to detect that their local `termMap` snapshot
    /// is (still) the global map (Alg. 1 line 9's
    /// `termMap[i] = docMap` test).
    pub fn ptr_eq(&self, other: &Arc<T>) -> bool {
        Arc::ptr_eq(&self.inner.read(), other)
    }
}

impl<T: Default> Default for SwapCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_returns_snapshot() {
        let cell = SwapCell::new(vec![1, 2, 3]);
        let snap = cell.load();
        cell.store(vec![9]);
        assert_eq!(*snap, vec![1, 2, 3], "snapshot unaffected by swap");
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn swap_returns_previous() {
        let cell = SwapCell::new(1u32);
        let prev = cell.swap(Arc::new(2));
        assert_eq!(*prev, 1);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn ptr_eq_detects_swing() {
        let cell = SwapCell::new(0u32);
        let snap = cell.load();
        assert!(cell.ptr_eq(&snap));
        cell.store(0);
        assert!(!cell.ptr_eq(&snap), "same value, different allocation");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cell = Arc::new(SwapCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "values must be monotone");
                        last = v;
                    }
                });
            }
            for i in 1..=1000u64 {
                cell.store(i);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.load(), 1000);
    }
}
