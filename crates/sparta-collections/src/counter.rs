//! A contention-avoiding counter.
//!
//! Hot counters (postings scanned, I/O blocks fetched) are incremented
//! from every worker thread. A single `AtomicU64` would bounce its
//! cache line between cores on every increment; [`ShardedCounter`]
//! spreads increments over per-slot cache-line-padded atomics and sums
//! them on read, the standard HPC pattern for write-heavy/read-rare
//! statistics.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counter slots; a small power of two ≥ typical core counts.
const SLOTS: usize = 16;

/// A counter sharded over cache-line-padded slots.
///
/// `add` picks a slot from the calling thread's identity so different
/// threads usually hit different cache lines. `get` sums all slots;
/// the result is exact once all writers are quiescent, and a valid
/// (possibly slightly stale) lower bound while they are running.
pub struct ShardedCounter {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        let slots: Vec<_> = (0..SLOTS)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        Self {
            slots: slots.into_boxed_slice(),
        }
    }

    #[inline]
    fn slot(&self) -> &AtomicU64 {
        // Derive a slot index from the thread id; stable per thread.
        thread_local! {
            static SLOT: usize = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                (h.finish() as usize) % SLOTS
            };
        }
        let idx = SLOT.with(|s| *s);
        &self.slots[idx]
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.slot().fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sums all slots.
    pub fn get(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Resets all slots to zero. Only meaningful while writers are
    /// quiescent.
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedCounter({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_single_thread() {
        let c = ShardedCounter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counts_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
