//! A lock-striped concurrent hash map.
//!
//! Sparta's shared `docMap` is written concurrently by all worker
//! threads during the growing phase. The paper protects "each hash
//! bucket by a granular lock, which performs better than the generic
//! Java concurrent hashmap" (§4.3). [`StripedMap`] is the analogous
//! structure: the key space is partitioned into a fixed power-of-two
//! number of *stripes*, each an independent `Mutex<HashMap>`. Threads
//! touching different stripes never contend.
//!
//! Values are required to be `Clone`; callers that need shared mutable
//! entries store `Arc<T>` (as Sparta does for its `DocType` records) or
//! `Copy` slab handles (`DocHandle` into a `DocSlab`).
//!
//! Hashing: the map hashes each key **once** with
//! [`FastIntHasher`](crate::fast_hash::FastIntHasher); the high 32 bits
//! pick the stripe and the full hash indexes the stripe's `HashMap`
//! (which shares the same [`FastBuildHasher`], so the per-key SipHash
//! cost — previously paid twice per access — is gone entirely). The
//! stripe must come from the *high* bits: `HashMap`'s open addressing
//! consumes the low bits for bucket placement, and reusing them for
//! striping would make every stripe's resident keys agree on those
//! bits, degrading in-stripe bucket distribution.

use crate::fast_hash::{fast_hash_one, FastBuildHasher, FastHashMap};
use parking_lot::{Mutex, MutexGuard};
use sparta_obs::{recorder, EventKind};
use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of stripes; enough that 12 worker threads (the
/// paper's hardware) rarely collide.
pub const DEFAULT_STRIPES: usize = 64;

/// A concurrent hash map sharded into independently locked stripes.
///
/// ```
/// use sparta_collections::StripedMap;
/// use std::sync::Arc;
/// let map: Arc<StripedMap<u32, u32>> = Arc::new(StripedMap::new());
/// std::thread::scope(|s| {
///     for t in 0..4u32 {
///         let map = Arc::clone(&map);
///         s.spawn(move || {
///             for i in 0..100 {
///                 map.insert(t * 100 + i, i);
///             }
///         });
///     }
/// });
/// assert_eq!(map.len(), 400);
/// ```
pub struct StripedMap<K, V> {
    stripes: Box<[Mutex<FastHashMap<K, V>>]>,
    mask: usize,
    len: AtomicUsize,
}

impl<K: Hash + Eq + Clone, V: Clone> StripedMap<K, V> {
    /// Creates a map with [`DEFAULT_STRIPES`] stripes.
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// Creates a map with `stripes` stripes, rounded up to a power of
    /// two (minimum 1).
    pub fn with_stripes(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        let stripes: Vec<_> = (0..n)
            .map(|_| Mutex::new(FastHashMap::with_hasher(FastBuildHasher)))
            .collect();
        Self {
            stripes: stripes.into_boxed_slice(),
            mask: n - 1,
            len: AtomicUsize::new(0),
        }
    }

    /// Number of stripes (always a power of two).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    #[inline]
    fn stripe_of<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        // High bits select the stripe; the stripe's HashMap recomputes
        // the same cheap hash and consumes the low bits for buckets.
        ((fast_hash_one(&key) >> 32) as usize) & self.mask
    }

    /// Acquires stripe `idx`'s lock, reporting contended waits to the
    /// flight recorder. The uncontended fast path (`try_lock` success)
    /// records nothing and reads no clock — stripe-wait events only
    /// appear when a thread actually blocked, and an uninstalled
    /// recorder makes even the slow path a plain `lock()`. The event
    /// payload carries the stripe index (high bits) alongside the
    /// waited ticks so aggregate profiles can rank contended stripes.
    #[inline]
    fn lock_stripe(&self, idx: usize) -> MutexGuard<'_, FastHashMap<K, V>> {
        let stripe = &self.stripes[idx];
        match stripe.try_lock() {
            Some(guard) => guard,
            None => recorder::timed_tagged(EventKind::StripeWait, idx as u16, || stripe.lock()),
        }
    }

    /// Current number of entries. Exact (maintained with atomic
    /// increments), but may be stale by the time the caller reads it —
    /// exactly the semantics Sparta's `|docMap| < Φ` check needs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the map is empty (same staleness caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a clone of the value for `key`, if present.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.lock_stripe(self.stripe_of(key)).get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.lock_stripe(self.stripe_of(key)).contains_key(key)
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let prev = self.lock_stripe(self.stripe_of(&key)).insert(key, value);
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::AcqRel);
        }
        prev
    }

    /// Returns the value for `key`, inserting `make()` first if absent.
    /// The factory runs under the stripe lock, so exactly one value is
    /// ever created per key even under concurrent calls — this is how
    /// Sparta guarantees a single `DocType` per document id.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, make: F) -> V {
        let mut stripe = self.lock_stripe(self.stripe_of(&key));
        if let Some(v) = stripe.get(&key) {
            return v.clone();
        }
        let v = make();
        stripe.insert(key, v.clone());
        drop(stripe);
        self.len.fetch_add(1, Ordering::AcqRel);
        v
    }

    /// Like [`get_or_insert_with`](Self::get_or_insert_with) but
    /// refuses to create missing entries when `allow_insert` is false
    /// (Sparta stops admitting new documents once `UBStop` holds,
    /// Alg. 1 line 18–21).
    pub fn get_or_try_insert_with<F: FnOnce() -> V>(
        &self,
        key: K,
        allow_insert: bool,
        make: F,
    ) -> Option<V> {
        let mut stripe = self.lock_stripe(self.stripe_of(&key));
        if let Some(v) = stripe.get(&key) {
            return Some(v.clone());
        }
        if !allow_insert {
            return None;
        }
        let v = make();
        stripe.insert(key, v.clone());
        drop(stripe);
        self.len.fetch_add(1, Ordering::AcqRel);
        Some(v)
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let prev = self.lock_stripe(self.stripe_of(key)).remove(key);
        if prev.is_some() {
            self.len.fetch_sub(1, Ordering::AcqRel);
        }
        prev
    }

    /// Visits every entry. Stripes are locked one at a time, so the
    /// visit is not a consistent snapshot across stripes — sufficient
    /// for the cleaner, which tolerates (and rechecks) staleness.
    pub fn for_each<F: FnMut(&K, &V)>(&self, mut f: F) {
        for i in 0..self.stripes.len() {
            let guard = self.lock_stripe(i);
            for (k, v) in guard.iter() {
                f(k, v);
            }
        }
    }

    /// Collects all `(key, value)` pairs (same consistency caveat as
    /// [`for_each`](Self::for_each)).
    pub fn collect(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Mutates the value for `key` in place under the stripe lock.
    /// Returns whether the key was present.
    pub fn update<Q, F>(&self, key: &Q, f: F) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        F: FnOnce(&mut V),
    {
        let mut stripe = self.lock_stripe(self.stripe_of(key));
        match stripe.get_mut(key) {
            Some(v) => {
                f(v);
                true
            }
            None => false,
        }
    }

    /// Removes all entries.
    pub fn clear(&self) {
        for i in 0..self.stripes.len() {
            let mut guard = self.lock_stripe(i);
            let n = guard.len();
            guard.clear();
            drop(guard);
            self.len.fetch_sub(n, Ordering::AcqRel);
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for StripedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> FromIterator<(K, V)> for StripedMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = Self::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove() {
        let m: StripedMap<u32, String> = StripedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1), Some("b".into()));
        assert_eq!(m.remove(&1), Some("b".into()));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn get_or_insert_creates_once() {
        let m: StripedMap<u32, Arc<u32>> = StripedMap::new();
        let a = m.get_or_insert_with(7, || Arc::new(70));
        let b = m.get_or_insert_with(7, || Arc::new(71));
        assert!(Arc::ptr_eq(&a, &b), "one value per key");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn try_insert_respects_flag() {
        let m: StripedMap<u32, u32> = StripedMap::new();
        assert_eq!(m.get_or_try_insert_with(1, false, || 10), None);
        assert_eq!(m.get_or_try_insert_with(1, true, || 10), Some(10));
        // Present entries are returned regardless of the flag.
        assert_eq!(m.get_or_try_insert_with(1, false, || 99), Some(10));
    }

    #[test]
    fn update_in_place() {
        let m: StripedMap<u32, u32> = StripedMap::new();
        assert!(!m.update(&5, |v| *v += 1));
        m.insert(5, 10);
        assert!(m.update(&5, |v| *v += 1));
        assert_eq!(m.get(&5), Some(11));
    }

    #[test]
    fn for_each_sees_everything() {
        let m: StripedMap<u32, u32> = (0..1000u32).map(|i| (i, i * 2)).collect();
        assert_eq!(m.len(), 1000);
        let mut sum = 0u64;
        m.for_each(|_, v| sum += u64::from(*v));
        assert_eq!(sum, (0..1000u64).map(|i| i * 2).sum());
    }

    #[test]
    fn clear_resets_len() {
        let m: StripedMap<u32, u32> = (0..100u32).map(|i| (i, i)).collect();
        m.clear();
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&5), None);
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(StripedMap::<u32, u32>::with_stripes(0).stripe_count(), 1);
        assert_eq!(StripedMap::<u32, u32>::with_stripes(3).stripe_count(), 4);
        assert_eq!(StripedMap::<u32, u32>::with_stripes(64).stripe_count(), 64);
    }

    #[test]
    fn concurrent_get_or_insert_is_unique() {
        let m: Arc<StripedMap<u32, Arc<AtomicUsize>>> = Arc::new(StripedMap::with_stripes(8));
        let made = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                let made = Arc::clone(&made);
                s.spawn(move || {
                    for key in 0..1000u32 {
                        let v = m.get_or_insert_with(key % 100, || {
                            made.fetch_add(1, Ordering::Relaxed);
                            Arc::new(AtomicUsize::new(0))
                        });
                        v.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(made.load(Ordering::Relaxed), 100, "one creation per key");
        assert_eq!(m.len(), 100);
        let mut total = 0;
        m.for_each(|_, v| total += v.load(Ordering::Relaxed));
        assert_eq!(total, 8 * 1000);
    }

    #[test]
    fn contended_stripe_lock_records_wait_event() {
        use sparta_obs::{ClockMode, FlightRecorder};
        let m: Arc<StripedMap<u32, u32>> = Arc::new(StripedMap::with_stripes(1));
        m.insert(1, 10);
        // Hold the map's only stripe, then let another thread (with a
        // ring installed) block on it: the contended acquisition must
        // surface as a StripeWait event. The holder cannot *observe*
        // the waiter blocking, so it yields for a while before
        // releasing; if the waiter had not reached the lock yet (no
        // contention, no event), retry the whole scenario.
        for _attempt in 0..64 {
            let rec = FlightRecorder::new(1, 16, ClockMode::Logical);
            let held = m.stripes[0].lock();
            let (tx, rx) = std::sync::mpsc::channel();
            let waiter = std::thread::spawn({
                let m = Arc::clone(&m);
                let rec = Arc::clone(&rec);
                move || {
                    let _g = rec.install(0);
                    tx.send(()).unwrap();
                    assert_eq!(m.get(&1), Some(10));
                }
            });
            rx.recv().unwrap();
            for _ in 0..100_000 {
                std::hint::spin_loop();
            }
            drop(held);
            waiter.join().unwrap();
            let mut kinds = Vec::new();
            rec.ring(0).for_each(|e| kinds.push(e.kind));
            if kinds.is_empty() {
                continue; // waiter never contended this round
            }
            assert_eq!(kinds, [EventKind::StripeWait]);
            return;
        }
        panic!("waiter never contended the stripe in 64 attempts");
    }

    #[test]
    fn uncontended_ops_record_nothing() {
        use sparta_obs::{ClockMode, FlightRecorder};
        let rec = FlightRecorder::new(1, 16, ClockMode::Logical);
        let _g = rec.install(0);
        let m: StripedMap<u32, u32> = StripedMap::with_stripes(4);
        m.insert(1, 1);
        m.get(&1);
        m.update(&1, |v| *v += 1);
        m.remove(&1);
        assert_eq!(rec.total_events(), 0, "fast path must stay silent");
    }

    #[test]
    fn concurrent_mixed_ops_keep_len_consistent() {
        let m: Arc<StripedMap<u32, u32>> = Arc::new(StripedMap::with_stripes(16));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..2000u32 {
                        let k = (i * 7 + t) % 256;
                        if i % 3 == 0 {
                            m.remove(&k);
                        } else {
                            m.insert(k, i);
                        }
                    }
                });
            }
        });
        // len must equal the true number of entries after the dust settles.
        let mut n = 0;
        m.for_each(|_, _| n += 1);
        assert_eq!(m.len(), n);
    }
}
