//! Concurrent building blocks for the Sparta top-k retrieval engine.
//!
//! This crate provides the low-level shared data structures that the
//! algorithms in `sparta-core` are built from:
//!
//! * [`BoundedTopK`] — a bounded min-heap tracking the k highest-scoring
//!   items seen so far, together with the threshold Θ (the k-th best
//!   score) that drives early stopping in every top-k algorithm.
//! * [`StripedMap`] — a hash map sharded into independently locked
//!   stripes. The Sparta paper (§4.3) protects each hash bucket of the
//!   shared `docMap` with a granular lock and reports that this performs
//!   better than a generic concurrent hash map; this is the Rust
//!   equivalent.
//! * [`SwapCell`] — a shared pointer that readers can snapshot cheaply
//!   and a single writer can replace wholesale ("a single pointer
//!   swing", §4.3), used by the cleaner to publish the pruned `docMap`.
//! * [`ShardedCounter`] — a contention-avoiding counter used for
//!   approximate map sizes and statistics.
//! * [`fast_hash`] — a deterministic multiplicative hasher for integer
//!   keys (doc ids); one hash drives both stripe selection and bucket
//!   indexing, replacing the double SipHash previously paid per
//!   `docMap` access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod fast_hash;
pub mod mutable_topk;
pub mod striped_map;
pub mod swap_cell;
pub mod topk_heap;

pub use counter::ShardedCounter;
pub use fast_hash::{FastBuildHasher, FastHashMap, FastHashSet, FastIntHasher};
pub use mutable_topk::MutableTopK;
pub use striped_map::StripedMap;
pub use swap_cell::SwapCell;
pub use topk_heap::{BoundedTopK, Entry};
