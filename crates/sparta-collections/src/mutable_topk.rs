//! A bounded top-k set supporting score *updates*.
//!
//! NRA-family algorithms maintain their heap by document *lower
//! bounds*, which grow as more postings of a document are seen (§3.2).
//! [`BoundedTopK`](crate::BoundedTopK) cannot re-key an item, so the
//! sequential NRA baseline uses this ordered-set-based variant:
//! O(log k) offer, update, and eviction, with the same threshold
//! semantics (Θ = k-th best score once full, 0 before).

use crate::fast_hash::{FastBuildHasher, FastHashMap};
use std::collections::BTreeSet;
use std::hash::Hash;

/// Bounded top-k with updatable scores.
#[derive(Debug, Clone, Default)]
pub struct MutableTopK<T> {
    k: usize,
    // Ordered ascending: first element is the current minimum.
    set: BTreeSet<(u64, T)>,
    scores: FastHashMap<T, u64>,
}

impl<T: Ord + Hash + Copy> MutableTopK<T> {
    /// Creates an empty set retaining at most `k` items.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k requires k >= 1");
        Self {
            k,
            set: BTreeSet::new(),
            scores: FastHashMap::with_capacity_and_hasher(k + 1, FastBuildHasher),
        }
    }

    /// Number of items held.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no items are held.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Whether `k` items are held.
    pub fn is_full(&self) -> bool {
        self.set.len() == self.k
    }

    /// Θ: the k-th best score once full, 0 otherwise.
    pub fn threshold(&self) -> u64 {
        if self.is_full() {
            self.set.first().map_or(0, |&(s, _)| s)
        } else {
            0
        }
    }

    /// Current score of `item` if it is in the set.
    pub fn score_of(&self, item: &T) -> Option<u64> {
        self.scores.get(item).copied()
    }

    /// Whether `item` is in the set.
    pub fn contains(&self, item: &T) -> bool {
        self.scores.contains_key(item)
    }

    /// Offers `item` with `score`, or raises its score if already
    /// present (scores never decrease in NRA — lower bounds only
    /// grow). Returns `true` if the set changed.
    pub fn offer(&mut self, score: u64, item: T) -> bool {
        if let Some(&old) = self.scores.get(&item) {
            if score <= old {
                return false;
            }
            self.set.remove(&(old, item));
            self.set.insert((score, item));
            self.scores.insert(item, score);
            return true;
        }
        if self.set.len() < self.k {
            self.set.insert((score, item));
            self.scores.insert(item, score);
            return true;
        }
        let &(min_s, min_i) = self.set.first().expect("full implies non-empty");
        // Admit only strict improvements over the floor entry (ties
        // broken by item, matching BoundedTopK's determinism).
        if (score, item) <= (min_s, min_i) {
            return false;
        }
        self.set.pop_first();
        self.scores.remove(&min_i);
        self.set.insert((score, item));
        self.scores.insert(item, score);
        true
    }

    /// Items in rank order (descending score, then descending item).
    pub fn sorted(&self) -> Vec<(u64, T)> {
        self.set.iter().rev().copied().collect()
    }

    /// Iterates over `(score, item)` in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, T)> {
        self.set.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_topk() {
        let mut h = MutableTopK::new(2);
        assert!(h.offer(5, 1u32));
        assert!(h.offer(9, 2));
        assert_eq!(h.threshold(), 5);
        assert!(!h.offer(3, 3), "below floor");
        assert!(h.offer(7, 4));
        assert!(!h.contains(&1));
        assert_eq!(h.sorted(), vec![(9, 2), (7, 4)]);
    }

    #[test]
    fn updates_raise_scores() {
        let mut h = MutableTopK::new(2);
        h.offer(5, 1u32);
        h.offer(9, 2);
        assert!(h.offer(8, 1), "raise in place");
        assert_eq!(h.score_of(&1), Some(8));
        assert_eq!(h.threshold(), 8);
        assert!(!h.offer(4, 1), "scores never decrease");
        assert_eq!(h.score_of(&1), Some(8));
    }

    #[test]
    fn threshold_zero_until_full() {
        let mut h = MutableTopK::new(3);
        h.offer(10, 1u32);
        h.offer(20, 2);
        assert_eq!(h.threshold(), 0);
        h.offer(5, 3);
        assert_eq!(h.threshold(), 5);
    }

    #[test]
    fn tie_break_matches_bounded_topk() {
        use crate::BoundedTopK;
        let items = [
            (100u64, 5u32),
            (100, 1),
            (100, 9),
            (100, 7),
            (100, 3),
            (100, 8),
        ];
        let mut a = MutableTopK::new(3);
        let mut b = BoundedTopK::new(3);
        for &(s, i) in &items {
            a.offer(s, i);
            b.offer(s, i);
        }
        let av: Vec<(u64, u32)> = a.sorted();
        let bv: Vec<(u64, u32)> = b
            .sorted_entries()
            .iter()
            .map(|e| (e.score, e.item))
            .collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn matches_bounded_topk_on_random_stream() {
        use crate::BoundedTopK;
        // Deterministic pseudo-random stream without score updates.
        let mut a = MutableTopK::new(10);
        let mut b = BoundedTopK::new(10);
        let mut x = 12345u64;
        for i in 0..1000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = x % 500;
            a.offer(s, i);
            b.offer(s, i);
        }
        let av: Vec<(u64, u32)> = a.sorted();
        let bv: Vec<(u64, u32)> = b
            .sorted_entries()
            .iter()
            .map(|e| (e.score, e.item))
            .collect();
        assert_eq!(av, bv);
    }
}
