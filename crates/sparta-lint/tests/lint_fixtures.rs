//! The fixture corpus: one file per rule asserted to fire exactly that
//! rule, and a clean file asserted silent. Fixtures are linted under a
//! *virtual path* so the path-scoped policy applies as if they lived in
//! the real tree (the walker skips `fixtures/` directories, so the
//! corpus never pollutes a workspace run).

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints one fixture under `virtual_path` and returns the fired rules.
fn rules_for(name: &str, virtual_path: &str) -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    let report = sparta_lint::run_files(&root, &[fixture(name)], Some(virtual_path))
        .expect("fixture readable");
    report.diagnostics.iter().map(|d| d.rule.clone()).collect()
}

const CORE_MOD: &str = "crates/sparta-core/src/sparta/fixture.rs";
const CORE_ROOT: &str = "crates/sparta-core/src/lib.rs";

#[test]
fn bad_seqcst_fires_even_annotated() {
    let rules = rules_for("bad_seqcst.rs", CORE_MOD);
    assert_eq!(rules, ["seqcst-forbidden"]);
}

#[test]
fn bad_mixed_relaxed_fires() {
    let rules = rules_for("bad_mixed_relaxed.rs", CORE_MOD);
    assert_eq!(rules, ["mixed-ordering"]);
}

#[test]
fn bad_rmw_ordering_fires() {
    let rules = rules_for("bad_rmw_ordering.rs", CORE_MOD);
    assert_eq!(rules, ["rmw-ordering"]);
}

#[test]
fn bad_lock_cycle_fires() {
    let rules = rules_for("bad_lock_cycle.rs", CORE_MOD);
    assert_eq!(rules, ["lock-cycle"]);
}

#[test]
fn bad_lock_unwrap_under_stripe_fires_everywhere() {
    // sparta-index is outside the lock-unwrap ban paths: the stripe
    // variant must fire on its own.
    let rules = rules_for(
        "bad_lock_unwrap_stripe.rs",
        "crates/sparta-index/src/fixture.rs",
    );
    assert_eq!(rules, ["lock-unwrap"]);
}

#[test]
fn bad_wall_clock_fires() {
    let rules = rules_for("bad_wall_clock.rs", CORE_MOD);
    assert_eq!(rules, ["wall-clock"]);
}

#[test]
fn bad_wall_clock_exempt_outside_replay_surface() {
    // The same source is fine where the wall-clock ban does not apply.
    let rules = rules_for("bad_wall_clock.rs", "crates/sparta-bench/src/fixture.rs");
    assert!(rules.is_empty(), "unexpected: {rules:?}");
}

#[test]
fn bad_std_hash_fires() {
    // Both the `use` and the field type mention `HashMap`: two sites.
    let rules = rules_for("bad_std_hash.rs", CORE_MOD);
    assert_eq!(rules, ["std-hash", "std-hash"]);
}

#[test]
fn bad_sleep_fires() {
    let rules = rules_for("bad_sleep.rs", "crates/sparta-core/src/fixture.rs");
    assert_eq!(rules, ["sleep"]);
}

#[test]
fn bad_unsafe_fires() {
    let rules = rules_for("bad_unsafe.rs", CORE_MOD);
    assert_eq!(rules, ["unsafe-code"]);
}

#[test]
fn bad_missing_forbid_fires() {
    let rules = rules_for("bad_missing_forbid.rs", CORE_ROOT);
    assert_eq!(rules, ["missing-forbid"]);
}

#[test]
fn bad_alloc_fires_on_record_path_only() {
    // One unjustified `Vec::with_capacity` on the record path; the
    // annotated construction site stays silent.
    let rules = rules_for("bad_alloc_recorder.rs", "crates/sparta-obs/src/ring.rs");
    assert_eq!(rules, ["alloc"]);
    // Outside the recorder's record path the alloc ban does not apply.
    let rules = rules_for("bad_alloc_recorder.rs", CORE_MOD);
    assert!(rules.is_empty(), "unexpected: {rules:?}");
}

#[test]
fn bad_condvar_wait_fires_on_if_guard_only() {
    // The `while`-guarded wait in the same file must stay silent.
    let rules = rules_for("bad_condvar_wait.rs", CORE_MOD);
    assert_eq!(rules, ["condvar-wait"]);
}

#[test]
fn bad_ordering_no_model_fires() {
    let rules = rules_for("bad_ordering_no_model.rs", CORE_MOD);
    assert_eq!(rules, ["ordering-unmodeled"]);
}

#[test]
fn bad_unknown_model_fires_with_registry() {
    // The model registry is harvested from crates/sparta-model/src,
    // which only exists under the *workspace* root.
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = sparta_lint::run_files(&ws, &[fixture("bad_unknown_model.rs")], Some(CORE_MOD))
        .expect("fixture readable");
    let rules: Vec<String> = report.diagnostics.iter().map(|d| d.rule.clone()).collect();
    assert_eq!(rules, ["unknown-model"]);
    assert!(
        report.model_registry.len() >= 4,
        "registry not harvested: {:?}",
        report.model_registry
    );

    // Under the lint crate root the registry is unavailable: the tag's
    // presence satisfies the rule and the bogus name goes unchecked.
    let rules = rules_for("bad_unknown_model.rs", CORE_MOD);
    assert!(rules.is_empty(), "unexpected: {rules:?}");
}

#[test]
fn bad_unsafe_nomiri_fires_fencing_rules_when_whitelisted() {
    let rules = rules_for(
        "bad_unsafe_nomiri.rs",
        "crates/sparta-lockfree/src/fixture.rs",
    );
    assert_eq!(rules, ["miri-coverage", "unsafe-unjustified"]);
    // The same file outside the whitelist is a flat unsafe ban — the
    // per-site justification buys nothing there.
    let rules = rules_for("bad_unsafe_nomiri.rs", CORE_MOD);
    assert_eq!(rules, ["unsafe-code", "unsafe-code"]);
}

#[test]
fn clean_lockfree_fencing_is_silent() {
    let rules = rules_for("clean_lockfree.rs", "crates/sparta-lockfree/src/fixture.rs");
    assert!(rules.is_empty(), "unexpected: {rules:?}");
}

#[test]
fn clean_fixture_is_silent() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    let report = sparta_lint::run_files(&root, &[fixture("clean.rs")], Some(CORE_ROOT))
        .expect("fixture readable");
    assert!(
        report.is_clean(),
        "clean fixture fired: {:?}",
        report.diagnostics
    );
    let totals = report.ordering_totals();
    assert_eq!(totals.violations, 0);
    assert!(totals.annotated >= 1, "justified Relaxed load not counted");
}

/// Acceptance: the *CLI* exits non-zero under `--check` for a bad
/// fixture and zero for the clean one.
#[test]
fn cli_check_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_sparta-lint");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));

    let bad = Command::new(bin)
        .args(["--check", "--root"])
        .arg(root)
        .args(["--as", CORE_MOD])
        .arg(fixture("bad_seqcst.rs"))
        .output()
        .expect("spawn sparta-lint");
    assert_eq!(bad.status.code(), Some(1), "bad fixture must exit 1");

    let clean = Command::new(bin)
        .args(["--check", "--root"])
        .arg(root)
        .args(["--as", CORE_ROOT])
        .arg(fixture("clean.rs"))
        .output()
        .expect("spawn sparta-lint");
    assert_eq!(clean.status.code(), Some(0), "clean fixture must exit 0");
}
