//! The lint must hold on the workspace that ships it: a full
//! `run_workspace` over this repository is part of the test suite, so
//! `cargo test` alone catches a policy regression even before the
//! dedicated CI job runs.

use std::path::Path;

#[test]
fn workspace_is_clean_with_full_coverage() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = sparta_lint::run_workspace(root).expect("workspace readable");

    assert!(
        report.is_clean(),
        "workspace lint violations:\n{}",
        report.render_text(true)
    );

    // The audit must actually be looking at the real tree.
    assert!(
        report.files_scanned > 100,
        "only {} files",
        report.files_scanned
    );
    let totals = report.ordering_totals();
    assert!(totals.sites > 100, "only {} ordering sites", totals.sites);
    assert_eq!(report.coverage_percent(), 100.0);
    assert!(
        totals.annotated >= 4,
        "expected the documented ordering justifications to be counted"
    );

    // The model cross-reference must be live: the shipped protocols
    // are harvested and the real ordering claims cite them.
    assert!(
        report.model_registry.len() >= 6,
        "shipped models not harvested: {:?}",
        report.model_registry
    );
    let cited: usize = report.model_refs.values().sum();
    assert!(cited >= 20, "only {cited} ordering claims cite a model");
    for name in report.model_refs.keys() {
        assert!(
            report.model_registry.contains(name),
            "claim cites unharvested model {name}"
        );
    }

    // JSON export must round-trip through the sparta-obs parser.
    let json = report.to_json().to_pretty_string(2);
    let back = sparta_obs::json::parse(&json).expect("self-report JSON parses");
    assert_eq!(
        back.get("clean"),
        Some(&sparta_obs::json::Json::Bool(true)),
        "JSON clean flag"
    );
}
