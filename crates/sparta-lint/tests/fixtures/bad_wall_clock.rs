// Fixture: `Instant::now()` on the deterministic-replay surface
// without a `// lint: allow(wall-clock)` justification (rule
// `wall-clock`).

pub fn elapsed_poll() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
