// Fixture: std `HashMap` in a hot-path module — SipHash on every
// access; the workspace standard is `FastHashMap` (rule `std-hash`).

use std::collections::HashMap;

pub struct TermMap {
    scores: HashMap<u32, u64>,
}
