// Fixture: a `// ordering:` justification that cites no checked model
// (rule `ordering-unmodeled`) — the weak-memory claim is prose only,
// nothing exhaustively verifies it.

pub fn is_ready_hint(ready: &std::sync::atomic::AtomicU64) -> bool {
    // ordering: raced hint only; the caller revalidates under the lock
    ready.load(Ordering::Relaxed) == 1
}
