// Fixture: any `unsafe` is banned workspace-wide, test code included
// (rule `unsafe-code`).

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}
