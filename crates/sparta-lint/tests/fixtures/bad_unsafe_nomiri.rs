// Fixture: `unsafe` in an unsafe-whitelisted lock-free module. One
// site carries the required justification, one does not (rule
// `unsafe-unjustified`), and the file has no coverage marker naming a
// miri-run test (rule `miri-coverage`). Linted as ordinary workspace
// code instead, both sites are a flat `unsafe-code` ban.

pub fn read_published(slot: *const u64) -> u64 {
    // lint: allow(unsafe): slot outlives the epoch guard held by the caller
    unsafe { *slot }
}

pub fn write_raw(slot: *mut u64) {
    unsafe { *slot = 1 }
}
