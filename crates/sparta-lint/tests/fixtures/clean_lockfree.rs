// Fixture: the passing side of the unsafe-fencing rule set — every
// `unsafe` site justified, and the file-level marker below names the
// miri-run test that interprets these blocks.
// miri: lockfree::tests::miri_publish_roundtrip

pub fn read_published(slot: *const u64) -> u64 {
    // lint: allow(unsafe): slot outlives the epoch guard held by the caller
    unsafe { *slot }
}
