//! Fixture: allocation on the flight recorder's record path. Linted
//! under the virtual path `crates/sparta-obs/src/ring.rs`, where the
//! `alloc` rule applies; the same source is fine elsewhere.

pub fn record_event(kind: u8, payload: u64) -> u64 {
    // Scratch buffer built per event: exactly what the rule exists to
    // catch — the record path must reuse pre-sized ring slots.
    let scratch = Vec::with_capacity(2);
    drop(scratch);
    kind as u64 ^ payload
}

pub fn construction_is_justified(cap: usize) -> usize {
    // lint: allow(alloc): one-time ring construction, not record path.
    let slots: Vec<u64> = Vec::with_capacity(cap);
    slots.capacity()
}
