//! Fixture: a crate root exercising every rule's *passing* side —
//! linted as `crates/sparta-core/src/lib.rs` it must produce zero
//! diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sparta_collections::FastHashMap;

pub struct Stats {
    hits: std::sync::atomic::AtomicU64,
    ready: std::sync::atomic::AtomicU64,
    jobs: parking_lot::Mutex<Vec<u32>>,
    heap: parking_lot::Mutex<Vec<u32>>,
    index: FastHashMap<u32, u64>,
}

impl Stats {
    /// Counter class: all accesses Relaxed.
    pub fn bump(&self) -> u64 {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.hits.load(Ordering::Relaxed)
    }

    /// Publish class: Release store, Acquire load, AcqRel RMW.
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release);
        self.ready.fetch_add(1, Ordering::AcqRel);
    }

    /// Publish-class load.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) == 1
    }

    /// A justified exception to the publish-class rule.
    pub fn is_ready_hint(&self) -> bool {
        // ordering: raced hint, revalidated under the heap lock (model: server_lifecycle)
        self.ready.load(Ordering::Relaxed) == 1
    }

    /// Locks acquired sequentially, never nested: no edge, no cycle.
    pub fn rotate(&self) {
        let n = self.jobs.lock().len();
        self.heap.lock().truncate(n);
    }
}
