// Fixture: the ordering claim cites a model name no `Model::new("…")`
// under `crates/sparta-model/src` defines (rule `unknown-model`). The
// rule only fires when the registry is harvestable, i.e. the lint root
// is the workspace root; under other roots tag presence suffices.

pub fn is_ready_hint(ready: &std::sync::atomic::AtomicU64) -> bool {
    // ordering: raced hint only (model: not_a_real_model)
    ready.load(Ordering::Relaxed) == 1
}
