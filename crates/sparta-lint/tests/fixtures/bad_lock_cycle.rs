// Fixture: two functions acquire the same two lock classes in opposite
// orders — a static deadlock (rule `lock-cycle`).

pub fn drain(x: &Shared) {
    let jobs = x.jobs.lock();
    let mut heap = x.heap.lock();
    heap.extend(jobs.iter());
}

pub fn refill(x: &Shared) {
    let heap = x.heap.lock();
    let mut jobs = x.jobs.lock();
    jobs.extend(heap.iter());
}
