//! Fixture: a crate root without `#![forbid(unsafe_code)]` (rule
//! `missing-forbid`). Lint it with `--as crates/<name>/src/lib.rs`.

#![warn(missing_docs)]

pub mod something {}
