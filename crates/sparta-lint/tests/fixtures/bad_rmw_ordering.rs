// Fixture: a non-AcqRel read-modify-write in a publish-class group
// (rule `rmw-ordering`). The store makes the place publish-class; the
// fetch_add must then be AcqRel.

pub struct Sum {
    sum: std::sync::atomic::AtomicU64,
}

impl Sum {
    pub fn reset(&self) {
        self.sum.store(0, Ordering::Release);
    }

    pub fn add(&self, delta: u64) {
        self.sum.fetch_add(delta, Ordering::Release);
    }
}
