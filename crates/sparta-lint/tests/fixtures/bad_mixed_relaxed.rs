// Fixture: a Relaxed load mixed into a publish-class group (the place
// has a Release store) without a `// ordering:` justification — the
// classic lost-pairing bug (rule `mixed-ordering`).

pub struct Ready {
    flag: std::sync::atomic::AtomicU64,
}

impl Ready {
    pub fn publish(&self) {
        self.flag.store(1, Ordering::Release);
    }

    pub fn is_ready(&self) -> bool {
        self.flag.load(Ordering::Relaxed) == 1
    }
}
