// Fixture: `.lock().unwrap()` while holding a StripedMap stripe (the
// closure passed to an entry API runs under the stripe lock) — a
// poisoned std Mutex would wedge the stripe (rule `lock-unwrap`).
// This fires regardless of the per-path API bans.

pub fn admit(map: &StripedMap<u32, u32>, side: &SideTable) {
    map.get_or_insert_with(7, || {
        let guard = side.inner.lock().unwrap();
        *guard
    });
}
