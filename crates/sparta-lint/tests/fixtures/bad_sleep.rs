// Fixture: `thread::sleep` in sparta-core — algorithm code must block
// on queues/condvars (rule `sleep`).

pub fn wait_a_bit() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
