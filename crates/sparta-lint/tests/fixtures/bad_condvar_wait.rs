// Fixture: `Condvar::wait` guarded by a plain `if` — the predicate is
// never rechecked after wakeup, so a spurious wake or a notify landing
// between check and park wedges the wait (rule `condvar-wait`). The
// `while`-guarded wait below is the approved shape and stays silent.

pub fn bad_wait(queue: &JobQueue) {
    let mut guard = queue.state.lock();
    if guard.outstanding > 0 {
        queue.done_cv.wait(&mut guard);
    }
}

pub fn good_wait(queue: &JobQueue) {
    let mut guard = queue.state.lock();
    while guard.outstanding > 0 {
        queue.done_cv.wait(&mut guard);
    }
}
