// Fixture: SeqCst is forbidden outright — even an annotation cannot
// excuse it (rule `seqcst-forbidden`).

pub fn publish(flag: &std::sync::atomic::AtomicU64) {
    // ordering: an annotation must NOT silence SeqCst (model: server_lifecycle)
    flag.store(1, Ordering::SeqCst);
}
