//! # sparta-lint — self-hosted concurrency static analysis
//!
//! Sparta's correctness hinges on cross-thread protocols the type
//! system cannot see: the Alg. 1 termination check and the cleaner
//! coordinate through ~140 atomic sites and a dozen locks spread over
//! four crates. This crate is the standing, machine-checkable gate for
//! those protocols — the written concurrency policy lives in
//! DESIGN.md §11 and is enforced here on every CI run:
//!
//! 1. **Atomic-ordering audit** ([`atomics`]) — every `Ordering::*`
//!    site must match the policy table (pure-`Relaxed` counters;
//!    coherent Release/Acquire/AcqRel publish groups; no `SeqCst`) or
//!    carry a `// ordering: <reason>` justification.
//! 2. **Lock-order graph** ([`locks`]) — static lock nesting is
//!    extracted per function (plus `StripedMap` entry-closure
//!    contexts), merged into a class graph, and checked for cycles;
//!    `.lock().unwrap()` is flagged.
//! 3. **Forbidden APIs** ([`apis`]) — std `HashMap`/`HashSet` in
//!    hot-path modules, `Instant::now`/`SystemTime` outside the
//!    `sparta-obs` clock abstraction, `thread::sleep` in `sparta-core`,
//!    any `unsafe` (fenced, not banned, in whitelisted lock-free
//!    modules), and crate roots missing `#![forbid(unsafe_code)]`.
//! 4. **Model cross-reference** ([`models`]) — every `// ordering:`
//!    justification must cite a `sparta-model` protocol via a
//!    `model: <name>` tag, closing the loop between the lexical claim
//!    and an exhaustive weak-memory check (DESIGN.md §15).
//! 5. **Condvar discipline** ([`condvar`]) — `Condvar::wait` outside a
//!    predicate-rechecking `while`/`loop` is flagged.
//!
//! The analyzer is a hand-rolled lexer + token scanner ([`lexer`],
//! [`scan`]): no `syn`, no dependencies beyond `sparta-obs` (whose
//! JSON value model renders the machine-readable diagnostics). It is
//! intraprocedural and textual by design — grep-with-structure, fast
//! enough to run on every commit, and wrong only in the direction of
//! asking for a justification. The justification itself is no longer
//! just trusted prose: pass 4 makes each ordering claim name the
//! exhaustively-explored `sparta-model` protocol that backs it.

#![forbid(unsafe_code)]

pub mod apis;
pub mod atomics;
pub mod condvar;
pub mod lexer;
pub mod locks;
pub mod models;
pub mod report;
pub mod scan;

pub use report::{Diagnostic, Report};

use apis::ApiScope;
use scan::Scan;
use std::path::{Path, PathBuf};

/// Path-based policy: which rules apply where. Paths are
/// workspace-relative with `/` separators.
pub struct Policy;

impl Policy {
    /// Files whose `Ordering::*` sites are audited (everything we
    /// scan; fixtures are excluded at walk time).
    pub fn audits_ordering(path: &str) -> bool {
        path.ends_with(".rs")
    }

    /// The deterministic-replay surface: wall-clock reads banned.
    pub fn bans_wall_clock(path: &str) -> bool {
        (path.starts_with("crates/sparta-core/src/")
            || path.starts_with("crates/sparta-exec/src/")
            || path.starts_with("crates/sparta-collections/src/"))
            && path != "crates/sparta-obs/src/clock.rs"
    }

    /// Hot-path modules: std hashing banned.
    pub fn bans_std_hash(path: &str) -> bool {
        (path.starts_with("crates/sparta-core/src/sparta/")
            || path.starts_with("crates/sparta-collections/src/")
            || path.starts_with("crates/sparta-exec/src/"))
            && path != "crates/sparta-collections/src/fast_hash.rs"
    }

    /// `thread::sleep` ban (algorithm code must block on queues).
    pub fn bans_sleep(path: &str) -> bool {
        path.starts_with("crates/sparta-core/src/")
    }

    /// Allocation-banned hot paths: the flight recorder's record path
    /// (workers record from inside the scheduler loop; an allocation
    /// there can deadlock a diagnostic of an allocator stall and skews
    /// the recorder's own overhead), the compressed posting
    /// decoder (block decode sits under every cursor advance — it
    /// must run out of fixed scratch arrays; builders escape with
    /// `lint: allow(alloc)`), and the profiling plane's sample/fold
    /// paths (the sampler runs forever beside the serving path;
    /// construction and rendering escape with `lint: allow(alloc)`).
    pub fn bans_alloc(path: &str) -> bool {
        path == "crates/sparta-obs/src/ring.rs"
            || path == "crates/sparta-obs/src/recorder.rs"
            || path == "crates/sparta-obs/src/history.rs"
            || path == "crates/sparta-obs/src/profile.rs"
            || path == "crates/sparta-index/src/compressed.rs"
    }

    /// Std-Mutex `.lock().unwrap()` ban (parking_lot is the standard).
    pub fn bans_lock_unwrap(path: &str) -> bool {
        path.starts_with("crates/sparta-core/src/")
            || path.starts_with("crates/sparta-exec/src/")
            || path.starts_with("crates/sparta-collections/src/")
    }

    /// Files whose `// ordering:` annotations must cite a checked
    /// model (`model: <name>`): all crate sources except test paths
    /// and `sparta-model` itself, whose sources *are* the models.
    pub fn requires_model_tag(path: &str) -> bool {
        path.starts_with("crates/")
            && !path.starts_with("crates/sparta-model/")
            && !Policy::is_test_path(path)
    }

    /// Modules licensed to use `unsafe` under the fencing rule set
    /// (per-site justification + miri coverage marker) instead of the
    /// blanket ban: the planned `sparta-lockfree` crate.
    pub fn unsafe_whitelisted(path: &str) -> bool {
        path.starts_with("crates/sparta-lockfree/src/")
    }

    /// Whether a path is test-only code (unit-test regions are handled
    /// separately, per `#[cfg(test)]` item).
    pub fn is_test_path(path: &str) -> bool {
        path.contains("/tests/")
            || path.contains("/benches/")
            || path.starts_with("tests/")
            || path.starts_with("examples/")
    }

    /// Crate roots that must carry `#![forbid(unsafe_code)]`: every
    /// lib root plus bin roots (each bin is its own crate, so a lib's
    /// attribute does not cover it).
    pub fn is_crate_root(path: &str) -> bool {
        path.ends_with("src/lib.rs")
            || path.ends_with("src/main.rs")
            || ((path.contains("/src/bin/") || path.starts_with("src/bin/"))
                && path.ends_with(".rs"))
    }
}

/// Lints one file's source under its workspace-relative `path`,
/// accumulating into `report` and `edges`. `registry` is the harvested
/// set of checked-model names the ordering annotations must cite.
pub fn lint_source(
    path: &str,
    src: &str,
    registry: &models::ModelRegistry,
    report: &mut Report,
    edges: &mut Vec<locks::LockEdge>,
) {
    let lex = lexer::lex(src);
    let scan = Scan::new(&lex);
    report.files_scanned += 1;

    if Policy::audits_ordering(path) {
        let cov = atomics::audit(path, &scan, &mut report.diagnostics);
        if cov.sites > 0 {
            report.ordering.insert(path.to_string(), cov);
        }
    }

    let in_test_path = Policy::is_test_path(path);
    locks::scan_locks(
        path,
        &scan,
        Policy::bans_lock_unwrap(path) && !in_test_path,
        edges,
        &mut report.diagnostics,
    );

    if Policy::requires_model_tag(path) {
        models::check_model_refs(
            path,
            &scan,
            registry,
            &mut report.model_refs,
            &mut report.diagnostics,
        );
    }

    if !in_test_path {
        condvar::scan_condvars(path, &scan, &mut report.diagnostics);
    }

    let whitelisted = Policy::unsafe_whitelisted(path);
    let scope = ApiScope {
        std_hash: Policy::bans_std_hash(path) && !in_test_path,
        wall_clock: Policy::bans_wall_clock(path) && !in_test_path,
        sleep: Policy::bans_sleep(path) && !in_test_path,
        alloc: Policy::bans_alloc(path) && !in_test_path,
        unsafe_code: !whitelisted,
        unsafe_whitelisted: whitelisted,
    };
    apis::scan_apis(path, &scan, scope, &mut report.diagnostics);

    if Policy::is_crate_root(path) && !whitelisted {
        apis::check_crate_root(path, &scan, &mut report.diagnostics);
    }
}

/// Hygiene-only lint for vendored shims: `unsafe` ban + crate-root
/// `#![forbid(unsafe_code)]`, nothing else (shims mirror external
/// crates' APIs and are not held to workspace concurrency policy).
pub fn lint_shim(path: &str, src: &str, report: &mut Report) {
    let lex = lexer::lex(src);
    let scan = Scan::new(&lex);
    report.files_scanned += 1;
    let scope = ApiScope {
        unsafe_code: true,
        ..ApiScope::default()
    };
    apis::scan_apis(path, &scan, scope, &mut report.diagnostics);
    if path.ends_with("src/lib.rs") {
        apis::check_crate_root(path, &scan, &mut report.diagnostics);
    }
}

/// Recursively collects `*.rs` files under `dir`, skipping `target`
/// and the lint fixture corpus (whose files fire on purpose).
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full workspace lint from `root` (the directory holding the
/// workspace `Cargo.toml`). Scans `crates/`, `src/`, `tests/`,
/// `examples/` with full policy and `shims/` with hygiene checks.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut edges = Vec::new();
    let registry = models::harvest_registry(root);
    report.model_registry = registry.names.iter().cloned().collect();

    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    for file in &files {
        let rel = rel_path(root, file);
        let src = std::fs::read_to_string(file)?;
        lint_source(&rel, &src, &registry, &mut report, &mut edges);
    }

    let mut shim_files = Vec::new();
    let shims = root.join("shims");
    if shims.is_dir() {
        walk(&shims, &mut shim_files)?;
    }
    shim_files.sort();
    for file in &shim_files {
        let rel = rel_path(root, file);
        let src = std::fs::read_to_string(file)?;
        lint_shim(&rel, &src, &mut report);
    }

    report.diagnostics.extend(locks::check_cycles(&edges));
    report.lock_edges = edges;
    report.finish();
    Ok(report)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints explicit files (CLI path arguments / fixtures). `virtual_path`
/// overrides the policy-relevant path for every given file — fixture
/// tests use it to place a file in, say, `crates/sparta-core/src/`.
pub fn run_files(
    root: &Path,
    files: &[PathBuf],
    virtual_path: Option<&str>,
) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut edges = Vec::new();
    let registry = models::harvest_registry(root);
    report.model_registry = registry.names.iter().cloned().collect();
    for file in files {
        let rel = match virtual_path {
            Some(v) => v.to_string(),
            None => rel_path(root, file),
        };
        let src = std::fs::read_to_string(file)?;
        lint_source(&rel, &src, &registry, &mut report, &mut edges);
    }
    report.diagnostics.extend(locks::check_cycles(&edges));
    report.lock_edges = edges;
    report.finish();
    Ok(report)
}
