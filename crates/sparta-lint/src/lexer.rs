//! A hand-rolled Rust lexer.
//!
//! The analysis passes need token-level facts (call chains, attribute
//! contents, brace nesting) plus the comments the compiler throws
//! away — justification annotations live in comments. A full parser
//! (`syn`) would be overkill and would violate the offline-shims
//! policy; this lexer handles the entire real-world surface the
//! workspace uses: line/blocked (nested) comments, string/char/byte
//! literals, raw strings, lifetimes, numbers, and multi-byte
//! punctuation left as single chars (the passes only ever match
//! single-char punctuation sequences).

/// Token classification. The passes mostly match on identifier text
/// and single punctuation characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `let`, `unsafe`, `HashMap`, …).
    Ident,
    /// One punctuation character (`.`, `:`, `(`, `#`, …).
    Punct,
    /// String/char/byte/numeric literal (text preserved verbatim).
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A justification annotation harvested from a comment.
///
/// Two grammars, both line-comment based:
///
/// - `// ordering: <reason>` — justifies an atomic-ordering site that
///   the policy table cannot prove (rule name is `"ordering"`). The
///   reason must also cite a `sparta-model` protocol via a
///   `model: <name>` tag on the same line (checked by [`crate::models`]).
/// - `// lint: allow(<rule>): <reason>` — suppresses a named API rule
///   (`wall-clock`, `std-hash`, `sleep`, `lock-unwrap`, `condvar-wait`,
///   `unsafe`) at one site.
/// - `// miri: <test name>` — a file-level marker in unsafe-whitelisted
///   modules naming the miri-run test that covers the file's unsafe
///   blocks (rule name is `"miri"`).
///
/// An annotation applies to its own line (trailing comment) or, when
/// the comment stands alone, to the next non-comment line below it.
#[derive(Debug, Clone)]
pub struct Annotation {
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// Lexer output: the token stream plus the comment-derived side tables
/// the annotation-attachment logic needs.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub annotations: Vec<Annotation>,
    /// Lines consisting only of comments/whitespace. Annotation
    /// attachment walks up through these to find standalone
    /// justification comments above a site.
    pub comment_only_lines: std::collections::HashSet<u32>,
}

impl Lexed {
    /// Whether `line` carries an annotation for `rule`, either trailing
    /// on the line itself or in the contiguous run of comment-only
    /// lines immediately above it.
    pub fn annotated(&self, line: u32, rule: &str) -> bool {
        let has = |l: u32| {
            self.annotations
                .iter()
                .any(|a| a.line == l && a.rule == rule)
        };
        if has(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 && self.comment_only_lines.contains(&l) {
            if has(l) {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// Parses an annotation out of one comment body (text after `//` or
/// inside `/* */`).
fn parse_annotation(body: &str, line: u32) -> Option<Annotation> {
    let body = body.trim();
    if let Some(rest) = body.strip_prefix("ordering:") {
        return Some(Annotation {
            line,
            rule: "ordering".to_string(),
            reason: rest.trim().to_string(),
        });
    }
    if let Some(rest) = body.strip_prefix("miri:") {
        return Some(Annotation {
            line,
            rule: "miri".to_string(),
            reason: rest.trim().to_string(),
        });
    }
    if let Some(rest) = body.strip_prefix("lint:") {
        let rest = rest.trim();
        if let Some(rest) = rest.strip_prefix("allow(") {
            let close = rest.find(')')?;
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..].trim_start_matches(':').trim().to_string();
            return Some(Annotation { line, rule, reason });
        }
    }
    None
}

/// Lexes `src`, producing tokens and annotation side tables.
///
/// The lexer is infallible by design: unexpected bytes become `Punct`
/// tokens. An unterminated string/comment consumes to end of file —
/// the workspace self-run lints only code that already compiles, and
/// fixtures are kept well-formed.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Per-line flags for the comment-only-lines table.
    let mut line_has_code = false;
    let mut line_has_comment = false;
    let finish_line = |line: u32,
                       has_code: &mut bool,
                       has_comment: &mut bool,
                       table: &mut std::collections::HashSet<u32>| {
        if *has_comment && !*has_code {
            table.insert(line);
        }
        *has_code = false;
        *has_comment = false;
    };

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                finish_line(
                    line,
                    &mut line_has_code,
                    &mut line_has_comment,
                    &mut out.comment_only_lines,
                );
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                // Line comment: harvest annotation, consume to newline.
                line_has_comment = true;
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                let body: String = b[start..j].iter().collect();
                // Doc comments start with an extra `/` or `!`.
                let body = body.trim_start_matches(['/', '!']);
                if let Some(a) = parse_annotation(body, line) {
                    out.annotations.push(a);
                }
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Block comment, nested per Rust rules.
                line_has_comment = true;
                let start_line = line;
                let body_start = i + 2;
                let mut depth = 1;
                let mut j = body_start;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        finish_line(
                            line,
                            &mut line_has_code,
                            &mut line_has_comment,
                            &mut out.comment_only_lines,
                        );
                        line += 1;
                        line_has_comment = true;
                    } else if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        j += 1;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        j += 1;
                    }
                    j += 1;
                }
                let body: String = b[body_start..j.saturating_sub(2).max(body_start)]
                    .iter()
                    .collect();
                if let Some(a) = parse_annotation(&body, start_line) {
                    out.annotations.push(a);
                }
                i = j;
            }
            '"' => {
                line_has_code = true;
                let (text, nl, j) = scan_string(&b, i);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                line_has_code = true;
                let (text, nl, j) = scan_raw_or_byte(&b, i);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
                line += nl;
                i = j;
            }
            '\'' => {
                line_has_code = true;
                let (tok, j) = scan_quote(&b, i, line);
                out.toks.push(tok);
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                line_has_code = true;
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                let mut j = i;
                // Numbers incl. underscores, hex, type suffixes, floats.
                // `1.0` is one literal but `x.0` never starts here, and
                // a trailing `.` followed by an ident (`1.max(…)`) must
                // leave the `.` to punctuation.
                while j < b.len()
                    && (b[j].is_alphanumeric()
                        || b[j] == '_'
                        || (b[j] == '.'
                            && j + 1 < b.len()
                            && b[j + 1].is_ascii_digit()
                            && !b[i..j].contains(&'.')))
                {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c => {
                line_has_code = true;
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    finish_line(
        line,
        &mut line_has_code,
        &mut line_has_comment,
        &mut out.comment_only_lines,
    );
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string.
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let rest = &b[i..];
    let after = |k: usize| rest.get(k).copied();
    match rest.first() {
        Some('r') => matches!(after(1), Some('"') | Some('#')) && raw_hashes_then_quote(rest, 1),
        Some('b') => match after(1) {
            Some('"') => true,
            Some('r') => raw_hashes_then_quote(rest, 2),
            _ => false,
        },
        _ => false,
    }
}

/// After the `r`, raw strings are `#* "`.
fn raw_hashes_then_quote(rest: &[char], mut k: usize) -> bool {
    while rest.get(k) == Some(&'#') {
        k += 1;
    }
    rest.get(k) == Some(&'"')
}

/// Scans a plain `"…"` string starting at `i`. Returns (text, newlines
/// consumed, next index).
fn scan_string(b: &[char], i: usize) -> (String, u32, usize) {
    let mut j = i + 1;
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            '\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (b[i..j.min(b.len())].iter().collect(), nl, j)
}

/// Scans `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#` starting at `i`.
fn scan_raw_or_byte(b: &[char], i: usize) -> (String, u32, usize) {
    let mut j = i;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') {
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    let raw = b[i..j].contains(&'r');
    debug_assert!(j < b.len() && b[j] == '"');
    j += 1; // opening quote
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            '\\' if !raw => j += 2,
            '\n' => {
                nl += 1;
                j += 1;
            }
            '"' => {
                // Raw strings close only on `"` + the right hash count.
                let close = (0..hashes).all(|k| b.get(j + 1 + k) == Some(&'#'));
                if close {
                    j += 1 + hashes;
                    break;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (b[i..j.min(b.len())].iter().collect(), nl, j)
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
fn scan_quote(b: &[char], i: usize, line: u32) -> (Tok, usize) {
    // Char literal if the closing quote comes within a short window
    // (`'x'`, `'\t'`, `'\u{1F600}'`); otherwise it is a lifetime.
    if b.get(i + 1) == Some(&'\\') {
        // Escaped char literal: scan to closing quote.
        let mut j = i + 2;
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        return (
            Tok {
                kind: TokKind::Literal,
                text: b[i..(j + 1).min(b.len())].iter().collect(),
                line,
            },
            (j + 1).min(b.len()),
        );
    }
    if b.get(i + 2) == Some(&'\'') {
        return (
            Tok {
                kind: TokKind::Literal,
                text: b[i..i + 3].iter().collect(),
                line,
            },
            i + 3,
        );
    }
    // Lifetime: `'` + ident.
    let mut j = i + 1;
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Lifetime,
            text: b[i..j].iter().collect(),
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_puncts_and_lines() {
        let l = lex("let x = a.load(Ordering::Relaxed);\nlet y = 2;");
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            idents,
            vec!["let", "x", "a", "load", "Ordering", "Relaxed", "let", "y"]
        );
        assert_eq!(l.toks.last().unwrap().line, 2);
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let l = lex("let s = \"Ordering::SeqCst { } \"; /* Mutex */ // lock()\nx");
        assert!(!l.toks.iter().any(|t| t.is_ident("Mutex")));
        assert!(!l.toks.iter().any(|t| t.is_ident("lock")));
        assert!(l.toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let l = lex("r#\"a \" b\"# 'x' '\\n' &'a str b\"bytes\"");
        let kinds: Vec<TokKind> = l.toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Literal,
                TokKind::Literal,
                TokKind::Literal,
                TokKind::Punct,
                TokKind::Lifetime,
                TokKind::Ident,
                TokKind::Literal,
            ]
        );
    }

    #[test]
    fn nested_block_comments_track_lines() {
        let l = lex("/* a /* b */ c\n still comment */ token");
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].line, 2);
        assert!(l.comment_only_lines.contains(&1));
    }

    #[test]
    fn ordering_annotation_trailing_and_above() {
        let src = "\
a.load(Ordering::Relaxed); // ordering: stats only
// ordering: paired with the Release store in push
b.load(Ordering::Relaxed);
c.load(Ordering::Relaxed);
";
        let l = lex(src);
        assert!(l.annotated(1, "ordering"));
        assert!(l.annotated(3, "ordering"));
        assert!(!l.annotated(4, "ordering"));
    }

    #[test]
    fn lint_allow_annotation_parses_rule_and_reason() {
        let l = lex("// lint: allow(wall-clock): measurement only\nInstant::now();");
        assert!(l.annotated(2, "wall-clock"));
        assert!(!l.annotated(2, "std-hash"));
        assert_eq!(l.annotations[0].reason, "measurement only");
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let l = lex("1.max(2) 3.5 0x_ff 1_000u64");
        assert!(l.toks.iter().any(|t| t.is_ident("max")));
        assert!(l.toks.iter().any(|t| t.text == "3.5"));
    }
}
