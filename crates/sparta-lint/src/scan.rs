//! Token-stream structure recovery: bracket matching, method-call
//! sites with normalized receiver chains, and `#[cfg(test)]` item
//! regions. Shared by all three analysis passes.

use crate::lexer::{Lexed, Tok, TokKind};

/// A `.method(…)` call site recovered from the token stream.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Method name (`load`, `lock`, `get_or_insert_with`, …).
    pub method: String,
    /// Index of the method-name token.
    pub method_idx: usize,
    /// Index of the opening `(` of the argument list.
    pub args_open: usize,
    /// Index of the matching `)`.
    pub args_close: usize,
    /// Normalized receiver chain, e.g. `self.stripes[]` or
    /// `self.block()[]`. Index/call argument text is dropped so sites
    /// that address the same place group together.
    pub recv: String,
    /// Last identifier of the receiver chain (`stripes`, `sum`, …) —
    /// the lock-class / variable name used in reports.
    pub recv_tail: String,
    /// Source line of the method token.
    pub line: u32,
}

/// Structure recovered once per file and shared by the passes.
pub struct Scan<'a> {
    pub lex: &'a Lexed,
    /// `match_of[i]` = index of the bracket matching the one at `i`
    /// (for `(`/`)`, `[`/`]`, `{`/`}`), or `usize::MAX`.
    pub match_of: Vec<usize>,
    /// All `.method(…)` call sites in stream order.
    pub calls: Vec<CallSite>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl<'a> Scan<'a> {
    pub fn new(lex: &'a Lexed) -> Self {
        let match_of = match_brackets(&lex.toks);
        let calls = find_calls(&lex.toks, &match_of);
        let test_regions = find_test_regions(&lex.toks, &match_of);
        Scan {
            lex,
            match_of,
            calls,
            test_regions,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Matches `()[]{}` pairs over the token stream.
fn match_brackets(toks: &[Tok]) -> Vec<usize> {
    let mut match_of = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push((t.text.chars().next().unwrap(), i)),
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                // Tolerate mismatches (macro edge cases): pop until the
                // matching opener kind is found.
                while let Some((open, j)) = stack.pop() {
                    if open == want {
                        match_of[i] = j;
                        match_of[j] = i;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    match_of
}

/// Finds every `.ident(` sequence and reconstructs its receiver chain.
fn find_calls(toks: &[Tok], match_of: &[usize]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident {
            continue;
        }
        // Allow a turbofish between name and `(`: `.collect::<Vec<_>>()`.
        let mut open = i + 2;
        if toks.get(open).is_some_and(|t| t.is_punct(':'))
            && toks.get(open + 1).is_some_and(|t| t.is_punct(':'))
        {
            // Skip `::< … >` by scanning for the matching `>` depth.
            let mut j = open + 2;
            if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct('<') {
                        depth += 1;
                    } else if toks[j].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                open = j;
            } else {
                continue; // `.ident::path` — not a method call
            }
        }
        if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let close = match_of[open];
        if close == usize::MAX {
            continue;
        }
        let (recv, recv_tail) = receiver_chain(toks, match_of, i);
        out.push(CallSite {
            method: name.text.clone(),
            method_idx: i + 1,
            args_open: open,
            args_close: close,
            recv,
            recv_tail,
            line: name.line,
        });
    }
    out
}

/// Walks left from the `.` at `dot` collecting the postfix receiver
/// chain, normalizing away index/argument text: `self.stripes[h].lock`
/// → `self.stripes[]`; `self.block(b)[off].store` → `self.block()[]`.
fn receiver_chain(toks: &[Tok], match_of: &[usize], dot: usize) -> (String, String) {
    let mut segs: Vec<String> = Vec::new();
    let mut tail = String::new();
    let mut i = dot; // position just after the segment being consumed
    'chain: loop {
        if i == 0 {
            break;
        }
        // Consume any run of trailing groups: `base(b)[off]` → `()[]`.
        let mut p = i - 1;
        let mut suffix = String::new();
        while toks[p].is_punct(')') || toks[p].is_punct(']') {
            let open = match_of[p];
            if open == usize::MAX {
                break 'chain;
            }
            let s = if toks[p].is_punct(')') { "()" } else { "[]" };
            suffix.insert_str(0, s);
            if open == 0 {
                segs.push(suffix);
                break 'chain;
            }
            p = open - 1;
        }
        if toks[p].kind == TokKind::Ident {
            segs.push(format!("{}{}", toks[p].text, suffix));
            if tail.is_empty() {
                tail = toks[p].text.clone();
            }
            i = p;
        } else {
            if !suffix.is_empty() {
                segs.push(suffix);
            }
            break;
        }
        // Continue only through a `.` chain.
        if i == 0 || !toks[i - 1].is_punct('.') {
            break;
        }
        i -= 1;
    }
    segs.reverse();
    (segs.join("."), tail)
}

/// Finds `#[cfg(test)]`-gated items and returns their line spans.
fn find_test_regions(toks: &[Tok], match_of: &[usize]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#` `[` … `]`
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match_of[i + 1];
            if close != usize::MAX {
                let attr = &toks[i + 2..close];
                let is_cfg_test = attr.iter().any(|t| t.is_ident("cfg"))
                    && attr.iter().any(|t| t.is_ident("test"));
                if is_cfg_test {
                    let start_line = toks[i].line;
                    // Skip any further attributes, then span the item:
                    // to the `}` matching its first `{`, or to `;`.
                    let mut j = close + 1;
                    while j < toks.len()
                        && toks[j].is_punct('#')
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        let c = match_of[j + 1];
                        if c == usize::MAX {
                            break;
                        }
                        j = c + 1;
                    }
                    let mut end_line = start_line;
                    while j < toks.len() {
                        if toks[j].is_punct('{') {
                            let c = match_of[j];
                            if c != usize::MAX {
                                end_line = toks[c].line;
                                i = c;
                            }
                            break;
                        }
                        if toks[j].is_punct(';') {
                            end_line = toks[j].line;
                            i = j;
                            break;
                        }
                        j += 1;
                    }
                    out.push((start_line, end_line));
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn call_sites_and_receivers() {
        let l = lex("self.stripes[self.stripe_of(&key)].lock().get(key).cloned();");
        let s = Scan::new(&l);
        let lock = s.calls.iter().find(|c| c.method == "lock").unwrap();
        assert_eq!(lock.recv, "self.stripes[]");
        assert_eq!(lock.recv_tail, "stripes");
        let get = s.calls.iter().find(|c| c.method == "get").unwrap();
        assert_eq!(get.recv, "self.stripes[].lock()");
    }

    #[test]
    fn receiver_through_call_segments() {
        let l = lex("self.block(b)[off].store(v, Ordering::Relaxed);");
        let s = Scan::new(&l);
        let store = s.calls.iter().find(|c| c.method == "store").unwrap();
        assert_eq!(store.recv, "self.block()[]");
        assert_eq!(store.recv_tail, "block");
    }

    #[test]
    fn turbofish_is_a_call() {
        let l = lex("xs.iter().collect::<Vec<_>>();");
        let s = Scan::new(&l);
        assert!(s.calls.iter().any(|c| c.method == "collect"));
    }

    #[test]
    fn cfg_test_region_spans_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let l = lex(src);
        let s = Scan::new(&l);
        assert!(!s.in_test_region(1));
        assert!(s.in_test_region(3));
        assert!(s.in_test_region(4));
        assert!(!s.in_test_region(6));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() {}\n";
        let l = lex(src);
        let s = Scan::new(&l);
        assert!(s.in_test_region(2));
        assert!(!s.in_test_region(3));
    }
}
