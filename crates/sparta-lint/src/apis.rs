//! Pass 3: forbidden-API and determinism lints, plus crate hygiene.
//!
//! Rules (scopes defined by [`crate::Policy`]):
//!
//! - **`std-hash`** — `std::collections::HashMap`/`HashSet` banned in
//!   hot-path modules; they SipHash every key. Use
//!   `sparta_collections::{FastHashMap, FastHashSet}`. `fast_hash.rs`
//!   itself (which defines the aliases) is exempt.
//! - **`wall-clock`** — `Instant::now`/`SystemTime` banned in the
//!   deterministic-replay surface (`sparta-core`, `sparta-exec`,
//!   `sparta-collections`): wall-clock reads break the
//!   `DeterministicExecutor`'s bit-identical replays. `sparta-obs`'s
//!   clock abstraction (`clock.rs`) is the sanctioned source; genuine
//!   measurement-only sites carry `// lint: allow(wall-clock): …`.
//! - **`sleep`** — `thread::sleep` banned in `sparta-core`: algorithm
//!   code must block on condvars/queues, never on wall time.
//! - **`alloc`** — allocation banned on the flight recorder's record
//!   path (`sparta-obs`'s `ring.rs`/`recorder.rs`): allocating
//!   constructors (`Vec::new`, `Box::from`, …), owning conversions
//!   (`to_vec`, `collect`, …) and `vec!`/`format!` must not appear
//!   outside construction, which carries
//!   `// lint: allow(alloc): <reason>`.
//! - **`unsafe-code`** — no `unsafe` anywhere in the workspace, with
//!   one carve-out: modules whitelisted by
//!   [`crate::Policy::unsafe_whitelisted`] (the future
//!   `sparta-lockfree` crate) trade the blanket ban for the *fencing*
//!   rule set below.
//! - **`unsafe-unjustified`** — in a whitelisted module, every
//!   `unsafe` site must carry `// lint: allow(unsafe): <reason>`.
//! - **`miri-coverage`** — a whitelisted file containing any `unsafe`
//!   must carry a file-level `// miri: <test name>` marker naming the
//!   miri-run test that exercises it (the CI miri job is blocking, so
//!   the named test is actually executed under the interpreter).
//! - **`missing-forbid`** — every crate root must carry
//!   `#![forbid(unsafe_code)]` so the previous rule is also enforced
//!   by rustc on every future PR. Whitelisted crates are exempt (they
//!   cannot forbid what they are licensed to use).
//!
//! Test code (`tests/` dirs, `benches/`, `examples/`, `#[cfg(test)]`
//! items) is exempt from the API bans but not from the unsafe rules.

use crate::report::Diagnostic;
use crate::scan::Scan;

/// Which API rules apply to the file being scanned.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApiScope {
    pub std_hash: bool,
    pub wall_clock: bool,
    pub sleep: bool,
    pub alloc: bool,
    /// False only for vendored shims, which get hygiene checks but not
    /// workspace-policy lints.
    pub unsafe_code: bool,
    /// Unsafe-whitelisted module: `unsafe` is allowed but fenced —
    /// per-site `lint: allow(unsafe)` justification plus a file-level
    /// `// miri:` coverage marker.
    pub unsafe_whitelisted: bool,
}

/// Runs the API pass over one file.
pub fn scan_apis(path: &str, scan: &Scan, scope: ApiScope, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.lex.toks;
    let mut saw_unsafe = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        let line = t.line;
        let in_test = scan.in_test_region(line);

        if t.is_ident("unsafe") {
            saw_unsafe = true;
            if scope.unsafe_whitelisted {
                if !scan.lex.annotated(line, "unsafe") {
                    diags.push(Diagnostic::new(
                        "unsafe-unjustified",
                        path,
                        line,
                        "`unsafe` in a whitelisted module still needs a \
                         per-site `// lint: allow(unsafe): <reason>` \
                         justification"
                            .to_string(),
                    ));
                }
            } else if scope.unsafe_code {
                diags.push(Diagnostic::new(
                    "unsafe-code",
                    path,
                    line,
                    "`unsafe` is forbidden workspace-wide (crate roots carry \
                     `#![forbid(unsafe_code)]`)"
                        .to_string(),
                ));
            }
        }
        if in_test {
            continue;
        }

        if scope.std_hash
            && (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && !scan.lex.annotated(line, "std-hash")
        {
            diags.push(Diagnostic::new(
                "std-hash",
                path,
                line,
                format!(
                    "`{}` in a hot-path module — SipHash per key; use \
                     sparta_collections::Fast{} (or justify with \
                     `// lint: allow(std-hash): <reason>`)",
                    t.text, t.text
                ),
            ));
        }

        if scope.wall_clock {
            let instant_now = t.is_ident("Instant")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
            let system_time = t.is_ident("SystemTime");
            if (instant_now || system_time) && !scan.lex.annotated(line, "wall-clock") {
                diags.push(Diagnostic::new(
                    "wall-clock",
                    path,
                    line,
                    format!(
                        "`{}` in the deterministic-replay surface — wall-clock reads \
                         break DeterministicExecutor bit-identical replay; route \
                         through sparta_obs::ObsClock or justify with \
                         `// lint: allow(wall-clock): <reason>`",
                        if system_time {
                            "SystemTime"
                        } else {
                            "Instant::now"
                        }
                    ),
                ));
            }
        }

        if scope.alloc {
            const TYPES: [&str; 10] = [
                "Box", "Vec", "VecDeque", "String", "Arc", "Rc", "BTreeMap", "BTreeSet", "HashMap",
                "HashSet",
            ];
            const CTORS: [&str; 4] = ["new", "with_capacity", "from", "default"];
            const METHODS: [&str; 5] = [
                "to_string",
                "to_owned",
                "to_vec",
                "into_boxed_slice",
                "collect",
            ];
            let ty_ctor = TYPES.iter().any(|ty| t.is_ident(ty))
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks
                    .get(i + 3)
                    .is_some_and(|t| CTORS.iter().any(|c| t.is_ident(c)));
            let owning_method =
                i > 0 && toks[i - 1].is_punct('.') && METHODS.iter().any(|m| t.is_ident(m));
            let alloc_macro = (t.is_ident("vec") || t.is_ident("format"))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if (ty_ctor || owning_method || alloc_macro) && !scan.lex.annotated(line, "alloc") {
                diags.push(Diagnostic::new(
                    "alloc",
                    path,
                    line,
                    format!(
                        "`{}` allocates on the flight recorder's record path — rings \
                         must be allocation-free after construction; move the \
                         allocation to construction and justify with \
                         `// lint: allow(alloc): <reason>`",
                        t.text
                    ),
                ));
            }
        }

        if scope.sleep
            && t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("sleep"))
            && !scan.lex.annotated(line, "sleep")
        {
            diags.push(Diagnostic::new(
                "sleep",
                path,
                line,
                "`thread::sleep` in sparta-core — algorithm code must block on \
                 condvars or the job queue, never wall time (breaks determinism \
                 and wastes a worker)"
                    .to_string(),
            ));
        }
    }

    if scope.unsafe_whitelisted
        && saw_unsafe
        && !scan.lex.annotations.iter().any(|a| a.rule == "miri")
    {
        diags.push(Diagnostic::new(
            "miri-coverage",
            path,
            1,
            "file uses `unsafe` but has no `// miri: <test name>` marker — \
             name the miri-run test that covers these blocks so the CI miri \
             job actually interprets them"
                .to_string(),
        ));
    }
}

/// Crate-root hygiene: `#![forbid(unsafe_code)]` must be present.
pub fn check_crate_root(path: &str, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.lex.toks;
    let mut found = false;
    for i in 0..toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
        {
            found = true;
            break;
        }
    }
    if !found {
        diags.push(Diagnostic::new(
            "missing-forbid",
            path,
            1,
            "crate root lacks `#![forbid(unsafe_code)]` — every workspace crate \
             locks in its zero-unsafe status"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, scope: ApiScope) -> Vec<Diagnostic> {
        let l = lex(src);
        let s = Scan::new(&l);
        let mut d = Vec::new();
        scan_apis("test.rs", &s, scope, &mut d);
        d
    }

    const ALL: ApiScope = ApiScope {
        std_hash: true,
        wall_clock: true,
        sleep: true,
        alloc: false,
        unsafe_code: true,
        unsafe_whitelisted: false,
    };

    const ALLOC_ONLY: ApiScope = ApiScope {
        std_hash: false,
        wall_clock: false,
        sleep: false,
        alloc: true,
        unsafe_code: true,
        unsafe_whitelisted: false,
    };

    const WHITELISTED: ApiScope = ApiScope {
        std_hash: false,
        wall_clock: false,
        sleep: false,
        alloc: false,
        unsafe_code: true,
        unsafe_whitelisted: true,
    };

    #[test]
    fn std_hash_fires_and_annotation_suppresses() {
        let d = run("use std::collections::HashMap;", ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "std-hash");
        let d = run(
            "// lint: allow(std-hash): keyed with FastBuildHasher below\n\
             use std::collections::HashMap;",
            ALL,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn wall_clock_fires_on_instant_now_not_elapsed() {
        let d = run("let t = Instant::now(); t.elapsed();", ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "wall-clock");
        let d = run("let d = start.elapsed();", ALL);
        assert!(d.is_empty());
    }

    #[test]
    fn sleep_and_unsafe_fire() {
        let d = run("std::thread::sleep(d); unsafe { x() }", ALL);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|d| d.rule == "sleep"));
        assert!(d.iter().any(|d| d.rule == "unsafe-code"));
    }

    #[test]
    fn cfg_test_items_are_exempt_from_api_bans_not_unsafe() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { std::thread::sleep(d); let m: HashMap<u32,u32>; }\n}\n";
        let d = run(src, ALL);
        assert!(d.is_empty());
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { unsafe { x() } }\n}\n";
        let d = run(src, ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-code");
    }

    #[test]
    fn alloc_fires_on_ctors_methods_and_macros() {
        let d = run("let v = Vec::new();", ALLOC_ONLY);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "alloc");
        let d = run("let b = Box::from(x);", ALLOC_ONLY);
        assert_eq!(d.len(), 1);
        let d = run("let s = x.to_string();", ALLOC_ONLY);
        assert_eq!(d.len(), 1);
        let d = run("let v: Vec<u64> = it.collect();", ALLOC_ONLY);
        assert_eq!(d.len(), 1);
        let d = run(
            "let v = vec![0u64; 4]; let s = format!(\"{x}\");",
            ALLOC_ONLY,
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn alloc_silent_on_non_allocating_code() {
        // Arc::clone bumps a refcount, slot loads are plain reads, and
        // `Vec<...>` in type position never hits the `::ctor` pattern.
        let d = run(
            "let r = Arc::clone(&ring); let x = slot.load(Ordering::Acquire);\n\
             fn f(v: &Vec<u64>) -> u64 { v[0] }",
            ALLOC_ONLY,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn alloc_annotation_and_cfg_test_suppress() {
        let d = run(
            "// lint: allow(alloc): one-time ring construction\n\
             let slots = Vec::with_capacity(cap);",
            ALLOC_ONLY,
        );
        assert!(d.is_empty());
        let d = run(
            "#[cfg(test)]\nmod tests {\n  fn t() { let v = vec![1, 2, 3]; }\n}\n",
            ALLOC_ONLY,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn whitelisted_unsafe_needs_justification_and_miri_marker() {
        // Fully fenced: per-site justification + file marker → clean.
        let d = run(
            "// miri: lockfree_smoke\n\
             // lint: allow(unsafe): tagged-pointer load, fenced by generation\n\
             unsafe { read(p) }",
            WHITELISTED,
        );
        assert!(d.is_empty(), "{d:?}");
        // Justified site but no miri marker → miri-coverage.
        let d = run(
            "// lint: allow(unsafe): tagged-pointer load, fenced by generation\n\
             unsafe { read(p) }",
            WHITELISTED,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "miri-coverage");
        // Marker but bare site → unsafe-unjustified.
        let d = run("// miri: lockfree_smoke\nunsafe { read(p) }", WHITELISTED);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-unjustified");
        // Outside the whitelist the same code is a plain violation.
        let d = run("unsafe { read(p) }", ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-code");
    }

    #[test]
    fn crate_root_forbid_detected() {
        let mut d = Vec::new();
        let l = lex("#![forbid(unsafe_code)]\npub mod x;");
        check_crate_root("lib.rs", &Scan::new(&l), &mut d);
        assert!(d.is_empty());
        let l = lex("pub mod x;");
        check_crate_root("lib.rs", &Scan::new(&l), &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "missing-forbid");
    }
}
