//! Pass 5: condvar waits must sit in a predicate-rechecking loop.
//!
//! `Condvar::wait` can return spuriously, and a notify can land
//! between the predicate check and the park — the only correct shape
//! is `while !pred { cv.wait(&mut g) }` (or `loop { if pred { break }
//! … wait … }`). A bare `if !pred { cv.wait(…) }` compiles, passes
//! every low-contention test, and turns into a wedge under load; the
//! `sparta-model` wedge detector catches the modelled version of this
//! bug, and this pass catches the lexical shape in shipped code.
//!
//! Detection: every `.wait(…)` / `.wait_for(…)` / `.wait_timeout(…)`
//! call whose receiver tail names a condvar (`cv`, `cvar`, `cond`,
//! `condvar`, or a `*_cv` field) must have a `while` or `loop` block
//! among its enclosing braces *before* the enclosing function or
//! closure body. `wait_while`/`wait_until` are exempt — the predicate
//! recheck is built into the API. A `for` loop does **not** count: it
//! re-runs the body a fixed number of times, it does not recheck the
//! condvar's predicate. Test regions are exempt (a litmus test may
//! park deliberately); genuine exceptions carry
//! `// lint: allow(condvar-wait): <reason>`.

use crate::report::Diagnostic;
use crate::scan::Scan;

const WAIT_METHODS: [&str; 3] = ["wait", "wait_for", "wait_timeout"];

/// Whether a receiver tail plausibly names a condition variable.
fn is_condvar_recv(tail: &str) -> bool {
    matches!(tail, "cv" | "cvar" | "cond" | "condvar")
        || tail.ends_with("_cv")
        || tail.ends_with("_cvar")
        || tail.ends_with("_condvar")
}

/// How a brace block relates to loop-guardedness.
#[derive(Debug, PartialEq, Eq)]
enum BlockClass {
    /// `while … {` or `loop {` — the wait rechecks its predicate.
    Loop,
    /// `fn … {` — searching past this would credit the *caller's*
    /// loop, which does not re-lock-and-recheck.
    Function,
    /// `|…| {` closure body — same boundary as a function.
    Closure,
    /// `if`/`else`/`match`/arm/`for`/plain block — keep walking out.
    Other,
}

/// Classifies the block opened at `open` by scanning its header
/// backward, skipping balanced `(…)`/`[…]` groups.
fn block_class(toks: &[crate::lexer::Tok], match_of: &[usize], open: usize) -> BlockClass {
    let mut j = open;
    let mut budget = 64usize;
    while j > 0 && budget > 0 {
        j -= 1;
        budget -= 1;
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') {
            let m = match_of[j];
            if m == usize::MAX || m == 0 {
                return BlockClass::Other;
            }
            j = m;
            continue;
        }
        if t.is_ident("while") || t.is_ident("loop") {
            return BlockClass::Loop;
        }
        if t.is_ident("fn") {
            return BlockClass::Function;
        }
        if t.is_punct('|') {
            return BlockClass::Closure;
        }
        if t.is_ident("if") || t.is_ident("else") || t.is_ident("match") || t.is_ident("for") {
            return BlockClass::Other;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return BlockClass::Other;
        }
    }
    BlockClass::Other
}

/// Whether the token at `idx` is enclosed by a `while`/`loop` block
/// before any function/closure boundary.
fn loop_guarded(toks: &[crate::lexer::Tok], match_of: &[usize], idx: usize) -> bool {
    // Enclosing open braces, innermost last.
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate().take(idx) {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            stack.pop();
        }
    }
    for &open in stack.iter().rev() {
        match block_class(toks, match_of, open) {
            BlockClass::Loop => return true,
            BlockClass::Function | BlockClass::Closure => return false,
            BlockClass::Other => {}
        }
    }
    false
}

/// Runs the condvar-wait pass over one file.
pub fn scan_condvars(path: &str, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.lex.toks;
    for c in &scan.calls {
        if !WAIT_METHODS.contains(&c.method.as_str()) || !is_condvar_recv(&c.recv_tail) {
            continue;
        }
        if scan.in_test_region(c.line) || scan.lex.annotated(c.line, "condvar-wait") {
            continue;
        }
        if !loop_guarded(toks, &scan.match_of, c.method_idx) {
            diags.push(Diagnostic::new(
                "condvar-wait",
                path,
                c.line,
                format!(
                    "`{}.{}` outside a predicate-rechecking `while`/`loop` — \
                     spurious wakeups and check-to-park races wedge this \
                     wait; re-test the predicate in a loop (model: \
                     job_queue_outstanding shows the wedge) or justify with \
                     `// lint: allow(condvar-wait): <reason>`",
                    c.recv, c.method
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let l = lex(src);
        let s = Scan::new(&l);
        let mut d = Vec::new();
        scan_condvars("test.rs", &s, &mut d);
        d
    }

    #[test]
    fn while_and_loop_guarded_waits_are_clean() {
        let d = run("fn f() { let mut g = m.lock(); while !*g { cv.wait(&mut g); } }");
        assert!(d.is_empty(), "{d:?}");
        let d = run("fn f() { let mut g = m.lock(); loop { if *g { break; } \
             self.cv.wait(&mut g); } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn if_guarded_wait_fires() {
        let d = run("fn f() { let mut g = m.lock(); if !*g { cv.wait(&mut g); } }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "condvar-wait");
    }

    #[test]
    fn bare_wait_in_fn_body_fires() {
        let d = run("fn f() { let mut g = m.lock(); cv.wait(&mut g); }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn for_loop_is_not_predicate_rechecking() {
        let d = run("fn f() { let mut g = m.lock(); for _ in 0..2 { cv.wait(&mut g); } }");
        assert_eq!(d.len(), 1, "a for loop must not count as a recheck");
    }

    #[test]
    fn closure_inside_loop_is_a_boundary() {
        let d = run("fn f() { while go() { run(|| { cv.wait(&mut g); }); } }");
        assert_eq!(d.len(), 1, "the loop is the caller's, not the wait's");
    }

    #[test]
    fn wait_while_and_non_condvar_receivers_are_exempt() {
        let d = run("fn f() { cv.wait_while(&mut g, |v| !*v); slot.wait(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wait_for_needs_a_loop_too() {
        let d = run("fn f() { if !*g { cv.wait_for(&mut g, TIMEOUT); } }");
        assert_eq!(d.len(), 1);
        let d = run("fn f() { while !*g { cv.wait_for(&mut g, TIMEOUT); } }");
        assert!(d.is_empty());
    }

    #[test]
    fn annotation_and_test_regions_suppress() {
        let d = run(
            "fn f() {\n  // lint: allow(condvar-wait): single-shot handoff, \
             notify precedes park by construction\n  cv.wait(&mut g);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run("#[cfg(test)]\nmod t { fn f() { cv.wait(&mut g); } }");
        assert!(d.is_empty(), "{d:?}");
    }
}
