//! Pass 1: the atomic-ordering audit.
//!
//! Every `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` site
//! is grouped by the atomic place it touches — (file, normalized
//! receiver chain) — and each group is checked against the policy
//! table (DESIGN.md §11):
//!
//! - **Counter class.** A place accessed *only* with `Relaxed` is a
//!   statistic: no thread makes a control or data decision requiring
//!   other memory to be visible. All-`Relaxed` groups pass.
//! - **Publish class.** A place with any non-`Relaxed` access carries
//!   synchronization. Then every load must be `Acquire`, every store
//!   `Release`, and every read-modify-write `AcqRel` (a
//!   `compare_exchange` failure ordering may be `Acquire`). A `Relaxed`
//!   access mixed into such a group is the classic lost-pairing bug and
//!   must carry a `// ordering: <reason>` justification.
//! - **`SeqCst` is forbidden outright** — the workspace's protocols are
//!   all pairwise release/acquire; a `SeqCst` site either hides a
//!   missing pairing or buys nothing. No annotation can excuse it.
//!
//! Grouping is per-file and textual, so two aliases of one atomic
//! (e.g. a clone moved into a thread under another name) form separate
//! groups. That is deliberate: each group must be *locally* coherent,
//! and cross-file pairings are what the `// ordering:` annotations
//! document.

use crate::report::Diagnostic;
use crate::scan::Scan;
use std::collections::BTreeMap;

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const RMW_METHODS: [&str; 11] = [
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    Rmw,
    /// `Ordering::*` outside a recognized atomic method call — a
    /// helper taking an ordering parameter, say. Always needs a
    /// justification: the policy table can say nothing about it.
    Unknown,
}

/// One `Ordering::X` occurrence.
#[derive(Debug)]
struct Site {
    line: u32,
    ordering: &'static str,
    kind: AccessKind,
    method: String,
    group: String,
}

/// Per-file coverage numbers for the report.
#[derive(Debug, Default, Clone)]
pub struct Coverage {
    pub sites: usize,
    pub matched: usize,
    pub annotated: usize,
    pub violations: usize,
}

/// Runs the audit over one file. Returns the coverage row; diagnostics
/// are appended to `diags`.
pub fn audit(path: &str, scan: &Scan, diags: &mut Vec<Diagnostic>) -> Coverage {
    let toks = &scan.lex.toks;
    let mut sites: Vec<Site> = Vec::new();

    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") {
            continue;
        }
        let Some(variant) = toks.get(i + 3) else {
            continue;
        };
        if !(toks[i + 1].is_punct(':') && toks[i + 2].is_punct(':')) {
            continue;
        }
        let Some(&ordering) = ORDERINGS.iter().find(|o| variant.is_ident(o)) else {
            continue; // cmp::Ordering::{Less,…} and friends
        };
        // Innermost enclosing call determines the access kind/place.
        let call = scan
            .calls
            .iter()
            .filter(|c| c.args_open < i && i < c.args_close)
            .max_by_key(|c| c.args_open);
        let (kind, method, group) = match call {
            Some(c) if c.method == "load" => (AccessKind::Load, c.method.clone(), c.recv.clone()),
            Some(c) if c.method == "store" => (AccessKind::Store, c.method.clone(), c.recv.clone()),
            Some(c) if RMW_METHODS.contains(&c.method.as_str()) => {
                (AccessKind::Rmw, c.method.clone(), c.recv.clone())
            }
            Some(c) => (AccessKind::Unknown, c.method.clone(), c.recv.clone()),
            None => (AccessKind::Unknown, String::new(), String::new()),
        };
        sites.push(Site {
            line: variant.line,
            ordering,
            kind,
            method,
            group,
        });
    }

    // Group by place and classify.
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, s) in sites.iter().enumerate() {
        groups.entry(&s.group).or_default().push(idx);
    }

    let mut cov = Coverage {
        sites: sites.len(),
        ..Coverage::default()
    };

    for (_, members) in groups {
        let all_relaxed = members.iter().all(|&i| sites[i].ordering == "Relaxed");
        for &i in &members {
            let s = &sites[i];
            let annotated = scan.lex.annotated(s.line, "ordering");
            // SeqCst first: not even an annotation excuses it.
            if s.ordering == "SeqCst" {
                cov.violations += 1;
                diags.push(Diagnostic::new(
                    "seqcst-forbidden",
                    path,
                    s.line,
                    format!(
                        "Ordering::SeqCst on `{}` — the workspace policy forbids SeqCst \
                         outright; express the protocol as a Release/Acquire pair",
                        display_place(s),
                    ),
                ));
                continue;
            }
            let verdict = if s.kind == AccessKind::Unknown {
                Err(format!(
                    "Ordering::{} outside a recognized atomic access (context `{}`) — \
                     the policy table cannot classify it",
                    s.ordering,
                    if s.method.is_empty() {
                        "<none>"
                    } else {
                        &s.method
                    },
                ))
            } else if all_relaxed {
                Ok(()) // counter class
            } else {
                check_publish_site(s)
            };
            match verdict {
                Ok(()) => {
                    cov.matched += 1;
                    if annotated {
                        cov.annotated += 1;
                    }
                }
                Err(_) if annotated => cov.annotated += 1,
                Err(why) => {
                    cov.violations += 1;
                    let rule = if s.ordering == "Relaxed" {
                        "mixed-ordering"
                    } else {
                        "rmw-ordering"
                    };
                    diags.push(Diagnostic::new(
                        rule,
                        path,
                        s.line,
                        format!("{why}; add `// ordering: <reason>` or fix the ordering"),
                    ));
                }
            }
        }
    }
    cov
}

/// Policy check for one site of a publish-class group.
fn check_publish_site(s: &Site) -> Result<(), String> {
    let ok = match s.kind {
        AccessKind::Load => s.ordering == "Acquire",
        AccessKind::Store => s.ordering == "Release",
        AccessKind::Rmw => {
            s.ordering == "AcqRel"
                || (s.method.starts_with("compare_exchange") && s.ordering == "Acquire")
        }
        AccessKind::Unknown => unreachable!("handled by caller"),
    };
    if ok {
        Ok(())
    } else {
        Err(format!(
            "`{}` uses Ordering::{} on `{}`, but the place is publish-class \
             (it has non-Relaxed accesses); policy requires Acquire loads, \
             Release stores, AcqRel RMWs",
            s.method,
            s.ordering,
            display_place(s),
        ))
    }
}

fn display_place(s: &Site) -> &str {
    if s.group.is_empty() {
        "<unknown>"
    } else {
        &s.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Coverage, Vec<Diagnostic>) {
        let l = lex(src);
        let s = Scan::new(&l);
        let mut d = Vec::new();
        let c = audit("test.rs", &s, &mut d);
        (c, d)
    }

    #[test]
    fn pure_relaxed_counter_is_matched() {
        let (c, d) =
            run("self.hits.fetch_add(1, Ordering::Relaxed);\nself.hits.load(Ordering::Relaxed);");
        assert_eq!(c.sites, 2);
        assert_eq!(c.matched, 2);
        assert!(d.is_empty());
    }

    #[test]
    fn coherent_publish_group_is_matched() {
        let (c, d) = run("self.flag.store(1, Ordering::Release);\n\
             self.flag.load(Ordering::Acquire);\n\
             self.flag.fetch_add(1, Ordering::AcqRel);");
        assert_eq!(c.matched, 3);
        assert!(d.is_empty());
    }

    #[test]
    fn relaxed_in_publish_group_fires_unless_annotated() {
        let (c, d) =
            run("self.flag.store(1, Ordering::Release);\nself.flag.load(Ordering::Relaxed);");
        assert_eq!(c.violations, 1);
        assert_eq!(d[0].rule, "mixed-ordering");
        let (c2, d2) = run("self.flag.store(1, Ordering::Release);\n\
             // ordering: raced reads tolerated, validated under the heap lock\n\
             self.flag.load(Ordering::Relaxed);");
        assert_eq!(c2.violations, 0);
        assert_eq!(c2.annotated, 1);
        assert!(d2.is_empty());
    }

    #[test]
    fn seqcst_fires_even_with_annotation() {
        let (c, d) = run("// ordering: because\nself.x.load(Ordering::SeqCst);");
        assert_eq!(c.violations, 1);
        assert_eq!(d[0].rule, "seqcst-forbidden");
    }

    #[test]
    fn non_acqrel_rmw_in_publish_group_fires() {
        let (_, d) =
            run("self.n.store(1, Ordering::Release);\nself.n.fetch_add(1, Ordering::Acquire);");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "rmw-ordering");
    }

    #[test]
    fn ordering_outside_atomic_call_needs_annotation() {
        let (c, d) = run("takes_ordering(Ordering::Acquire);");
        assert_eq!(c.violations, 1);
        assert_eq!(d[0].rule, "rmw-ordering");
        let (c2, _) = run("takes_ordering(Ordering::Acquire); // ordering: forwarded to load");
        assert_eq!(c2.violations, 0);
        assert_eq!(c2.annotated, 1);
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let (c, _) = run("a.cmp(&b) == Ordering::Less");
        assert_eq!(c.sites, 0);
    }
}
