//! CLI for the workspace concurrency lint.
//!
//! ```text
//! cargo run -p sparta-lint -- --check                # full workspace, exit 1 on violations
//! cargo run -p sparta-lint -- --check --verbose      # + per-file coverage and lock graph
//! cargo run -p sparta-lint -- --check --json out.json
//! cargo run -p sparta-lint -- --check --as crates/sparta-core/src/x.rs path/to/fixture.rs
//! ```
//!
//! Without explicit file arguments the tool walks the workspace from
//! the nearest ancestor directory whose `Cargo.toml` declares
//! `[workspace]`. `--as <virtual-path>` lints the given files as if
//! they lived at that workspace-relative path (fixture testing).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut verbose = false;
    let mut json_out: Option<String> = None;
    let mut virtual_path: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--verbose" | "-v" => verbose = true,
            "--json" => match args.next() {
                Some(p) => json_out = Some(p),
                None => return usage("--json needs a path (or `-` for stdout)"),
            },
            "--as" => match args.next() {
                Some(p) => virtual_path = Some(p),
                None => return usage("--as needs a workspace-relative virtual path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("sparta-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let result = if files.is_empty() {
        sparta_lint::run_workspace(&root)
    } else {
        sparta_lint::run_files(&root, &files, virtual_path.as_deref())
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sparta-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    // `--json -` claims stdout for the machine-readable report; the
    // human-readable one moves to stderr so the JSON stays parseable.
    if json_out.as_deref() == Some("-") {
        eprint!("{}", report.render_text(verbose));
    } else {
        print!("{}", report.render_text(verbose));
    }

    if let Some(path) = json_out {
        let text = report.to_json().to_pretty_string(2);
        if path == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("sparta-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if check && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory to the workspace `Cargo.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("sparta-lint: {err}");
    }
    eprintln!(
        "usage: sparta-lint [--check] [--verbose] [--json <path|->] \
         [--root <dir>] [--as <virtual-path>] [files…]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
