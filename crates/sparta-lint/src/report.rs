//! Diagnostics, the coverage report, and JSON rendering.
//!
//! JSON reuses `sparta_obs::Json` — the same hand-rolled value model
//! the bench exporter emits — so CI tooling that already parses
//! `BENCH_*.json` can consume lint output with zero new code.

use crate::atomics::Coverage;
use crate::locks::LockEdge;
use sparta_obs::json::Json;
use std::collections::BTreeMap;

/// One finding, pointing at a file:line with a named rule.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn new(rule: &str, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message,
        }
    }
}

/// Full run output: diagnostics plus the audit/coverage side tables.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
    /// Per-file atomic-ordering coverage (files with ≥1 site only).
    pub ordering: BTreeMap<String, Coverage>,
    /// Observed lock-nesting edges (deduplicated per class pair).
    pub lock_edges: Vec<LockEdge>,
    /// Model names harvested from `crates/sparta-model/src` (empty
    /// when the registry directory is outside the lint root).
    pub model_registry: Vec<String>,
    /// Ordering-annotation citations per model name.
    pub model_refs: BTreeMap<String, usize>,
}

impl Report {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Totals over [`Report::ordering`].
    pub fn ordering_totals(&self) -> Coverage {
        let mut t = Coverage::default();
        for c in self.ordering.values() {
            t.sites += c.sites;
            t.matched += c.matched;
            t.annotated += c.annotated;
            t.violations += c.violations;
        }
        t
    }

    /// Ordering-audit coverage in percent: sites either policy-matched
    /// or annotated. 100.0 when there are no sites.
    pub fn coverage_percent(&self) -> f64 {
        let t = self.ordering_totals();
        if t.sites == 0 {
            return 100.0;
        }
        100.0 * (t.sites - t.violations) as f64 / t.sites as f64
    }

    /// Sorts diagnostics for deterministic output.
    pub fn finish(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.lock_edges.sort();
        self.lock_edges
            .dedup_by(|a, b| a.outer == b.outer && a.inner == b.inner);
    }

    /// Human-readable rendering.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        let t = self.ordering_totals();
        out.push_str(&format!(
            "sparta-lint: {} files, {} atomic-ordering sites \
             ({} policy-matched, {} annotated, {} violations) — coverage {:.1}%\n",
            self.files_scanned,
            t.sites,
            t.matched,
            t.annotated,
            t.violations,
            self.coverage_percent(),
        ));
        if !self.model_registry.is_empty() || !self.model_refs.is_empty() {
            let cited: usize = self.model_refs.values().sum();
            out.push_str(&format!(
                "model cross-reference: {} checked models, {} ordering \
                 claims cited\n",
                self.model_registry.len(),
                cited
            ));
        }
        if verbose {
            for name in &self.model_registry {
                out.push_str(&format!(
                    "  model {name}: {} citing sites\n",
                    self.model_refs.get(name).copied().unwrap_or(0)
                ));
            }
            for (file, c) in &self.ordering {
                out.push_str(&format!(
                    "  {file}: {} sites, {} matched, {} annotated, {} violations\n",
                    c.sites, c.matched, c.annotated, c.violations
                ));
            }
            out.push_str(&format!("lock-order edges ({}):\n", self.lock_edges.len()));
            for e in &self.lock_edges {
                out.push_str(&format!(
                    "  {} -> {}  (first seen {}:{})\n",
                    e.outer, e.inner, e.file, e.line
                ));
            }
        }
        out.push_str(if self.is_clean() {
            "sparta-lint: clean\n"
        } else {
            "sparta-lint: FAIL\n"
        });
        out
    }

    /// Machine-readable rendering (schema documented in DESIGN.md §11).
    pub fn to_json(&self) -> Json {
        let t = self.ordering_totals();
        let diags: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::obj()
                    .with("rule", d.rule.as_str())
                    .with("file", d.file.as_str())
                    .with("line", u64::from(d.line))
                    .with("message", d.message.as_str())
            })
            .collect();
        let coverage: Vec<Json> = self
            .ordering
            .iter()
            .map(|(f, c)| {
                Json::obj()
                    .with("file", f.as_str())
                    .with("sites", c.sites as u64)
                    .with("matched", c.matched as u64)
                    .with("annotated", c.annotated as u64)
                    .with("violations", c.violations as u64)
            })
            .collect();
        let edges: Vec<Json> = self
            .lock_edges
            .iter()
            .map(|e| {
                Json::obj()
                    .with("outer", e.outer.as_str())
                    .with("inner", e.inner.as_str())
                    .with("file", e.file.as_str())
                    .with("line", u64::from(e.line))
            })
            .collect();
        Json::obj()
            .with("tool", "sparta-lint")
            .with("files_scanned", self.files_scanned as u64)
            .with("clean", self.is_clean())
            .with(
                "ordering_audit",
                Json::obj()
                    .with("sites", t.sites as u64)
                    .with("matched", t.matched as u64)
                    .with("annotated", t.annotated as u64)
                    .with("violations", t.violations as u64)
                    .with("coverage_percent", self.coverage_percent())
                    .with("per_file", Json::Arr(coverage)),
            )
            .with("lock_order", Json::obj().with("edges", Json::Arr(edges)))
            .with(
                "models",
                Json::obj()
                    .with(
                        "registry",
                        Json::Arr(
                            self.model_registry
                                .iter()
                                .map(|n| Json::from(n.as_str()))
                                .collect(),
                        ),
                    )
                    .with(
                        "referenced",
                        self.model_refs
                            .iter()
                            .fold(Json::obj(), |j, (n, c)| j.with(n.as_str(), *c as u64)),
                    ),
            )
            .with("diagnostics", Json::Arr(diags))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_percent_counts_violations_only() {
        let mut r = Report::default();
        r.ordering.insert(
            "a.rs".into(),
            Coverage {
                sites: 10,
                matched: 8,
                annotated: 1,
                violations: 1,
            },
        );
        assert!((r.coverage_percent() - 90.0).abs() < 1e-9);
        assert!((Report::default().coverage_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrips_through_obs_parser() {
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.diagnostics.push(Diagnostic::new(
            "std-hash",
            "b.rs",
            7,
            "msg \"quoted\"".into(),
        ));
        r.finish();
        let text = r.to_json().to_pretty_string(2);
        let back = sparta_obs::json::parse(&text).expect("parses");
        assert_eq!(
            back.get("tool").and_then(|j| j.as_str()),
            Some("sparta-lint")
        );
        assert_eq!(
            back.get("diagnostics")
                .and_then(|j| j.as_arr())
                .map(|a| a.len()),
            Some(1)
        );
    }
}
