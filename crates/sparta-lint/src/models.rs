//! Pass 4: the ordering ↔ model cross-reference.
//!
//! A `// ordering: <reason>` comment is a *claim* about weak-memory
//! behavior, and DESIGN.md §15 requires every such claim to be backed
//! by a machine-checked `sparta-model` protocol. The contract:
//!
//! - Every ordering annotation in non-test workspace code must carry a
//!   `model: <name>` tag **on the annotation line** (rule
//!   `ordering-unmodeled` otherwise). The tag names the
//!   `Model::new("<name>")` protocol whose exhaustive exploration
//!   verifies the claimed edge.
//! - The registry of valid names is harvested *textually* from
//!   `crates/sparta-model/src/**`: every `Model::new("…")` string
//!   literal outside `#[cfg(test)]` regions. A tag naming no harvested
//!   model is rule `unknown-model`. When the registry directory is not
//!   present under the lint root (fixture runs use the `sparta-lint`
//!   crate dir as root), tag presence is still required but names are
//!   not validated.
//! - `sparta-model` itself is exempt — its sources *are* the models,
//!   and its prose deliberately never uses the annotation grammar.
//!
//! The pass also counts citations per model so the report can show
//! which protocols carry how many justifications.

use crate::lexer;
use crate::report::Diagnostic;
use crate::scan::Scan;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The harvested set of checked-model names.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    /// Whether `crates/sparta-model/src` existed under the lint root.
    /// When false, `model:` tags are required but names go unchecked.
    pub available: bool,
    pub names: BTreeSet<String>,
}

/// Extracts `Model::new("…")` names from one source text, skipping
/// `#[cfg(test)]` regions (litmus tests name throwaway models).
pub fn extract_model_names(src: &str) -> Vec<String> {
    let lex = lexer::lex(src);
    let scan = Scan::new(&lex);
    let toks = &lex.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("Model")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let Some(lit) = toks.get(i + 5) else { continue };
            if scan.in_test_region(lit.line) {
                continue;
            }
            if let Some(name) = lit.text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Walks `<root>/crates/sparta-model/src` and harvests every model
/// name. Missing directory → `available: false`.
pub fn harvest_registry(root: &Path) -> ModelRegistry {
    let dir = root.join("crates/sparta-model/src");
    if !dir.is_dir() {
        return ModelRegistry::default();
    }
    let mut reg = ModelRegistry {
        available: true,
        names: BTreeSet::new(),
    };
    let mut stack = vec![dir];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(src) = std::fs::read_to_string(&path) {
                    reg.names.extend(extract_model_names(&src));
                }
            }
        }
    }
    reg
}

/// Parses the `model: <name>` tag out of an annotation reason. The
/// name is the maximal `[A-Za-z0-9_-]+` run after the marker.
pub fn model_tag(reason: &str) -> Option<String> {
    let idx = reason.find("model:")?;
    let rest = reason[idx + "model:".len()..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Cross-references one file's ordering annotations against the model
/// registry, counting citations into `refs`.
pub fn check_model_refs(
    path: &str,
    scan: &Scan,
    registry: &ModelRegistry,
    refs: &mut BTreeMap<String, usize>,
    diags: &mut Vec<Diagnostic>,
) {
    for a in &scan.lex.annotations {
        if a.rule != "ordering" || scan.in_test_region(a.line) {
            continue;
        }
        match model_tag(&a.reason) {
            None => diags.push(Diagnostic::new(
                "ordering-unmodeled",
                path,
                a.line,
                "`// ordering:` claim cites no checked model — add a \
                 `model: <name>` tag on this line naming the sparta-model \
                 protocol (Model::new(\"<name>\")) that verifies the edge"
                    .to_string(),
            )),
            Some(name) => {
                if registry.available && !registry.names.contains(&name) {
                    diags.push(Diagnostic::new(
                        "unknown-model",
                        path,
                        a.line,
                        format!(
                            "ordering claim cites model `{name}`, but no \
                             Model::new(\"{name}\") exists under \
                             crates/sparta-model/src — the justification is \
                             not machine-checked"
                        ),
                    ));
                }
                *refs.entry(name).or_insert(0) += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn extracts_names_outside_test_regions() {
        let src = "\
pub fn model() -> Model { Model::new(\"seqlock_ring\") }\n\
#[cfg(test)]\nmod tests { fn t() { let m = Model::new(\"scratch\"); } }\n";
        assert_eq!(extract_model_names(src), ["seqlock_ring"]);
    }

    #[test]
    fn model_tag_parses_with_and_without_parens() {
        assert_eq!(
            model_tag("single producer (model: seqlock_ring)").as_deref(),
            Some("seqlock_ring")
        );
        assert_eq!(
            model_tag("model: job_queue_outstanding — final decrement").as_deref(),
            Some("job_queue_outstanding")
        );
        assert_eq!(model_tag("no tag here"), None);
        assert_eq!(model_tag("model: "), None);
    }

    #[test]
    fn missing_tag_fires_and_tagged_counts() {
        let src = "\
// ordering: raced hint only (model: seqlock_ring)\n\
a.load(Ordering::Relaxed);\n\
// ordering: no tag at all\n\
b.load(Ordering::Relaxed);\n";
        let l = lex(src);
        let s = Scan::new(&l);
        let reg = ModelRegistry {
            available: true,
            names: [String::from("seqlock_ring")].into(),
        };
        let mut refs = BTreeMap::new();
        let mut diags = Vec::new();
        check_model_refs("x.rs", &s, &reg, &mut refs, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "ordering-unmodeled");
        assert_eq!(refs.get("seqlock_ring"), Some(&1));
    }

    #[test]
    fn unknown_name_fires_only_with_registry() {
        let src = "// ordering: claim (model: bogus)\na.load(Ordering::Relaxed);\n";
        let l = lex(src);
        let s = Scan::new(&l);
        let mut refs = BTreeMap::new();
        let mut diags = Vec::new();
        let reg = ModelRegistry {
            available: true,
            names: BTreeSet::new(),
        };
        check_model_refs("x.rs", &s, &reg, &mut refs, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unknown-model");

        let mut diags = Vec::new();
        let reg = ModelRegistry::default();
        check_model_refs("x.rs", &s, &reg, &mut refs, &mut diags);
        assert!(diags.is_empty(), "no registry → names unchecked");
    }
}
