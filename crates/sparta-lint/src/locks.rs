//! Pass 2: the lock-order graph.
//!
//! Extracts every `Mutex`/`RwLock` acquisition (`.lock()`, `.read()`,
//! `.write()` with empty argument lists) and the *static nesting*
//! between them: lock B acquired while a guard for lock A is still in
//! scope contributes the edge A → B. Guards are tracked lexically:
//!
//! - `let g = x.lock();` — guard `g` lives to the end of its block or
//!   to an explicit `drop(g)`;
//! - `x.lock().method(…)` — a temporary guard that lives to the end of
//!   the statement;
//! - closures passed to [`StripedMap`]'s entry APIs
//!   (`get_or_insert_with`, `get_or_try_insert_with`, `update`,
//!   `for_each`) run **under a stripe lock** even though the `lock()`
//!   call is inside `striped_map.rs`; the pass models those argument
//!   ranges as holding the `stripes` class.
//!
//! Lock *classes* are receiver tails (`jobs`, `stripes`, `inner`, …)
//! merged across files, which matches how the workspace names its
//! locks one struct field per lock. The pass fails on any cycle in the
//! class graph (static deadlock risk, including self-loops: two
//! stripes, two `jobs` queues), and flags `.lock().unwrap()` —
//! std-`Mutex` poisoning idiom, banned in hot-path crates where
//! `parking_lot` is the standard — anywhere, and *especially* while a
//! stripe is held.
//!
//! This is intraprocedural: a function that merely calls another
//! function which locks contributes no edge. The `// ordering:`-style
//! escape is `// lint: allow(lock-order): <reason>` on the inner
//! acquisition, and `// lint: allow(lock-unwrap): <reason>` for the
//! unwrap idiom.

use crate::report::Diagnostic;
use crate::scan::Scan;
use std::collections::{BTreeMap, BTreeSet};

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// StripedMap entry points whose closure argument runs under a stripe.
const STRIPE_CONTEXT_METHODS: [&str; 4] = [
    "get_or_insert_with",
    "get_or_try_insert_with",
    "update",
    "for_each",
];

/// One observed nesting: `outer` held while `inner` is acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub outer: String,
    pub inner: String,
    pub file: String,
    pub line: u32,
}

/// Scans one file, appending nesting edges to `edges` and immediate
/// violations (`lock-unwrap`) to `diags`. Cycle detection runs once
/// over the merged graph via [`check_cycles`].
pub fn scan_locks(
    path: &str,
    scan: &Scan,
    api_bans_active: bool,
    edges: &mut Vec<LockEdge>,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &scan.lex.toks;

    // Lock acquisitions: `.lock()` / `.read()` / `.write()` with no
    // arguments (filters out io::Read::read(&mut buf) and friends).
    let acquisitions: Vec<&crate::scan::CallSite> = scan
        .calls
        .iter()
        .filter(|c| {
            LOCK_METHODS.contains(&c.method.as_str())
                && c.args_close == c.args_open + 1
                && !c.recv_tail.is_empty()
        })
        .collect();

    // Stripe-context ranges: closure arguments of StripedMap entry APIs.
    let stripe_ranges: Vec<(usize, usize)> = scan
        .calls
        .iter()
        .filter(|c| STRIPE_CONTEXT_METHODS.contains(&c.method.as_str()))
        .map(|c| (c.args_open, c.args_close))
        .collect();

    #[derive(Debug)]
    enum Expiry {
        Stmt,          // temporary guard; dies at next `;` at its depth
        Named(String), // block-scoped; also dies at `drop(name)`
    }
    struct Guard {
        class: String,
        depth: usize,
        expiry: Expiry,
    }

    let mut active: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut acq_iter = acquisitions.iter().peekable();

    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            active.retain(|g| g.depth <= depth);
        } else if t.is_punct(';') {
            active.retain(|g| !(matches!(g.expiry, Expiry::Stmt) && g.depth == depth));
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = toks.get(i + 2) {
                active.retain(|g| !matches!(&g.expiry, Expiry::Named(n) if *n == name.text));
            }
        }

        // Is this token the method ident of the next acquisition?
        let Some(next) = acq_iter.peek() else {
            continue;
        };
        if next.method_idx != i {
            continue;
        }
        let site = *acq_iter.next().unwrap();
        let class = site.recv_tail.clone();

        // Edges from every held guard (lexical) …
        let allow = scan.lex.annotated(site.line, "lock-order");
        if !allow {
            for g in &active {
                edges.push(LockEdge {
                    outer: g.class.clone(),
                    inner: class.clone(),
                    file: path.to_string(),
                    line: site.line,
                });
            }
            // … and from an enclosing StripedMap entry closure.
            let in_stripe_ctx = stripe_ranges
                .iter()
                .any(|&(open, close)| open < site.method_idx && site.method_idx < close);
            if in_stripe_ctx {
                edges.push(LockEdge {
                    outer: "stripes".to_string(),
                    inner: class.clone(),
                    file: path.to_string(),
                    line: site.line,
                });
            }
        }

        // `.lock().unwrap()` — std Mutex poisoning idiom.
        let unwrapped = toks
            .get(site.args_close + 1)
            .is_some_and(|t| t.is_punct('.'))
            && toks
                .get(site.args_close + 2)
                .is_some_and(|t| t.is_ident("unwrap"));
        if unwrapped && site.method == "lock" {
            let under_stripe = active.iter().any(|g| g.class == "stripes")
                || stripe_ranges
                    .iter()
                    .any(|&(open, close)| open < site.method_idx && site.method_idx < close);
            let banned_here = api_bans_active && !scan.in_test_region(site.line);
            if (under_stripe || banned_here) && !scan.lex.annotated(site.line, "lock-unwrap") {
                let msg = if under_stripe {
                    format!(
                        "`.lock().unwrap()` on `{}` while holding a StripedMap stripe — \
                         a poisoned std Mutex would wedge the stripe; use parking_lot",
                        site.recv
                    )
                } else {
                    format!(
                        "`.lock().unwrap()` on `{}` — std Mutex poisoning idiom; \
                         hot-path crates use parking_lot locks (no unwrap)",
                        site.recv
                    )
                };
                diags.push(Diagnostic::new("lock-unwrap", path, site.line, msg));
            }
        }

        // Register the new guard.
        let expiry = guard_expiry(toks, site);
        let gdepth = depth;
        active.push(Guard {
            class,
            depth: gdepth,
            expiry,
        });
    }

    // (guards drop with `active` at end of file)
    fn guard_expiry(toks: &[crate::lexer::Tok], site: &crate::scan::CallSite) -> Expiry {
        // Chained (`x.lock().y…`) → temporary, dies at `;`.
        if toks
            .get(site.args_close + 1)
            .is_some_and(|t| t.is_punct('.'))
        {
            return Expiry::Stmt;
        }
        // Walk back from the receiver for `let [mut] name =` on the
        // same statement.
        let mut j = site.method_idx;
        // method_idx-1 is the `.`; step to receiver start by walking to
        // the statement head: stop at `;`, `{`, `}`.
        let mut name: Option<String> = None;
        while j > 0 {
            j -= 1;
            let t = &toks[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let") {
                // `let` [`mut`] ident
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if let Some(id) = toks.get(k) {
                    if id.kind == crate::lexer::TokKind::Ident {
                        name = Some(id.text.clone());
                    }
                }
                break;
            }
        }
        match name {
            Some(n) => Expiry::Named(n),
            // Bare `x.lock();` or an expression position we could not
            // attribute — treat as statement-scoped.
            None => Expiry::Stmt,
        }
    }
}

/// Detects cycles in the merged class graph. Returns diagnostics for
/// each distinct cycle found (self-loops included).
pub fn check_cycles(edges: &[LockEdge]) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut where_edge: BTreeMap<(&str, &str), (&str, u32)> = BTreeMap::new();
    for e in edges {
        if e.outer == e.inner {
            // Self-loop: nested acquisition of the same class.
            return vec![Diagnostic::new(
                "lock-cycle",
                &e.file,
                e.line,
                format!(
                    "lock class `{}` acquired while already held (self-cycle): \
                     two instances of this class nest, which deadlocks if two \
                     threads pick opposite orders",
                    e.outer
                ),
            )];
        }
        adj.entry(e.outer.as_str())
            .or_default()
            .insert(e.inner.as_str());
        where_edge
            .entry((e.outer.as_str(), e.inner.as_str()))
            .or_insert((e.file.as_str(), e.line));
    }
    // Iterative DFS with colors for cycle detection.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            match color.get(node).copied().unwrap_or(0) {
                0 => {
                    color.insert(node, 1);
                    let mut path2 = path.clone();
                    path2.push(node);
                    // Re-push to blacken after children.
                    stack.push((node, path));
                    for &next in adj.get(node).into_iter().flatten() {
                        if color.get(next).copied().unwrap_or(0) == 1 {
                            // Found a grey back-edge: cycle.
                            let mut cycle: Vec<&str> =
                                path2.iter().skip_while(|&&n| n != next).copied().collect();
                            cycle.push(next);
                            let (file, line) = where_edge
                                .get(&(node, next))
                                .copied()
                                .unwrap_or(("<merged>", 0));
                            return vec![Diagnostic::new(
                                "lock-cycle",
                                file,
                                line,
                                format!(
                                    "lock-order cycle: {} — a consistent acquisition \
                                     hierarchy is required (DESIGN.md §11)",
                                    cycle.join(" → ")
                                ),
                            )];
                        }
                        if color.get(next).copied().unwrap_or(0) == 0 {
                            stack.push((next, path2.clone()));
                        }
                    }
                }
                1 => {
                    color.insert(node, 2);
                }
                _ => {}
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<LockEdge>, Vec<Diagnostic>) {
        let l = lex(src);
        let s = Scan::new(&l);
        let mut e = Vec::new();
        let mut d = Vec::new();
        scan_locks("test.rs", &s, true, &mut e, &mut d);
        (e, d)
    }

    #[test]
    fn nested_let_guards_make_an_edge() {
        let (e, _) = run("fn f(x: &X) { let g = x.jobs.lock(); x.heap.lock(); }");
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].outer.as_str(), e[0].inner.as_str()), ("jobs", "heap"));
    }

    #[test]
    fn guard_dropped_before_second_lock_makes_no_edge() {
        let (e, _) = run("fn f(x: &X) { let g = x.jobs.lock(); drop(g); x.heap.lock(); }");
        assert!(e.is_empty());
    }

    #[test]
    fn temporary_guard_expires_at_statement_end() {
        let (e, _) = run("fn f(x: &X) { x.jobs.lock().push(1); x.heap.lock().pop(); }");
        assert!(e.is_empty());
    }

    #[test]
    fn block_scope_releases_guard() {
        let (e, _) = run("fn f(x: &X) { { let g = x.jobs.lock(); } x.heap.lock(); }");
        assert!(e.is_empty());
    }

    #[test]
    fn cycle_is_detected() {
        let (e, _) = run("fn a(x: &X) { let g = x.jobs.lock(); x.heap.lock(); }\n\
             fn b(x: &X) { let g = x.heap.lock(); x.jobs.lock(); }");
        let d = check_cycles(&e);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lock-cycle");
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let (e, _) = run("fn f(x: &X) { let a = x.stripes[i].lock(); x.stripes[j].lock(); }");
        let d = check_cycles(&e);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("self-cycle"));
    }

    #[test]
    fn stripe_closure_context_adds_edge_and_flags_unwrap() {
        let (e, d) =
            run("fn f(m: &M, o: &O) { m.get_or_insert_with(k, || o.inner.lock().unwrap()); }");
        assert!(e.iter().any(|e| e.outer == "stripes" && e.inner == "inner"));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lock-unwrap");
        assert!(d[0].message.contains("stripe"));
    }

    #[test]
    fn lock_order_annotation_suppresses_edge() {
        let (e, _) = run("fn f(x: &X) { let g = x.jobs.lock();\n\
             // lint: allow(lock-order): leaf lock, documented in DESIGN §11\n\
             x.heap.lock(); }");
        assert!(e.is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let (e, d) = run("fn f(x: &mut F) { let g = x.m.lock(); x.file.read(&mut buf); }");
        assert!(e.is_empty());
        assert!(d.is_empty());
    }
}
