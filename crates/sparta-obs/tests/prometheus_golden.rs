//! Golden test for the Prometheus rendering of a [`ServerSnapshot`]:
//! the exposition is an external contract (scrape configs, recording
//! rules, the bench harness's scraper all key on these exact series),
//! so any drift must be a conscious, test-visible change.

use sparta_obs::{parse_exposition, sample_value, server_snapshot_text, ServerSnapshot};

fn known_snapshot() -> ServerSnapshot {
    ServerSnapshot {
        accepted: 7,
        queued: 4,
        shed: 2,
        abandoned: 1,
        completed: 7,
        queue_depth_highwater: 3,
        in_flight_highwater: 2,
    }
}

#[test]
fn server_snapshot_exposition_matches_golden_text() {
    let expected = "\
# HELP sparta_server_admission_attempts_total Admission attempts (accepted + shed + abandoned).
# TYPE sparta_server_admission_attempts_total counter
sparta_server_admission_attempts_total 10
# HELP sparta_server_admission_accepted_total Queries granted an execution slot.
# TYPE sparta_server_admission_accepted_total counter
sparta_server_admission_accepted_total 7
# HELP sparta_server_admission_queued_total Queries that waited in the bounded queue.
# TYPE sparta_server_admission_queued_total counter
sparta_server_admission_queued_total 4
# HELP sparta_server_admission_shed_total Queries rejected at admission.
# TYPE sparta_server_admission_shed_total counter
sparta_server_admission_shed_total 2
# HELP sparta_server_admission_abandoned_total Queued queries cancelled before a grant.
# TYPE sparta_server_admission_abandoned_total counter
sparta_server_admission_abandoned_total 1
# HELP sparta_server_completed_total Execution slots released.
# TYPE sparta_server_completed_total counter
sparta_server_completed_total 7
# HELP sparta_server_queue_depth_highwater Deepest the wait queue has ever been.
# TYPE sparta_server_queue_depth_highwater gauge
sparta_server_queue_depth_highwater 3
# HELP sparta_server_in_flight_highwater Most queries ever executing concurrently.
# TYPE sparta_server_in_flight_highwater gauge
sparta_server_in_flight_highwater 2
";
    assert_eq!(server_snapshot_text(&known_snapshot()), expected);
}

#[test]
fn rendered_counters_carry_the_admission_invariant() {
    let snap = known_snapshot();
    let samples = parse_exposition(&server_snapshot_text(&snap)).expect("golden text parses");
    let get = |series: &str| sample_value(&samples, series).expect(series);
    // The invariant must hold in the *rendered* numbers, not just the
    // in-memory snapshot: attempts == accepted + shed + abandoned.
    assert_eq!(
        get("sparta_server_admission_attempts_total"),
        get("sparta_server_admission_accepted_total")
            + get("sparta_server_admission_shed_total")
            + get("sparta_server_admission_abandoned_total"),
    );
    assert_eq!(get("sparta_server_admission_attempts_total"), 10.0);
    // Default (all-zero) snapshots render and hold it too.
    let zero = parse_exposition(&server_snapshot_text(&ServerSnapshot::default())).unwrap();
    let z = |series: &str| sample_value(&zero, series).expect(series);
    assert_eq!(
        z("sparta_server_admission_attempts_total"),
        z("sparta_server_admission_accepted_total")
            + z("sparta_server_admission_shed_total")
            + z("sparta_server_admission_abandoned_total"),
    );
}
