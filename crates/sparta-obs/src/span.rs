//! Query-scoped tracing spans.
//!
//! A [`QueryTrace`] records which *phase* of a search ran when: the
//! planning step, each posting-list segment, each cleaner pass, the
//! final heap merge. Algorithms open a span with [`QueryTrace::span`]
//! and close it by dropping the guard; a disabled trace makes both a
//! single branch, mirroring the disabled-sink design of
//! `sparta-core::TraceSink`.
//!
//! Timestamps come from an [`ObsClock`], so a trace recorded against
//! [`ClockMode::Logical`] under the deterministic executor is
//! bit-identical across replays of the same seed.

use crate::clock::{ClockMode, ObsClock};
use std::sync::Mutex;

/// The phases of a top-k search, uniform across algorithm families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Query planning: opening cursors, seeding the job queue.
    Plan,
    /// One posting-list segment traversal (Sparta, pNRA, pJASS).
    TermProcess,
    /// One Sparta cleaner pass.
    Cleaner,
    /// One pNRA stopping-condition scan.
    StopCheck,
    /// One sNRA shard's local NRA run.
    ShardSearch,
    /// One pBMW document-range scan.
    RangeScan,
    /// Final result assembly: heap drain / shard merge / accumulator
    /// selection.
    HeapMerge,
}

impl Phase {
    /// All phases, in declaration order.
    pub const ALL: [Phase; 7] = [
        Phase::Plan,
        Phase::TermProcess,
        Phase::Cleaner,
        Phase::StopCheck,
        Phase::ShardSearch,
        Phase::RangeScan,
        Phase::HeapMerge,
    ];

    /// Position in [`Phase::ALL`] — the flight recorder's span event
    /// payload.
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Phase::index`]; `None` out of range.
    pub fn from_index(i: u8) -> Option<Phase> {
        Phase::ALL.get(usize::from(i)).copied()
    }

    /// Stable snake_case name used in exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::TermProcess => "term_process",
            Phase::Cleaner => "cleaner",
            Phase::StopCheck => "stop_check",
            Phase::ShardSearch => "shard_search",
            Phase::RangeScan => "range_scan",
            Phase::HeapMerge => "heap_merge",
        }
    }
}

/// One closed span: `phase` ran from tick `start` to tick `end`
/// (nanoseconds under a wall clock, step numbers under a logical one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which phase.
    pub phase: Phase,
    /// Opening tick.
    pub start: u64,
    /// Closing tick (`≥ start`).
    pub end: u64,
}

/// A concurrent span sink scoped to one query. Disabled traces cost
/// one branch per instrumentation site.
pub struct QueryTrace {
    clock: ObsClock,
    spans: Option<Mutex<Vec<SpanEvent>>>,
}

impl QueryTrace {
    /// Creates a trace; `enabled = false` makes every operation a
    /// no-op behind one branch.
    pub fn new(enabled: bool, mode: ClockMode) -> Self {
        Self {
            clock: ObsClock::new(mode),
            spans: enabled.then(|| Mutex::new(Vec::new())),
        }
    }

    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Self::new(false, ClockMode::Wall)
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.spans.is_some()
    }

    /// The clock spans are stamped with.
    pub fn clock(&self) -> &ObsClock {
        &self.clock
    }

    /// Opens a span; it closes (and records) when the guard drops.
    /// When this thread has a flight-recorder ring installed, the
    /// open/close also mirror as `SpanBegin`/`SpanEnd` ring events
    /// (stamped by the *recorder's* clock), so `--emit-trace`
    /// timelines show phase slices without any per-algorithm wiring.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        SpanGuard {
            trace: self,
            phase,
            start: if self.spans.is_some() {
                crate::recorder::record(
                    crate::ring::EventKind::SpanBegin,
                    u64::from(phase.index()),
                );
                self.clock.tick()
            } else {
                0
            },
        }
    }

    /// Records an already-closed span.
    #[inline]
    pub fn record(&self, phase: Phase, start: u64, end: u64) {
        if let Some(spans) = &self.spans {
            spans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(SpanEvent { phase, start, end });
        }
    }

    /// Extracts the recorded spans in a canonical order (by start tick,
    /// then end, then phase). Under a logical clock ticks are unique,
    /// so the order — and therefore the whole vector — is deterministic
    /// for a deterministic schedule.
    pub fn into_spans(self) -> Option<Vec<SpanEvent>> {
        self.spans.map(|m| {
            let mut v = m
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            v.sort_by_key(|s| (s.start, s.end, s.phase));
            v
        })
    }
}

/// RAII guard returned by [`QueryTrace::span`].
pub struct SpanGuard<'a> {
    trace: &'a QueryTrace,
    phase: Phase,
    start: u64,
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if self.trace.spans.is_some() {
            let end = self.trace.clock.tick();
            self.trace.record(self.phase, self.start, end);
            crate::recorder::record(
                crate::ring::EventKind::SpanEnd,
                u64::from(self.phase.index()),
            );
        }
    }
}

/// Aggregate view of a span list: per-phase count and total ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The phase.
    pub phase: Phase,
    /// Spans recorded for it.
    pub count: u64,
    /// Summed `end - start` ticks (saturating).
    pub total_ticks: u64,
}

/// Folds spans into per-phase totals, in [`Phase::ALL`] order, keeping
/// only phases that occurred.
pub fn phase_totals(spans: &[SpanEvent]) -> Vec<PhaseTotal> {
    Phase::ALL
        .iter()
        .filter_map(|&phase| {
            let mut count = 0u64;
            let mut total = 0u64;
            for s in spans.iter().filter(|s| s.phase == phase) {
                count += 1;
                total = total.saturating_add(s.end.saturating_sub(s.start));
            }
            (count > 0).then_some(PhaseTotal {
                phase,
                count,
                total_ticks: total,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = QueryTrace::disabled();
        {
            let _g = t.span(Phase::Plan);
        }
        t.record(Phase::Cleaner, 0, 1);
        assert!(!t.enabled());
        assert!(t.into_spans().is_none());
    }

    #[test]
    fn spans_close_on_drop_and_sort() {
        let t = QueryTrace::new(true, ClockMode::Logical);
        {
            let _plan = t.span(Phase::Plan); // ticks 0..1
        }
        {
            let _seg = t.span(Phase::TermProcess); // ticks 2..3
        }
        let spans = t.into_spans().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Plan);
        assert_eq!((spans[0].start, spans[0].end), (0, 1));
        assert_eq!(spans[1].phase, Phase::TermProcess);
        assert_eq!((spans[1].start, spans[1].end), (2, 3));
    }

    #[test]
    fn logical_traces_replay_identically() {
        let run = || {
            let t = QueryTrace::new(true, ClockMode::Logical);
            for _ in 0..3 {
                let _g = t.span(Phase::Cleaner);
            }
            {
                let _g = t.span(Phase::HeapMerge);
            }
            t.into_spans().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn phase_totals_aggregate() {
        let spans = vec![
            SpanEvent {
                phase: Phase::TermProcess,
                start: 0,
                end: 5,
            },
            SpanEvent {
                phase: Phase::TermProcess,
                start: 6,
                end: 8,
            },
            SpanEvent {
                phase: Phase::HeapMerge,
                start: 9,
                end: 10,
            },
        ];
        let totals = phase_totals(&spans);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].phase, Phase::TermProcess);
        assert_eq!(totals[0].count, 2);
        assert_eq!(totals[0].total_ticks, 7);
        assert_eq!(totals[1].phase, Phase::HeapMerge);
    }

    #[test]
    fn concurrent_span_recording() {
        let t = std::sync::Arc::new(QueryTrace::new(true, ClockMode::Logical));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..50 {
                        let _g = t.span(Phase::TermProcess);
                    }
                });
            }
        });
        let t = std::sync::Arc::into_inner(t).unwrap();
        assert_eq!(t.into_spans().unwrap().len(), 200);
    }
}
