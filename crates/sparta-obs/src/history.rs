//! Bounded metrics-history ring: periodic snapshots of the server's
//! registries with exact overwrite accounting.
//!
//! A scrape shows *now*; saturation questions ("when did the queue
//! start backing up?") need *recently*. [`MetricsHistory`] is a
//! fixed-capacity ring of [`HistorySample`]s — each one a
//! [`ServerSnapshot`] + [`StageSnapshot`] + optional [`ExecSnapshot`]
//! stamped with a tick from an injected [`ObsClock`] — overwriting
//! oldest-first once full. Like the flight-recorder ring, overwrites
//! are accounted, never silent: `head` counts samples ever taken, so
//! [`MetricsHistory::overwritten`] is exact.
//!
//! [`start_sampler`] runs the ring from a background thread on a fixed
//! interval; tests (and deterministic harnesses) instead call
//! [`MetricsHistory::sample`] directly with a logical clock. The
//! sample path allocates nothing: the slot buffer is reserved at
//! construction and snapshots are inline value types (histogram
//! buckets are fixed arrays), enforced by the allocation-ban lint rule
//! on this file.

use crate::clock::ObsClock;
use crate::json::Json;
use crate::registry::ExecSnapshot;
use crate::server::{ServerSnapshot, StageSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Schema version stamped into history JSON documents.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// One point-in-time snapshot of the serving stack's registries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistorySample {
    /// This sample's position in the ever-growing sequence (0-based).
    pub seq: u64,
    /// Clock reading at sample time (ns under a wall clock, step count
    /// under a logical one).
    pub tick: u64,
    /// Admission counters at sample time.
    pub server: ServerSnapshot,
    /// Stage-latency histograms at sample time.
    pub stages: StageSnapshot,
    /// Worker-pool aggregate, when the scheduler exposes one.
    pub exec: Option<ExecSnapshot>,
}

struct HistoryInner {
    slots: Vec<HistorySample>,
    head: u64,
}

/// A fixed-capacity ring of [`HistorySample`]s. See the module docs.
pub struct MetricsHistory {
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

impl std::fmt::Debug for MetricsHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHistory")
            .field("capacity", &self.capacity)
            .field("head", &self.head())
            .finish()
    }
}

impl MetricsHistory {
    /// Builds a ring holding the last `capacity` samples (minimum 1).
    /// This is the ring's only allocation — the sample path writes into
    /// pre-reserved slots.
    pub fn new(capacity: usize) -> Arc<MetricsHistory> {
        let cap = capacity.max(1);
        // lint: allow(alloc): one-time slot reservation; `sample` only
        // pushes within this capacity or overwrites in place.
        let slots = Vec::with_capacity(cap);
        // lint: allow(alloc): one-time construction of the ring itself.
        Arc::new(MetricsHistory {
            capacity: cap,
            inner: Mutex::new(HistoryInner { slots, head: 0 }),
        })
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one sample, overwriting the oldest once full.
    /// Allocation-free: within-capacity pushes use the reserved buffer
    /// and overwrites assign in place.
    pub fn sample(
        &self,
        tick: u64,
        server: ServerSnapshot,
        stages: StageSnapshot,
        exec: Option<ExecSnapshot>,
    ) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = inner.head;
        let s = HistorySample {
            seq,
            tick,
            server,
            stages,
            exec,
        };
        if inner.slots.len() < self.capacity {
            inner.slots.push(s);
        } else {
            let idx = (seq % self.capacity as u64) as usize;
            inner.slots[idx] = s;
        }
        inner.head = seq + 1;
    }

    /// Samples ever taken (monotone; not bounded by capacity).
    pub fn head(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .head
    }

    /// Samples currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .slots
            .len()
    }

    /// Whether nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many samples were overwritten (lost off the tail) — exact,
    /// derived from the monotone head counter.
    pub fn overwritten(&self) -> u64 {
        self.head().saturating_sub(self.capacity as u64)
    }

    /// The resident samples, oldest first.
    pub fn samples(&self) -> Vec<HistorySample> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // lint: allow(alloc): read-side copy for consumers; the sample
        // path above never runs this.
        let mut out = Vec::with_capacity(inner.slots.len());
        if inner.slots.len() < self.capacity {
            out.extend(inner.slots.iter().cloned());
        } else {
            let split = (inner.head % self.capacity as u64) as usize;
            out.extend(inner.slots[split..].iter().cloned());
            out.extend(inner.slots[..split].iter().cloned());
        }
        out
    }

    /// Serializes the resident history (oldest first) with overwrite
    /// accounting — the `/debug/history` document.
    pub fn to_json(&self) -> Json {
        let samples = self.samples();
        // lint: allow(alloc): rendering, not the sample path.
        let rows: Vec<Json> = samples.iter().map(sample_json).collect();
        Json::obj()
            .with("schema_version", HISTORY_SCHEMA_VERSION)
            .with("capacity", self.capacity as u64)
            .with("samples_taken", self.head())
            .with("overwritten", self.overwritten())
            .with("samples", Json::Arr(rows))
    }
}

fn sample_json(s: &HistorySample) -> Json {
    let stages: Vec<Json> = s
        .stages
        .stages()
        .iter()
        .map(|(name, h)| {
            Json::obj()
                .with("stage", *name)
                .with("count", h.count)
                .with("sum_ns", h.sum)
        })
        .collect(); // lint: allow(alloc): rendering, not the sample path.
    let mut row = Json::obj()
        .with("seq", s.seq)
        .with("tick", s.tick)
        .with(
            "server",
            Json::obj()
                .with("attempts", s.server.attempts())
                .with("accepted", s.server.accepted)
                .with("queued", s.server.queued)
                .with("shed", s.server.shed)
                .with("abandoned", s.server.abandoned)
                .with("completed", s.server.completed)
                .with("queue_depth_highwater", s.server.queue_depth_highwater)
                .with("in_flight_highwater", s.server.in_flight_highwater),
        )
        .with("stages", Json::Arr(stages))
        .with(
            "end_to_end",
            Json::obj()
                .with("count", s.stages.end_to_end.count)
                .with("sum_ns", s.stages.end_to_end.sum),
        );
    if let Some(e) = &s.exec {
        row = row.with(
            "exec",
            Json::obj()
                .with("workers", e.workers)
                .with("jobs_run", e.jobs_run)
                .with("busy_ns", e.busy_ns)
                .with("idle_ns", e.idle_ns)
                .with("idle_ratio", e.idle_ratio())
                .with("queue_depth_highwater", e.queue_depth_highwater),
        );
    }
    row
}

/// Stops (and joins) the sampler thread when dropped or via
/// [`SamplerHandle::stop`].
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Signals the thread and joins it. Idempotent via `Option`.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // ordering: plain stop flag, Relaxed store (model: server_lifecycle)
        // — the only obligation is eventual visibility to the polling
        // thread, and the join below is the final synchronization
        // point, exactly the stop-flag pattern of the accept loops.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a thread that samples `history` every `interval`: each round
/// it reads `source` for the current snapshots and stamps them with
/// `clock`. Pacing uses `thread::sleep` (the sampler is observability,
/// not algorithm code); timestamps come from the injected clock so a
/// logical-clock history is replayable.
pub fn start_sampler<F>(
    history: Arc<MetricsHistory>,
    clock: Arc<ObsClock>,
    interval: Duration,
    source: F,
) -> SamplerHandle
where
    F: Fn() -> (ServerSnapshot, StageSnapshot, Option<ExecSnapshot>) + Send + 'static,
{
    // lint: allow(alloc): one-time construction of the stop flag.
    let stop = Arc::new(AtomicBool::new(false));
    // lint: allow(alloc): one-time clone at construction.
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("sparta-metrics-sampler".into()) // lint: allow(alloc): one-time thread name.
        .spawn(move || {
            // ordering: stop-flag poll, Relaxed (model: server_lifecycle)
            // — see the matching store in SamplerHandle::shutdown.
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                // ordering: re-check, Relaxed (model: server_lifecycle) —
                // a stop during the sleep skips the final sample.
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                let (server, stages, exec) = source();
                history.sample(clock.tick(), server, stages, exec);
            }
        })
        .expect("spawn metrics sampler");
    SamplerHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;
    use crate::metrics::HistogramSnapshot;

    fn sample_n(h: &MetricsHistory, n: u64) {
        for i in 0..n {
            let server = ServerSnapshot {
                accepted: i,
                completed: i,
                ..ServerSnapshot::default()
            };
            h.sample(i * 10, server, StageSnapshot::default(), None);
        }
    }

    #[test]
    fn fills_then_overwrites_oldest_with_exact_accounting() {
        let h = MetricsHistory::new(4);
        sample_n(&h, 3);
        assert_eq!(h.len(), 3);
        assert_eq!(h.overwritten(), 0);
        sample_n_more(&h, 3, 4);
        assert_eq!(h.len(), 4);
        assert_eq!(h.head(), 7);
        assert_eq!(h.overwritten(), 3, "exactly head - capacity lost");
        let got = h.samples();
        let seqs: Vec<u64> = got.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [3, 4, 5, 6], "oldest-first, newest retained");
    }

    fn sample_n_more(h: &MetricsHistory, start: u64, n: u64) {
        for i in start..start + n {
            h.sample(
                i * 10,
                ServerSnapshot::default(),
                StageSnapshot::default(),
                None,
            );
        }
    }

    #[test]
    fn capacity_minimum_is_one() {
        let h = MetricsHistory::new(0);
        assert_eq!(h.capacity(), 1);
        sample_n(&h, 3);
        assert_eq!(h.len(), 1);
        assert_eq!(h.samples()[0].seq, 2);
    }

    #[test]
    fn json_document_carries_accounting_and_rows() {
        let h = MetricsHistory::new(2);
        let stages = StageSnapshot {
            execute: HistogramSnapshot {
                count: 5,
                sum: 500,
                ..HistogramSnapshot::default()
            },
            ..StageSnapshot::default()
        };
        h.sample(7, ServerSnapshot::default(), stages, None);
        let exec = ExecSnapshot {
            workers: 2,
            busy_ns: 80,
            idle_ns: 20,
            ..ExecSnapshot::default()
        };
        h.sample(
            9,
            ServerSnapshot::default(),
            StageSnapshot::default(),
            Some(exec),
        );
        let doc = h.to_json();
        assert_eq!(doc.get("capacity").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("samples_taken").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("overwritten").and_then(Json::as_f64), Some(0.0));
        let rows = doc.get("samples").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        let stages0 = rows[0].get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages0.len(), 4);
        assert!(rows[0].get("exec").is_none());
        let e1 = rows[1].get("exec").expect("exec block present");
        assert_eq!(e1.get("idle_ratio").and_then(Json::as_f64), Some(0.2));
    }

    #[test]
    fn sampler_thread_samples_and_stops_cleanly() {
        let h = MetricsHistory::new(8);
        let clock = Arc::new(ObsClock::new(ClockMode::Logical));
        let handle = start_sampler(Arc::clone(&h), clock, Duration::from_millis(1), || {
            (ServerSnapshot::default(), StageSnapshot::default(), None)
        });
        // Wait until at least two samples landed (bounded).
        for _ in 0..500 {
            if h.head() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(h.head() >= 2, "sampler must make progress");
        handle.stop();
        let after = h.head();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(h.head(), after, "no samples after stop+join");
    }
}
