//! Flight-recorder export: Chrome trace-event JSON and text dumps.
//!
//! [`chrome_trace`] turns a [`FlightRecorder`]'s rings into the Chrome
//! trace-event format (the `{"traceEvents": [...]}` object form), so a
//! recording loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev). Per worker it emits:
//!
//! - `"job"` complete slices (`ph: "X"`) from `JobStart`/`JobEnd`
//!   pairs,
//! - `"park"` slices from `Park`/`Unpark` pairs,
//! - `"queue_wait"` *derived* slices — the gap between a worker
//!   finishing a job (or waking from a park) and starting its next job,
//! - `"lock_wait"` slices from `StripeWait` events (timestamped at
//!   acquisition; the slice is back-dated by the waited ticks),
//! - phase-named slices from `SpanBegin`/`SpanEnd` pairs,
//! - instant events (`ph: "i"`) for queue pushes/pops, cyclic
//!   requeues, and heap-trace score marks.
//!
//! Timestamps: the trace `ts`/`dur` fields are microseconds. Under a
//! wall clock, nanosecond ticks are divided by 1000 (fractional `ts`
//! is valid in the format); under a logical clock, ticks are emitted
//! verbatim as integers — the timeline is then in "steps", and because
//! the `Json` model preserves insertion order and integer formatting,
//! two recordings of the same deterministic schedule render
//! byte-identical JSON.
//!
//! [`dump_text`] is the stall watchdog's human-readable form: every
//! ring's tail, newest last, with drop accounting.

use crate::json::Json;
use crate::recorder::FlightRecorder;
use crate::ring::{Event, EventKind};
use crate::span::Phase;
use crate::ClockMode;
use std::fmt::Write as _;

/// Schema version stamped into (and required from) trace documents.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// How many trailing events [`dump_text`] prints per worker.
const DUMP_TAIL: usize = 48;

fn ts_json(mode: ClockMode, ticks: u64) -> Json {
    match mode {
        // Logical ticks are emitted verbatim: exact integers keep the
        // rendering byte-deterministic.
        ClockMode::Logical => Json::U64(ticks),
        // Wall ticks are nanoseconds; the trace format wants µs.
        ClockMode::Wall => Json::F64(ticks as f64 / 1000.0),
    }
}

fn slice(mode: ClockMode, name: &str, tid: u32, ts: u64, dur: u64, args: Json) -> Json {
    Json::obj()
        .with("name", name)
        .with("ph", "X")
        .with("pid", 1u64)
        .with("tid", u64::from(tid))
        .with("ts", ts_json(mode, ts))
        .with("dur", ts_json(mode, dur))
        .with("args", args)
}

fn instant(mode: ClockMode, name: &str, tid: u32, ts: u64, payload: u64) -> Json {
    Json::obj()
        .with("name", name)
        .with("ph", "i")
        .with("s", "t")
        .with("pid", 1u64)
        .with("tid", u64::from(tid))
        .with("ts", ts_json(mode, ts))
        .with("args", Json::obj().with("payload", payload))
}

fn span_name(payload: u64) -> &'static str {
    u8::try_from(payload)
        .ok()
        .and_then(Phase::from_index)
        .map(|p| p.as_str())
        .unwrap_or("span")
}

/// Converts one worker's event stream into trace events, appending to
/// `out`. Returns nothing; pairing state is local to the worker.
fn worker_events(mode: ClockMode, tid: u32, events: &[Event], out: &mut Vec<Json>) {
    let mut job_start: Vec<(u64, u64)> = Vec::new(); // (ts, payload)
    let mut park_start: Option<u64> = None;
    let mut span_start: Vec<(u64, u64)> = Vec::new(); // (phase, ts)
    let mut idle_since: Option<u64> = None; // set by JobEnd / Unpark
    for e in events {
        match e.kind {
            EventKind::JobStart => {
                if let Some(prev) = idle_since.take() {
                    if e.ts > prev {
                        let args = Json::obj();
                        out.push(slice(mode, "queue_wait", tid, prev, e.ts - prev, args));
                    }
                }
                job_start.push((e.ts, e.payload));
            }
            EventKind::JobEnd => {
                if let Some((start, outstanding)) = job_start.pop() {
                    let args = Json::obj()
                        .with("outstanding_at_start", outstanding)
                        .with("panicked", e.payload != 0);
                    out.push(slice(mode, "job", tid, start, e.ts - start, args));
                }
                idle_since = Some(e.ts);
            }
            EventKind::Park => park_start = Some(e.ts),
            EventKind::Unpark => {
                if let Some(start) = park_start.take() {
                    out.push(slice(mode, "park", tid, start, e.ts - start, Json::obj()));
                }
                idle_since = Some(e.ts);
            }
            EventKind::StripeWait => {
                let (stripe, waited) = crate::ring::unpack_wait(e.payload);
                let args = Json::obj()
                    .with("waited", waited)
                    .with("stripe", u64::from(stripe));
                let start = e.ts.saturating_sub(waited);
                out.push(slice(mode, "lock_wait", tid, start, waited, args));
            }
            EventKind::SpanBegin => span_start.push((e.payload, e.ts)),
            EventKind::SpanEnd => {
                if let Some(pos) = span_start.iter().rposition(|(p, _)| *p == e.payload) {
                    let (_, start) = span_start.remove(pos);
                    let args = Json::obj().with("phase", e.payload);
                    out.push(slice(
                        mode,
                        span_name(e.payload),
                        tid,
                        start,
                        e.ts - start,
                        args,
                    ));
                }
            }
            EventKind::QueuePush
            | EventKind::QueuePop
            | EventKind::Requeue
            | EventKind::ScoreMark => {
                out.push(instant(mode, e.kind.as_str(), tid, e.ts, e.payload));
            }
        }
    }
}

/// Builds the Chrome trace-event document for everything recorded so
/// far. Deterministic: workers ascending, ring order within a worker,
/// derived slices emitted at their closing event's position.
pub fn chrome_trace(rec: &FlightRecorder) -> Json {
    let mode = rec.mode();
    let mut trace_events: Vec<Json> = Vec::new();
    trace_events.push(
        Json::obj()
            .with("name", "process_name")
            .with("ph", "M")
            .with("pid", 1u64)
            .with("args", Json::obj().with("name", "sparta")),
    );
    let mut skipped_reads = 0u64;
    for w in 0..rec.worker_count() {
        let ring = rec.ring(w);
        let mut events = Vec::with_capacity(ring.len());
        skipped_reads += ring.for_each(|e| events.push(e));
        if events.is_empty() {
            continue;
        }
        let tid = ring.worker();
        trace_events.push(
            Json::obj()
                .with("name", "thread_name")
                .with("ph", "M")
                .with("pid", 1u64)
                .with("tid", u64::from(tid))
                .with("args", Json::obj().with("name", format!("worker {tid}"))),
        );
        worker_events(mode, tid, &events, &mut trace_events);
    }
    let mode_str = match mode {
        ClockMode::Wall => "wall",
        ClockMode::Logical => "logical",
    };
    Json::obj()
        .with("schema_version", TRACE_SCHEMA_VERSION)
        .with("clock", mode_str)
        .with("workers", rec.worker_count() as u64)
        .with("total_events", rec.total_events())
        .with("dropped_events", rec.dropped_events())
        .with("skipped_reads", skipped_reads)
        .with("displayTimeUnit", "ms")
        .with("traceEvents", Json::Arr(trace_events))
}

/// [`chrome_trace`] rendered compactly (the form `--emit-trace`
/// writes; byte-deterministic under a logical clock).
pub fn chrome_trace_string(rec: &FlightRecorder) -> String {
    chrome_trace(rec).to_string()
}

fn require_num(ev: &Json, key: &str, what: &str) -> Result<(), String> {
    ev.get(key)
        .and_then(Json::as_f64)
        .map(|_| ())
        .ok_or_else(|| format!("{what}: missing numeric `{key}`"))
}

/// Validates a trace document produced by [`chrome_trace`]: parses the
/// JSON, checks the envelope (schema version, clock, drop accounting)
/// and every trace event's required fields for its phase type.
pub fn validate_trace_json(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != TRACE_SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} != {TRACE_SCHEMA_VERSION}"
        ));
    }
    match doc.get("clock").and_then(Json::as_str) {
        Some("wall") | Some("logical") => {}
        other => return Err(format!("clock must be wall|logical, got {other:?}")),
    }
    for key in ["workers", "total_events", "dropped_events", "skipped_reads"] {
        require_num(&doc, key, "envelope")?;
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut non_meta = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what}: missing `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what} ({name}): missing `ph`"))?;
        require_num(ev, "pid", &what)?;
        if ph == "M" {
            continue;
        }
        non_meta += 1;
        require_num(ev, "tid", &what)?;
        require_num(ev, "ts", &what)?;
        if ph == "X" {
            require_num(ev, "dur", &what)?;
        }
    }
    if non_meta == 0 {
        return Err("trace holds no events beyond metadata".to_string());
    }
    Ok(())
}

/// Renders every ring's tail as indented text — the stall watchdog's
/// dump format. Newest events last; drop accounting per worker.
pub fn dump_text(rec: &FlightRecorder) -> String {
    let mode = match rec.mode() {
        ClockMode::Wall => "wall",
        ClockMode::Logical => "logical",
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: {} workers, {} events recorded, {} overwritten, clock={}",
        rec.worker_count(),
        rec.total_events(),
        rec.dropped_events(),
        mode,
    );
    for w in 0..rec.worker_count() {
        let ring = rec.ring(w);
        let mut events = Vec::with_capacity(ring.len());
        let skipped = ring.for_each(|e| events.push(e));
        let _ = writeln!(
            out,
            "  worker {}: {} events ({} overwritten, {} raced reads)",
            ring.worker(),
            ring.head(),
            ring.dropped_events(),
            skipped,
        );
        let tail = events.len().saturating_sub(DUMP_TAIL);
        if tail > 0 {
            let _ = writeln!(out, "    ... {tail} earlier events elided ...");
        }
        for e in &events[tail..] {
            let _ = writeln!(
                out,
                "    t={:>12} {:<12} payload={}",
                e.ts,
                e.kind.as_str(),
                e.payload,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::record;

    fn sample_recorder() -> std::sync::Arc<FlightRecorder> {
        let rec = FlightRecorder::new(2, 64, ClockMode::Logical);
        {
            let _g = rec.install(0);
            record(EventKind::QueuePush, 1);
            record(EventKind::QueuePop, 0);
            record(EventKind::JobStart, 1);
            record(EventKind::SpanBegin, 0);
            record(EventKind::SpanEnd, 0);
            record(EventKind::JobEnd, 0);
            record(EventKind::JobStart, 1);
            record(EventKind::JobEnd, 0);
            record(EventKind::Park, 0);
            record(EventKind::Unpark, 0);
            record(EventKind::StripeWait, 3);
        }
        {
            let _g = rec.install(1);
            record(EventKind::JobStart, 1);
            record(EventKind::JobEnd, 0);
        }
        rec
    }

    fn names(doc: &Json) -> Vec<String> {
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|e| e.get("name").and_then(Json::as_str).unwrap().to_string())
            .collect()
    }

    #[test]
    fn emits_job_park_queue_wait_and_lock_wait() {
        let rec = sample_recorder();
        let doc = chrome_trace(&rec);
        let names = names(&doc);
        assert!(names.iter().filter(|n| *n == "job").count() >= 3);
        assert!(names.contains(&"park".to_string()));
        assert!(
            names.contains(&"queue_wait".to_string()),
            "gap between job end and next job start must derive a slice: {names:?}"
        );
        assert!(names.contains(&"lock_wait".to_string()));
        assert!(names.contains(&"plan".to_string()), "phase 0 span named");
        assert!(names.contains(&"queue_push".to_string()));
    }

    #[test]
    fn trace_validates_and_roundtrips() {
        let rec = sample_recorder();
        let text = chrome_trace_string(&rec);
        validate_trace_json(&text).expect("own trace must validate");
        assert!(validate_trace_json("{}").is_err());
        assert!(validate_trace_json("not json").is_err());
        let empty = chrome_trace(&FlightRecorder::new(1, 8, ClockMode::Logical));
        assert!(
            validate_trace_json(&empty.to_string()).is_err(),
            "a trace with no events must not validate"
        );
    }

    #[test]
    fn identical_recordings_render_byte_identical() {
        let a = chrome_trace_string(&sample_recorder());
        let b = chrome_trace_string(&sample_recorder());
        assert_eq!(a, b);
    }

    #[test]
    fn lock_wait_is_backdated() {
        let rec = sample_recorder();
        let doc = chrome_trace(&rec);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let lw = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("lock_wait"))
            .unwrap();
        let ts = lw.get("ts").and_then(Json::as_f64).unwrap();
        let dur = lw.get("dur").and_then(Json::as_f64).unwrap();
        assert_eq!(dur, 3.0);
        assert!(ts >= 0.0);
    }

    #[test]
    fn dump_text_accounts_and_lists_tail() {
        let rec = sample_recorder();
        let dump = dump_text(&rec);
        assert!(dump.contains("2 workers"));
        assert!(dump.contains("stripe_wait"));
        assert!(dump.contains("park"));
        assert!(dump.contains("worker 0"));
        assert!(dump.contains("worker 1"));
    }
}
