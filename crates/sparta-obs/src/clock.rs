//! Wall-clock vs. logical-step time sources.
//!
//! Wall-clock timestamps make traces comparable to latency numbers but
//! differ between runs. Under the `DeterministicExecutor` a replayed
//! schedule executes the *same events in the same order*, so a clock
//! that simply counts events produces bit-identical traces across
//! replays of the same seed — that is [`ClockMode::Logical`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which time source a trace records against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockMode {
    /// Nanoseconds since the clock (≈ the query) started. The default;
    /// comparable to measured latencies but run-dependent.
    #[default]
    Wall,
    /// A monotonic event counter: every [`ObsClock::tick`] returns the
    /// next integer. Deterministic under deterministic schedules.
    Logical,
}

/// A query-scoped time source handed to sinks at construction.
#[derive(Debug)]
pub enum ObsClock {
    /// Wall clock anchored at creation.
    Wall(Instant),
    /// Logical step counter.
    Logical(AtomicU64),
}

impl ObsClock {
    /// Creates a clock of the given mode, anchored now / at step 0.
    pub fn new(mode: ClockMode) -> Self {
        match mode {
            ClockMode::Wall => ObsClock::Wall(Instant::now()),
            ClockMode::Logical => ObsClock::Logical(AtomicU64::new(0)),
        }
    }

    /// The mode this clock was created with.
    pub fn mode(&self) -> ClockMode {
        match self {
            ObsClock::Wall(_) => ClockMode::Wall,
            ObsClock::Logical(_) => ClockMode::Logical,
        }
    }

    /// Reads the clock: elapsed nanoseconds (wall) or the next step
    /// number (logical — each call advances the counter, so ticks are
    /// unique and totally ordered).
    #[inline]
    pub fn tick(&self) -> u64 {
        match self {
            ObsClock::Wall(start) => start.elapsed().as_nanos() as u64,
            ObsClock::Logical(steps) => steps.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A tick rendered as a [`Duration`] — nanoseconds under
    /// [`ClockMode::Wall`], step count (as ns) under
    /// [`ClockMode::Logical`], so downstream consumers keep one type.
    #[inline]
    pub fn tick_duration(&self) -> Duration {
        Duration::from_nanos(self.tick())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = ObsClock::new(ClockMode::Wall);
        let a = c.tick();
        let b = c.tick();
        assert!(b >= a);
        assert_eq!(c.mode(), ClockMode::Wall);
    }

    #[test]
    fn logical_clock_counts_steps() {
        let c = ObsClock::new(ClockMode::Logical);
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick_duration(), Duration::from_nanos(2));
        assert_eq!(c.mode(), ClockMode::Logical);
    }

    #[test]
    fn logical_clocks_replay_identically() {
        let run = || {
            let c = ObsClock::new(ClockMode::Logical);
            (0..5).map(|_| c.tick()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
