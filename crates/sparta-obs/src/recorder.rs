//! The flight recorder: per-worker [`EventRing`]s plus the
//! thread-local plumbing that lets deep call sites record without
//! threading a recorder reference through every layer.
//!
//! A [`FlightRecorder`] is one ring per worker sharing one injected
//! [`ObsClock`]. Executors *install* a worker's ring into a thread
//! local for the duration of that worker's run (scoped by
//! [`RecorderGuard`]); instrumentation points anywhere below — the job
//! queue, `StripedMap`, phase spans — call the free functions
//! [`record`] / [`timed`], which no-op in a branch when no ring is
//! installed. The install discipline is what makes each ring SPSC:
//! only the thread a ring is installed on writes to it (sequential
//! re-installs, e.g. a deterministic executor multiplexing virtual
//! workers on one thread, are fine — there is never more than one
//! writer at a time).
//!
//! Everything on the record path is allocation-free (enforced by the
//! `alloc` lint rule); the construction-time allocations are the
//! annotated exceptions.

use crate::clock::{ClockMode, ObsClock};
use crate::ring::{pack_wait, EventKind, EventRing};
use std::cell::RefCell;
use std::sync::Arc;

/// One event ring per worker, sharing one clock. See the module docs.
pub struct FlightRecorder {
    rings: Box<[Arc<EventRing>]>,
    clock: Arc<ObsClock>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("workers", &self.rings.len())
            .field("total_events", &self.total_events())
            .finish()
    }
}

impl FlightRecorder {
    /// Builds a recorder with `workers` rings (minimum 1) of
    /// `capacity` events each, stamped by a fresh clock in `mode`.
    /// This is the only allocation in the recorder's lifetime.
    pub fn new(workers: usize, capacity: usize, mode: ClockMode) -> Arc<FlightRecorder> {
        // lint: allow(alloc): one-time construction of the clock, the
        // rings, and the recorder itself; the record path never
        // allocates.
        let clock = Arc::new(ObsClock::new(mode));
        // lint: allow(alloc): see above — construction only.
        let rings: Box<[Arc<EventRing>]> = (0..workers.max(1))
            .map(|w| Arc::new(EventRing::new(w as u32, capacity, Arc::clone(&clock)))) // lint: allow(alloc): construction only.
            .collect(); // lint: allow(alloc): construction only.
                        // lint: allow(alloc): see above — construction only.
        Arc::new(FlightRecorder { rings, clock })
    }

    /// Number of per-worker rings.
    pub fn worker_count(&self) -> usize {
        self.rings.len()
    }

    /// The ring for `worker` (indexed modulo the ring count, mirroring
    /// `ExecMetrics::worker`).
    pub fn ring(&self, worker: usize) -> &Arc<EventRing> {
        &self.rings[worker % self.rings.len()]
    }

    /// The shared clock all rings stamp with.
    pub fn clock(&self) -> &ObsClock {
        &self.clock
    }

    /// The clock's mode (wall or logical).
    pub fn mode(&self) -> ClockMode {
        self.clock.mode()
    }

    /// Total events recorded across all rings. Monotone — the stall
    /// watchdog polls this to detect quiet periods.
    pub fn total_events(&self) -> u64 {
        self.rings.iter().map(|r| r.head()).sum()
    }

    /// Total events overwritten (lost off ring tails) across workers.
    pub fn dropped_events(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped_events()).sum()
    }

    /// Total torn reads skipped by readers across all rings' lifetimes
    /// (the seqlock double-check failing against a concurrent writer).
    pub fn skipped_reads(&self) -> u64 {
        self.rings.iter().map(|r| r.skipped_reads()).sum()
    }

    /// Installs `worker`'s ring into this thread's slot; instrumentation
    /// below records into it until the guard drops (which restores the
    /// previously installed ring, so installs nest).
    #[must_use = "recording stops when the guard drops"]
    pub fn install(&self, worker: usize) -> RecorderGuard {
        install_ring(Arc::clone(self.ring(worker)))
    }
}

thread_local! {
    /// The ring the current thread records into, if any.
    static CURRENT: RefCell<Option<Arc<EventRing>>> = const { RefCell::new(None) };
}

/// Scopes a thread-local ring install; see [`FlightRecorder::install`].
#[must_use = "recording stops when the guard drops"]
pub struct RecorderGuard {
    prev: Option<Arc<EventRing>>,
}

/// Installs an explicit ring on this thread (the general form of
/// [`FlightRecorder::install`]).
pub fn install_ring(ring: Arc<EventRing>) -> RecorderGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ring));
    RecorderGuard { prev }
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Records an event into the current thread's installed ring; a cheap
/// no-op (one thread-local branch) when none is installed.
#[inline]
pub fn record(kind: EventKind, payload: u64) {
    CURRENT.with(|c| {
        if let Some(ring) = c.borrow().as_ref() {
            ring.record(kind, payload);
        }
    });
}

/// Whether this thread currently has a ring installed.
pub fn is_recording() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Runs `f`, recording its duration (in clock ticks) as a `kind` event
/// whose payload is the elapsed ticks. Used to time contended waits
/// (e.g. stripe-lock acquisition). When no ring is installed, `f` runs
/// untimed — no clock reads, so uninstrumented runs stay byte-identical.
#[inline]
pub fn timed<R>(kind: EventKind, f: impl FnOnce() -> R) -> R {
    let ring = CURRENT.with(|c| c.borrow().as_ref().map(Arc::clone));
    match ring {
        None => f(),
        Some(ring) => {
            let start = ring.tick();
            let out = f();
            let waited = ring.tick().saturating_sub(start);
            ring.record(kind, waited);
            out
        }
    }
}

/// Like [`timed`], but packs a contention-site index into the payload's
/// high bits ([`pack_wait`]) so aggregate profiles can attribute the
/// wait to the specific site (e.g. a `StripedMap` stripe) that blocked.
#[inline]
pub fn timed_tagged<R>(kind: EventKind, site: u16, f: impl FnOnce() -> R) -> R {
    let ring = CURRENT.with(|c| c.borrow().as_ref().map(Arc::clone));
    match ring {
        None => f(),
        Some(ring) => {
            let start = ring.tick();
            let out = f();
            let waited = ring.tick().saturating_sub(start);
            ring.record(kind, pack_wait(site, waited));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::unpack_wait;

    #[test]
    fn record_without_install_is_noop() {
        assert!(!is_recording());
        record(EventKind::Park, 0); // must not panic
    }

    #[test]
    fn install_scopes_and_nests() {
        let rec = FlightRecorder::new(2, 16, ClockMode::Logical);
        {
            let _g0 = rec.install(0);
            assert!(is_recording());
            record(EventKind::JobStart, 1);
            {
                let _g1 = rec.install(1);
                record(EventKind::JobStart, 2);
            }
            // Inner guard dropped: back on ring 0.
            record(EventKind::JobEnd, 3);
        }
        assert!(!is_recording());
        assert_eq!(rec.ring(0).head(), 2);
        assert_eq!(rec.ring(1).head(), 1);
        let mut payloads = Vec::new();
        rec.ring(0).for_each(|e| payloads.push(e.payload));
        assert_eq!(payloads, [1, 3]);
    }

    #[test]
    fn worker_index_wraps_like_exec_metrics() {
        let rec = FlightRecorder::new(2, 16, ClockMode::Logical);
        assert_eq!(rec.ring(5).worker(), 1);
        let _g = rec.install(4);
        record(EventKind::Unpark, 0);
        assert_eq!(rec.ring(0).head(), 1);
    }

    #[test]
    fn timed_records_wait_and_returns_value() {
        let rec = FlightRecorder::new(1, 16, ClockMode::Logical);
        let _g = rec.install(0);
        let v = timed(EventKind::StripeWait, || 42);
        assert_eq!(v, 42);
        let mut got = None;
        rec.ring(0).for_each(|e| got = Some(e));
        let e = got.unwrap();
        assert_eq!(e.kind, EventKind::StripeWait);
        assert_eq!(e.payload, 1, "two ticks bracket the closure");
    }

    #[test]
    fn timed_without_install_runs_plain() {
        assert_eq!(timed(EventKind::StripeWait, || 7), 7);
        assert_eq!(timed_tagged(EventKind::StripeWait, 5, || 7), 7);
    }

    #[test]
    fn timed_tagged_packs_site_into_payload() {
        let rec = FlightRecorder::new(1, 16, ClockMode::Logical);
        let _g = rec.install(0);
        let v = timed_tagged(EventKind::StripeWait, 42, || 9);
        assert_eq!(v, 9);
        let mut got = None;
        rec.ring(0).for_each(|e| got = Some(e));
        let e = got.unwrap();
        assert_eq!(e.kind, EventKind::StripeWait);
        let (site, waited) = unpack_wait(e.payload);
        assert_eq!(site, 42);
        assert_eq!(waited, 1, "two ticks bracket the closure");
    }

    #[test]
    fn totals_aggregate_rings() {
        let rec = FlightRecorder::new(2, 2, ClockMode::Logical);
        for w in 0..2 {
            let _g = rec.install(w);
            for i in 0..5 {
                record(EventKind::QueuePop, i);
            }
        }
        assert_eq!(rec.total_events(), 10);
        assert_eq!(rec.dropped_events(), 6, "each 2-slot ring lost 3");
    }
}
