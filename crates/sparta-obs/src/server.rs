//! Admission-control metrics for the query server.
//!
//! `sparta-server`'s admission controller reports every decision here:
//! how many queries were accepted straight into execution, parked in
//! the bounded wait queue, shed at the door, abandoned while waiting,
//! and completed. The counters are the same lock-free primitives the
//! executor registries use ([`Counter`] / [`MaxGauge`]), so recording a
//! decision costs one atomic RMW and a scrape is wait-free.
//!
//! The accounting invariant the admission tests pin on every explored
//! schedule: once all in-flight work has drained,
//!
//! ```text
//! accepted == completed
//! accepted + shed + abandoned == admission attempts
//! ```
//!
//! and no query is ever both shed and answered.

use crate::metrics::{Counter, MaxGauge};
use std::sync::Arc;

/// The query server's admission/scheduling registry.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Queries granted an execution slot (immediately or after queueing).
    pub accepted: Counter,
    /// Queries that entered the bounded wait queue (they are later
    /// counted as accepted or abandoned as well).
    pub queued: Counter,
    /// Queries rejected because both the in-flight budget and the wait
    /// queue were full.
    pub shed: Counter,
    /// Queued queries cancelled before they were granted a slot
    /// (client gone, wait budget exhausted).
    pub abandoned: Counter,
    /// Execution slots released (every accepted query eventually
    /// completes, panics included — slot release is RAII).
    pub completed: Counter,
    /// Deepest the wait queue has ever been.
    pub queue_depth_highwater: MaxGauge,
    /// Most queries ever executing concurrently.
    pub in_flight_highwater: MaxGauge,
}

impl ServerMetrics {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Point-in-time aggregate of every counter.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            accepted: self.accepted.get(),
            queued: self.queued.get(),
            shed: self.shed.get(),
            abandoned: self.abandoned.get(),
            completed: self.completed.get(),
            queue_depth_highwater: self.queue_depth_highwater.get(),
            in_flight_highwater: self.in_flight_highwater.get(),
        }
    }
}

/// A point-in-time copy of a [`ServerMetrics`] registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Queries granted an execution slot.
    pub accepted: u64,
    /// Queries that waited in the bounded queue.
    pub queued: u64,
    /// Queries rejected at admission.
    pub shed: u64,
    /// Queued queries cancelled before a grant.
    pub abandoned: u64,
    /// Execution slots released.
    pub completed: u64,
    /// Deepest the wait queue has ever been.
    pub queue_depth_highwater: u64,
    /// Most queries ever executing concurrently.
    pub in_flight_highwater: u64,
}

impl ServerSnapshot {
    /// Total admission attempts this snapshot accounts for.
    pub fn attempts(&self) -> u64 {
        self.accepted + self.shed + self.abandoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = ServerMetrics::new();
        m.accepted.incr();
        m.accepted.incr();
        m.queued.incr();
        m.shed.incr();
        m.abandoned.incr();
        m.completed.incr();
        m.queue_depth_highwater.observe(3);
        m.in_flight_highwater.observe(2);
        let s = m.snapshot();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.queued, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.queue_depth_highwater, 3);
        assert_eq!(s.in_flight_highwater, 2);
        assert_eq!(s.attempts(), 4);
    }
}
