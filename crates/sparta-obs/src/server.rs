//! Admission-control metrics and per-query stage decomposition for the
//! query server.
//!
//! `sparta-server`'s admission controller reports every decision here:
//! how many queries were accepted straight into execution, parked in
//! the bounded wait queue, shed at the door, abandoned while waiting,
//! and completed. The counters are the same lock-free primitives the
//! executor registries use ([`Counter`] / [`MaxGauge`]), so recording a
//! decision costs one atomic RMW and a scrape is wait-free.
//!
//! The accounting invariant the admission tests pin on every explored
//! schedule: once all in-flight work has drained,
//!
//! ```text
//! accepted == completed
//! accepted + shed + abandoned == admission attempts
//! ```
//!
//! and no query is ever both shed and answered.
//!
//! [`StageLatency`] decomposes each completed query's end-to-end
//! latency into the four stages of the request path — admission wait,
//! queue wait, execution, response write — each a log2-bucket
//! [`Histogram`], plus the end-to-end histogram itself. Stages are
//! disjoint sub-intervals of the end-to-end interval measured with one
//! monotone clock, so on every snapshot the stage sums *bound* the
//! end-to-end sum ([`StageSnapshot::bounds_end_to_end`]).

use crate::metrics::{Counter, Histogram, HistogramSnapshot, MaxGauge};
use std::sync::Arc;

/// The query server's admission/scheduling registry.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Queries granted an execution slot (immediately or after queueing).
    pub accepted: Counter,
    /// Queries that entered the bounded wait queue (they are later
    /// counted as accepted or abandoned as well).
    pub queued: Counter,
    /// Queries rejected because both the in-flight budget and the wait
    /// queue were full.
    pub shed: Counter,
    /// Queued queries cancelled before they were granted a slot
    /// (client gone, wait budget exhausted).
    pub abandoned: Counter,
    /// Execution slots released (every accepted query eventually
    /// completes, panics included — slot release is RAII).
    pub completed: Counter,
    /// Deepest the wait queue has ever been.
    pub queue_depth_highwater: MaxGauge,
    /// Most queries ever executing concurrently.
    pub in_flight_highwater: MaxGauge,
    /// Per-stage latency decomposition of completed queries.
    pub stages: StageLatency,
}

impl ServerMetrics {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Point-in-time aggregate of every counter.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            accepted: self.accepted.get(),
            queued: self.queued.get(),
            shed: self.shed.get(),
            abandoned: self.abandoned.get(),
            completed: self.completed.get(),
            queue_depth_highwater: self.queue_depth_highwater.get(),
            in_flight_highwater: self.in_flight_highwater.get(),
        }
    }
}

/// A point-in-time copy of a [`ServerMetrics`] registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Queries granted an execution slot.
    pub accepted: u64,
    /// Queries that waited in the bounded queue.
    pub queued: u64,
    /// Queries rejected at admission.
    pub shed: u64,
    /// Queued queries cancelled before a grant.
    pub abandoned: u64,
    /// Execution slots released.
    pub completed: u64,
    /// Deepest the wait queue has ever been.
    pub queue_depth_highwater: u64,
    /// Most queries ever executing concurrently.
    pub in_flight_highwater: u64,
}

impl ServerSnapshot {
    /// Total admission attempts this snapshot accounts for.
    pub fn attempts(&self) -> u64 {
        self.accepted + self.shed + self.abandoned
    }
}

/// Per-stage latency histograms for the server request path.
///
/// Every query that is admitted and answered records one observation
/// in each stage histogram (0 for stages it skipped, e.g. `queue_wait`
/// when a slot was free immediately) and one in `end_to_end`, so all
/// five counts advance in lockstep. Units are nanoseconds under a wall
/// clock and clock ticks under a logical clock — the recording side
/// injects the [`ObsClock`](crate::ObsClock), this registry just holds
/// the buckets.
#[derive(Debug, Default)]
pub struct StageLatency {
    /// Time from request entry to the admission decision (gate lock
    /// plus the accept/queue/shed choice).
    pub admission_wait: Histogram,
    /// Time parked in the bounded FIFO wait queue (0 when admitted
    /// straight into a free slot).
    pub queue_wait: Histogram,
    /// Time executing the search on the worker pool.
    pub execute: Histogram,
    /// Time writing the response frame back to the client.
    pub response_write: Histogram,
    /// Request entry to response fully written.
    pub end_to_end: Histogram,
}

impl StageLatency {
    /// Point-in-time copy of all five histograms.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            admission_wait: self.admission_wait.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            execute: self.execute.snapshot(),
            response_write: self.response_write.snapshot(),
            end_to_end: self.end_to_end.snapshot(),
        }
    }
}

/// A point-in-time copy of a [`StageLatency`] registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Admission-decision wait.
    pub admission_wait: HistogramSnapshot,
    /// FIFO wait-queue time.
    pub queue_wait: HistogramSnapshot,
    /// Search execution time.
    pub execute: HistogramSnapshot,
    /// Response serialization + socket write time.
    pub response_write: HistogramSnapshot,
    /// Whole request path.
    pub end_to_end: HistogramSnapshot,
}

impl StageSnapshot {
    /// The four stages in request-path order, with their exposition
    /// label — the single source of stage names for renderers,
    /// scrapers, and tests.
    pub fn stages(&self) -> [(&'static str, &HistogramSnapshot); 4] {
        [
            ("admission_wait", &self.admission_wait),
            ("queue_wait", &self.queue_wait),
            ("execute", &self.execute),
            ("response_write", &self.response_write),
        ]
    }

    /// Sum of the four stage sums (saturating).
    pub fn stage_sum(&self) -> u64 {
        self.stages()
            .iter()
            .fold(0u64, |acc, (_, h)| acc.saturating_add(h.sum))
    }

    /// The decomposition invariant: stages are disjoint sub-intervals
    /// of the end-to-end interval, so their sums can never exceed the
    /// end-to-end sum (scrapes racing writers may observe a stage
    /// increment before the matching end-to-end increment; quiescent
    /// snapshots satisfy this exactly).
    pub fn bounds_end_to_end(&self) -> bool {
        self.stage_sum() <= self.end_to_end.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = ServerMetrics::new();
        m.accepted.incr();
        m.accepted.incr();
        m.queued.incr();
        m.shed.incr();
        m.abandoned.incr();
        m.completed.incr();
        m.queue_depth_highwater.observe(3);
        m.in_flight_highwater.observe(2);
        let s = m.snapshot();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.queued, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.queue_depth_highwater, 3);
        assert_eq!(s.in_flight_highwater, 2);
        assert_eq!(s.attempts(), 4);
    }

    #[test]
    fn stage_sums_bound_end_to_end() {
        let m = ServerMetrics::new();
        // Two queries: stages are sub-intervals, e2e covers them plus
        // the gaps the decomposition does not attribute.
        for (adm, queue, exec, write, e2e) in [(5, 0, 100, 10, 130), (2, 40, 80, 5, 140)] {
            m.stages.admission_wait.record(adm);
            m.stages.queue_wait.record(queue);
            m.stages.execute.record(exec);
            m.stages.response_write.record(write);
            m.stages.end_to_end.record(e2e);
        }
        let st = m.stages.snapshot();
        assert_eq!(st.stage_sum(), 5 + 100 + 10 + 2 + 40 + 80 + 5);
        assert!(st.bounds_end_to_end());
        // All five histograms advance in lockstep.
        for (_, h) in st.stages() {
            assert_eq!(h.count, st.end_to_end.count);
        }
        assert_eq!(st.end_to_end.count, 2);
    }

    #[test]
    fn stage_bound_violation_is_detected() {
        let st = StageSnapshot {
            execute: HistogramSnapshot {
                count: 1,
                sum: 10,
                ..Default::default()
            },
            end_to_end: HistogramSnapshot {
                count: 1,
                sum: 9,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(!st.bounds_end_to_end());
    }
}
