//! Prometheus text-exposition rendering.
//!
//! Renders counters, gauges, and the log-bucketed histogram in the
//! [text exposition format] a Prometheus scraper accepts: `# HELP` /
//! `# TYPE` headers, optional `{label="value"}` pairs, and cumulative
//! `le`-labelled histogram buckets with `_sum` / `_count` series.
//!
//! [text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::registry::ExecSnapshot;
use crate::server::{ServerSnapshot, StageSnapshot};
use std::fmt::Write as _;

/// Builder for one text-exposition document.
#[derive(Debug, Default)]
pub struct PrometheusText {
    out: String,
}

impl PrometheusText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.sample(name, labels, &value.to_string());
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, labels, &format_f64(value));
    }

    /// Appends a histogram: cumulative `le` buckets plus `_sum` and
    /// `_count`. Empty trailing buckets are collapsed into the
    /// mandatory `le="+Inf"` bucket to keep the exposition small.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.header(name, help, "histogram");
        let last_used = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
            .min(HISTOGRAM_BUCKETS - 2);
        let mut cumulative = 0u64;
        for i in 0..=last_used {
            cumulative = cumulative.saturating_add(snap.buckets[i]);
            let le = bucket_upper_bound(i).to_string();
            self.sample_with_le(name, labels, &le, cumulative);
        }
        self.sample_with_le(name, labels, "+Inf", snap.count);
        self.sample(&format!("{name}_sum"), labels, &snap.sum.to_string());
        self.sample(&format!("{name}_count"), labels, &snap.count.to_string());
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.out
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        write_labels(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {value}");
    }

    fn sample_with_le(&mut self, name: &str, labels: &[(&str, &str)], le: &str, value: u64) {
        self.out.push_str(name);
        self.out.push_str("_bucket");
        write_labels(&mut self.out, labels, Some(le));
        let _ = writeln!(self.out, " {value}");
    }
}

fn write_labels(out: &mut String, labels: &[(&str, &str)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else {
        format!("{v}")
    }
}

/// Renders an executor snapshot as a full exposition document under the
/// `sparta_exec_*` metric namespace, labelled with `executor`.
pub fn exec_snapshot_text(executor: &str, snap: &ExecSnapshot) -> String {
    let labels: &[(&str, &str)] = &[("executor", executor)];
    let mut doc = PrometheusText::new();
    doc.counter(
        "sparta_exec_jobs_run_total",
        "Jobs executed by the executor's workers.",
        labels,
        snap.jobs_run,
    );
    doc.counter(
        "sparta_exec_jobs_panicked_total",
        "Jobs whose closure panicked (caught by the job queue).",
        labels,
        snap.jobs_panicked,
    );
    doc.counter(
        "sparta_exec_busy_nanoseconds_total",
        "Worker time spent running jobs.",
        labels,
        snap.busy_ns,
    );
    doc.counter(
        "sparta_exec_idle_nanoseconds_total",
        "Worker time spent waiting for work.",
        labels,
        snap.idle_ns,
    );
    doc.counter(
        "sparta_exec_queries_total",
        "Queries (job queues) run to completion.",
        labels,
        snap.queries_run,
    );
    doc.gauge(
        "sparta_exec_workers",
        "Worker threads contributing to this snapshot.",
        labels,
        snap.workers as f64,
    );
    doc.gauge(
        "sparta_exec_queue_depth_highwater",
        "Highest job-queue depth observed.",
        labels,
        snap.queue_depth_highwater as f64,
    );
    doc.gauge(
        "sparta_exec_idle_ratio",
        "Fraction of accounted worker time spent idle.",
        labels,
        snap.idle_ratio(),
    );
    doc.histogram(
        "sparta_exec_job_duration_nanoseconds",
        "Per-job execution time.",
        labels,
        &snap.job_ns,
    );
    doc.finish()
}

/// Renders an admission snapshot as a full exposition document under
/// the `sparta_server_*` metric namespace. The rendered counters carry
/// the accounting invariant: `sparta_server_admission_attempts_total`
/// always equals accepted + shed + abandoned.
pub fn server_snapshot_text(snap: &ServerSnapshot) -> String {
    let mut doc = PrometheusText::new();
    doc.counter(
        "sparta_server_admission_attempts_total",
        "Admission attempts (accepted + shed + abandoned).",
        &[],
        snap.attempts(),
    );
    doc.counter(
        "sparta_server_admission_accepted_total",
        "Queries granted an execution slot.",
        &[],
        snap.accepted,
    );
    doc.counter(
        "sparta_server_admission_queued_total",
        "Queries that waited in the bounded queue.",
        &[],
        snap.queued,
    );
    doc.counter(
        "sparta_server_admission_shed_total",
        "Queries rejected at admission.",
        &[],
        snap.shed,
    );
    doc.counter(
        "sparta_server_admission_abandoned_total",
        "Queued queries cancelled before a grant.",
        &[],
        snap.abandoned,
    );
    doc.counter(
        "sparta_server_completed_total",
        "Execution slots released.",
        &[],
        snap.completed,
    );
    doc.gauge(
        "sparta_server_queue_depth_highwater",
        "Deepest the wait queue has ever been.",
        &[],
        snap.queue_depth_highwater as f64,
    );
    doc.gauge(
        "sparta_server_in_flight_highwater",
        "Most queries ever executing concurrently.",
        &[],
        snap.in_flight_highwater as f64,
    );
    doc.finish()
}

/// Renders the per-stage latency decomposition: one histogram series
/// per stage (labelled `stage="..."`) plus the end-to-end histogram.
pub fn stage_snapshot_text(st: &StageSnapshot) -> String {
    let mut doc = PrometheusText::new();
    for (name, h) in st.stages() {
        doc.histogram(
            "sparta_server_stage_duration_nanoseconds",
            "Per-stage latency of completed queries.",
            &[("stage", name)],
            h,
        );
    }
    doc.histogram(
        "sparta_server_e2e_duration_nanoseconds",
        "End-to-end latency of completed queries.",
        &[],
        &st.end_to_end,
    );
    doc.finish()
}

/// Parses a text exposition document back into `(series, value)`
/// samples, where `series` is the metric name with its label set
/// verbatim (e.g. `foo_bucket{stage="execute",le="+Inf"}`). Comment
/// and blank lines are skipped; any other line that is not
/// `series value` is an error — this is the consumer-side check CI
/// runs against a live `/metrics` scrape.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", i + 1))?;
        if series.is_empty() {
            return Err(format!("line {}: empty series name", i + 1));
        }
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|e| format!("line {}: bad value {v:?}: {e}", i + 1))?,
        };
        samples.push((series.to_string(), value));
    }
    Ok(samples)
}

/// Looks up one series in parsed samples (exact match on name+labels).
pub fn sample_value(samples: &[(String, f64)], series: &str) -> Option<f64> {
    samples.iter().find(|(s, _)| s == series).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;
    use crate::registry::ExecMetrics;

    #[test]
    fn counter_and_gauge_render() {
        let mut doc = PrometheusText::new();
        doc.counter("reqs_total", "Requests.", &[("algo", "sparta")], 7);
        doc.gauge("depth", "Queue depth.", &[], 2.5);
        let text = doc.finish();
        assert!(text.contains("# TYPE reqs_total counter\n"));
        assert!(text.contains("reqs_total{algo=\"sparta\"} 7\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth 2.5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let mut doc = PrometheusText::new();
        doc.histogram("lat", "Latency.", &[], &h.snapshot());
        let text = doc.finish();
        // v=1 → bucket 1 (le=1); v=2,3 → bucket 2 (le=3); v=100 → le=127.
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"127\"} 4\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_sum 106\n"));
        assert!(text.contains("lat_count 4\n"));
        // Cumulative counts never decrease.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn label_values_escape() {
        let mut doc = PrometheusText::new();
        doc.counter("c", "help", &[("q", "a\"b\\c")], 1);
        assert!(doc.finish().contains("c{q=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn exec_snapshot_document_is_complete() {
        let m = ExecMetrics::new(2);
        m.worker(0).record_job(50, false);
        m.worker(1).record_job(150, true);
        m.worker(1).idle_ns.add(100);
        m.queue_depth_highwater.observe(4);
        m.queries_run.incr();
        let text = exec_snapshot_text("dedicated", &m.snapshot());
        for series in [
            "sparta_exec_jobs_run_total{executor=\"dedicated\"} 2",
            "sparta_exec_jobs_panicked_total{executor=\"dedicated\"} 1",
            "sparta_exec_busy_nanoseconds_total{executor=\"dedicated\"} 200",
            "sparta_exec_idle_nanoseconds_total{executor=\"dedicated\"} 100",
            "sparta_exec_queries_total{executor=\"dedicated\"} 1",
            "sparta_exec_workers{executor=\"dedicated\"} 2",
            "sparta_exec_queue_depth_highwater{executor=\"dedicated\"} 4",
            "sparta_exec_job_duration_nanoseconds_count{executor=\"dedicated\"} 2",
        ] {
            assert!(text.contains(series), "missing series: {series}\n{text}");
        }
        assert!(text.contains("sparta_exec_idle_ratio{executor=\"dedicated\"} 0.33"));
    }

    #[test]
    fn stage_document_labels_every_stage() {
        let stages = crate::server::StageLatency::default();
        stages.admission_wait.record(3);
        stages.queue_wait.record(0);
        stages.execute.record(100);
        stages.response_write.record(8);
        stages.end_to_end.record(120);
        let text = stage_snapshot_text(&stages.snapshot());
        for stage in ["admission_wait", "queue_wait", "execute", "response_write"] {
            let series =
                format!("sparta_server_stage_duration_nanoseconds_count{{stage=\"{stage}\"}} 1");
            assert!(text.contains(&series), "missing {series}\n{text}");
        }
        assert!(text.contains("sparta_server_e2e_duration_nanoseconds_sum 120\n"));
        assert!(text.contains("sparta_server_e2e_duration_nanoseconds_count 1\n"));
    }

    #[test]
    fn exposition_roundtrips_through_parser() {
        let stages = crate::server::StageLatency::default();
        stages.execute.record(100);
        stages.end_to_end.record(120);
        let text = stage_snapshot_text(&stages.snapshot());
        let samples = parse_exposition(&text).expect("well-formed exposition");
        assert_eq!(
            sample_value(
                &samples,
                "sparta_server_stage_duration_nanoseconds_sum{stage=\"execute\"}"
            ),
            Some(100.0)
        );
        assert_eq!(
            sample_value(
                &samples,
                "sparta_server_e2e_duration_nanoseconds_bucket{le=\"+Inf\"}"
            ),
            Some(1.0)
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("no_value_here\n").is_err());
        assert!(parse_exposition("series nan_is_fine NaNx\n").is_err());
        assert!(parse_exposition(" 7\n").is_err());
        // Comments and blanks are fine; +Inf parses.
        let ok = parse_exposition("# HELP x y\n\nx_bucket{le=\"+Inf\"} +Inf\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert!(ok[0].1.is_infinite());
    }

    #[test]
    fn parser_rejects_junk_values_and_reports_the_line() {
        // The value is everything after the *last* space, so trailing
        // junk lands in the value and fails the float parse.
        assert!(parse_exposition("a 1 2 3trailing\n").is_err());
        assert!(parse_exposition("a_total 1e\n").is_err());
        assert!(parse_exposition("a_total 0x10\n").is_err());
        // Errors carry the 1-based line number of the offender.
        let err = parse_exposition("ok_total 1\nbroken_total x\n").unwrap_err();
        assert!(err.contains("line 2"), "error should name line 2: {err}");
        // -Inf is a legal value, matching the renderer's gauges.
        let ok = parse_exposition("g -Inf\n").unwrap();
        assert_eq!(ok[0].1, f64::NEG_INFINITY);
        // NaN parses (a gauge can legitimately render it).
        let ok = parse_exposition("g NaN\n").unwrap();
        assert!(ok[0].1.is_nan());
    }

    #[test]
    fn sample_lookup_is_exact_on_name_and_label_set() {
        let samples = parse_exposition("reqs_total{algo=\"sparta\"} 7\nplain_total 3\n").unwrap();
        // A lookup missing the label set must not match the labelled
        // series, and a lookup inventing labels must not match the
        // bare one — the series string is the whole key.
        assert_eq!(sample_value(&samples, "reqs_total"), None);
        assert_eq!(
            sample_value(&samples, "reqs_total{algo=\"sparta\"}"),
            Some(7.0)
        );
        assert_eq!(sample_value(&samples, "reqs_total{algo=\"pbmw\"}"), None);
        assert_eq!(sample_value(&samples, "plain_total{algo=\"sparta\"}"), None);
        assert_eq!(sample_value(&samples, "plain_total"), Some(3.0));
        assert_eq!(sample_value(&samples, "absent_total"), None);
    }

    #[test]
    fn duplicate_series_are_preserved_and_lookup_takes_the_first() {
        // A scrape that concatenates two registries can repeat a metric
        // name; the parser must not silently drop or merge samples, and
        // the lookup contract is first-match (exposition order).
        let samples = parse_exposition("dup_total 1\ndup_total 2\n").unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(sample_value(&samples, "dup_total"), Some(1.0));
    }

    #[test]
    fn scraped_histogram_buckets_are_ordered_and_close_at_inf() {
        let h = Histogram::new();
        for v in [1u64, 5, 9, 1_000, 100_000] {
            h.record(v);
        }
        let mut doc = PrometheusText::new();
        doc.histogram(
            "scrape_lat",
            "Latency.",
            &[("stage", "execute")],
            &h.snapshot(),
        );
        let samples = parse_exposition(&doc.finish()).unwrap();
        let buckets: Vec<&(String, f64)> = samples
            .iter()
            .filter(|(s, _)| s.starts_with("scrape_lat_bucket{"))
            .collect();
        assert!(buckets.len() >= 2, "multiple buckets expected");
        assert!(
            buckets.windows(2).all(|w| w[0].1 <= w[1].1),
            "cumulative buckets must be non-decreasing in exposition order"
        );
        let last = buckets.last().unwrap();
        assert!(
            last.0.contains("le=\"+Inf\""),
            "the bucket series must close with +Inf, got {}",
            last.0
        );
        assert_eq!(
            Some(last.1),
            sample_value(&samples, "scrape_lat_count{stage=\"execute\"}"),
            "the +Inf bucket equals the sample count"
        );
    }
}
