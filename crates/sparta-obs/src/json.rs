//! A minimal JSON value model, encoder, and parser.
//!
//! The workspace has no serde (offline-shims policy), but the bench
//! harness must emit — and the CI smoke test must *validate* — the
//! `BENCH_*.json` trajectory files. This module implements exactly the
//! JSON subset those need: objects with ordered keys, arrays, strings
//! with escaping, `u64`/`f64` numbers, booleans, and null.
//!
//! Non-finite floats encode as `null` (JSON has no NaN/∞), so emitted
//! documents always parse.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; never rendered in E-notation).
    U64(u64),
    /// A float. Non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Builder-style insert; panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view (`U64` or finite `F64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with `indent` spaces per nesting level.
    pub fn to_pretty_string(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` round-trips f64 and never drops the
                    // fractional marker for integral values ("1.0").
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Renders compact JSON (`format!("{j}")` / `j.to_string()`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset and a reason.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates (only producible by hand-written
                            // input) map to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let j = Json::obj()
            .with("name", "smoke")
            .with("n", 3u64)
            .with("ratio", 0.5)
            .with("ok", true)
            .with("tags", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        assert_eq!(j.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(j.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(j.get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let j = Json::obj()
            .with("s", "a\"b\\c\nd")
            .with("i", u64::MAX)
            .with("f", 1.0)
            .with("none", Json::Null)
            .with("arr", Json::Arr(vec![Json::Bool(false), Json::F64(2.5)]));
        for text in [j.to_string(), j.to_pretty_string(2)] {
            let back = parse(&text).unwrap();
            assert_eq!(back, j, "failed roundtrip for {text}");
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        let text = Json::U64(big).to_string();
        assert_eq!(text, format!("{big}"));
        assert_eq!(parse(&text).unwrap(), Json::U64(big));
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("42 tail").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_document() {
        let j = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "xA"}"#).unwrap();
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].get("b"),
            Some(&Json::Null)
        );
        assert_eq!(j.get("c").unwrap().as_str(), Some("xA"));
    }
}
