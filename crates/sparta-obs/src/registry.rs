//! Per-worker metric registries, aggregated on scrape.
//!
//! Each executor worker owns a [`WorkerMetrics`] it records into
//! without any cross-worker coordination (every field is a lock-free
//! primitive and only that worker writes it, so there is not even
//! cache-line ping-pong). A scrape walks the workers and folds them
//! into one [`ExecSnapshot`].

use crate::metrics::{Counter, Histogram, HistogramSnapshot, MaxGauge};
use std::sync::Arc;

/// One worker thread's private registry.
#[derive(Debug, Default)]
pub struct WorkerMetrics {
    /// Jobs this worker executed (including panicked ones).
    pub jobs_run: Counter,
    /// Jobs whose closure panicked (caught by the job queue).
    pub jobs_panicked: Counter,
    /// Nanoseconds spent running jobs.
    pub busy_ns: Counter,
    /// Nanoseconds spent waiting for work.
    pub idle_ns: Counter,
    /// Per-job execution time in nanoseconds.
    pub job_ns: Histogram,
}

impl WorkerMetrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed job: its duration and whether it panicked.
    #[inline]
    pub fn record_job(&self, dur_ns: u64, panicked: bool) {
        self.jobs_run.incr();
        if panicked {
            self.jobs_panicked.incr();
        }
        self.busy_ns.add(dur_ns);
        self.job_ns.record(dur_ns);
    }
}

/// An executor's metric registry: one [`WorkerMetrics`] per worker
/// plus executor-wide gauges.
#[derive(Debug)]
pub struct ExecMetrics {
    workers: Vec<Arc<WorkerMetrics>>,
    /// Highest job-queue depth observed (per-query queues report their
    /// high-water here when the executor retires them).
    pub queue_depth_highwater: MaxGauge,
    /// Queries (job queues) this executor ran to completion.
    pub queries_run: Counter,
}

impl ExecMetrics {
    /// A registry for `workers` worker threads.
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(Self {
            workers: (0..workers.max(1))
                .map(|_| Arc::new(WorkerMetrics::new()))
                .collect(),
            queue_depth_highwater: MaxGauge::new(),
            queries_run: Counter::new(),
        })
    }

    /// Number of per-worker registries.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Worker `i`'s registry (`i` taken modulo the worker count, so
    /// any index addresses *some* registry).
    pub fn worker(&self, i: usize) -> &Arc<WorkerMetrics> {
        &self.workers[i % self.workers.len()]
    }

    /// Aggregates every worker registry into one snapshot.
    pub fn snapshot(&self) -> ExecSnapshot {
        let mut s = ExecSnapshot {
            workers: self.workers.len() as u64,
            queue_depth_highwater: self.queue_depth_highwater.get(),
            queries_run: self.queries_run.get(),
            ..Default::default()
        };
        for w in &self.workers {
            s.jobs_run = s.jobs_run.saturating_add(w.jobs_run.get());
            s.jobs_panicked = s.jobs_panicked.saturating_add(w.jobs_panicked.get());
            s.busy_ns = s.busy_ns.saturating_add(w.busy_ns.get());
            s.idle_ns = s.idle_ns.saturating_add(w.idle_ns.get());
            s.job_ns.merge(&w.job_ns.snapshot());
        }
        s
    }
}

/// A point-in-time aggregate of an [`ExecMetrics`] registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecSnapshot {
    /// Worker threads contributing to this snapshot.
    pub workers: u64,
    /// Total jobs executed.
    pub jobs_run: u64,
    /// Jobs whose closure panicked.
    pub jobs_panicked: u64,
    /// Total nanoseconds spent running jobs.
    pub busy_ns: u64,
    /// Total nanoseconds spent waiting for work.
    pub idle_ns: u64,
    /// Highest job-queue depth observed.
    pub queue_depth_highwater: u64,
    /// Queries run to completion.
    pub queries_run: u64,
    /// Per-job latency distribution (nanoseconds).
    pub job_ns: HistogramSnapshot,
}

impl ExecSnapshot {
    /// Fraction of accounted worker time spent idle, in `[0, 1]`
    /// (0 when no time has been accounted).
    pub fn idle_ratio(&self) -> f64 {
        let total = self.busy_ns.saturating_add(self.idle_ns);
        if total == 0 {
            0.0
        } else {
            self.idle_ns as f64 / total as f64
        }
    }

    /// Folds another snapshot into this one (saturating).
    pub fn merge(&mut self, other: &ExecSnapshot) {
        self.workers = self.workers.max(other.workers);
        self.jobs_run = self.jobs_run.saturating_add(other.jobs_run);
        self.jobs_panicked = self.jobs_panicked.saturating_add(other.jobs_panicked);
        self.busy_ns = self.busy_ns.saturating_add(other.busy_ns);
        self.idle_ns = self.idle_ns.saturating_add(other.idle_ns);
        self.queue_depth_highwater = self.queue_depth_highwater.max(other.queue_depth_highwater);
        self.queries_run = self.queries_run.saturating_add(other.queries_run);
        self.job_ns.merge(&other.job_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worker_records_aggregate_on_scrape() {
        let m = ExecMetrics::new(3);
        m.worker(0).record_job(100, false);
        m.worker(1).record_job(200, true);
        m.worker(2).record_job(300, false);
        m.queue_depth_highwater.observe(17);
        m.queries_run.incr();
        let s = m.snapshot();
        assert_eq!(s.workers, 3);
        assert_eq!(s.jobs_run, 3);
        assert_eq!(s.jobs_panicked, 1);
        assert_eq!(s.busy_ns, 600);
        assert_eq!(s.queue_depth_highwater, 17);
        assert_eq!(s.queries_run, 1);
        assert_eq!(s.job_ns.count, 3);
    }

    #[test]
    fn idle_ratio_bounds() {
        let mut s = ExecSnapshot::default();
        assert_eq!(s.idle_ratio(), 0.0);
        s.busy_ns = 75;
        s.idle_ns = 25;
        assert!((s.idle_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn worker_index_wraps() {
        let m = ExecMetrics::new(2);
        m.worker(5).record_job(1, false); // 5 % 2 == 1
        assert_eq!(m.worker(1).jobs_run.get(), 1);
    }

    #[test]
    fn snapshot_merge_combines() {
        let a_reg = ExecMetrics::new(2);
        a_reg.worker(0).record_job(10, false);
        let b_reg = ExecMetrics::new(4);
        b_reg.worker(0).record_job(20, true);
        b_reg.queue_depth_highwater.observe(9);
        let mut a = a_reg.snapshot();
        a.merge(&b_reg.snapshot());
        assert_eq!(a.workers, 4);
        assert_eq!(a.jobs_run, 2);
        assert_eq!(a.jobs_panicked, 1);
        assert_eq!(a.queue_depth_highwater, 9);
    }
}
