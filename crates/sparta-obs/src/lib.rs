//! Observability substrate: query tracing spans, lock-free metrics,
//! and machine-readable exporters.
//!
//! The paper's evaluation (§5) reasons about latency distributions,
//! work per query, and recall-over-time dynamics. This crate provides
//! the shared measurement vocabulary the rest of the workspace reports
//! in:
//!
//! * [`QueryTrace`] — query-scoped phase spans (plan, term processing,
//!   cleaner passes, heap merge, …) recorded against either a
//!   wall-clock or a *logical-step* clock ([`ClockMode`]), so traces
//!   are bit-identical when replayed under the deterministic executor.
//! * [`Counter`] / [`MaxGauge`] / [`Histogram`] — lock-free primitives
//!   for per-worker registries ([`WorkerMetrics`], [`ExecMetrics`])
//!   aggregated on scrape into an [`ExecSnapshot`].
//! * [`export`] — Prometheus text exposition and a JSON value model
//!   ([`json::Json`]) with a parser, used by `sparta-bench`'s
//!   `BENCH_*.json` emitter and its schema-validating smoke test.
//!
//! Everything here follows the disabled-sink design of
//! `sparta-core::TraceSink`: a disabled [`QueryTrace`] costs one
//! branch per instrumentation site, so observability is free unless a
//! query opts in.
//!
//! This crate deliberately depends on std alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;

pub use clock::{ClockMode, ObsClock};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MaxGauge};
pub use registry::{ExecMetrics, ExecSnapshot, WorkerMetrics};
pub use span::{phase_totals, Phase, PhaseTotal, QueryTrace, SpanEvent, SpanGuard};
