//! Observability substrate: query tracing spans, lock-free metrics,
//! and machine-readable exporters.
//!
//! The paper's evaluation (§5) reasons about latency distributions,
//! work per query, and recall-over-time dynamics. This crate provides
//! the shared measurement vocabulary the rest of the workspace reports
//! in:
//!
//! * [`QueryTrace`] — query-scoped phase spans (plan, term processing,
//!   cleaner passes, heap merge, …) recorded against either a
//!   wall-clock or a *logical-step* clock ([`ClockMode`]), so traces
//!   are bit-identical when replayed under the deterministic executor.
//! * [`Counter`] / [`MaxGauge`] / [`Histogram`] — lock-free primitives
//!   for per-worker registries ([`WorkerMetrics`], [`ExecMetrics`])
//!   aggregated on scrape into an [`ExecSnapshot`].
//! * [`export`] — Prometheus text exposition and a JSON value model
//!   ([`json::Json`]) with a parser, used by `sparta-bench`'s
//!   `BENCH_*.json` emitter and its schema-validating smoke test.
//!
//! * [`recorder`] / [`ring`] / [`trace_export`] — the **flight
//!   recorder**: a fixed-capacity, lock-free, allocation-free event
//!   ring per worker (job start/end, queue push/pop, park/unpark,
//!   requeues, stripe-lock waits, span begin/end), installed into a
//!   thread local by the executors, dumped by the stall watchdog, and
//!   exported as Chrome trace-event JSON for `chrome://tracing` /
//!   Perfetto.
//!
//! Everything here follows the disabled-sink design of
//! `sparta-core::TraceSink`: a disabled [`QueryTrace`] costs one
//! branch per instrumentation site (and an uninstalled flight
//! recorder one thread-local branch), so observability is free unless
//! a query opts in.
//!
//! This crate deliberately depends on std alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod history;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod server;
pub mod span;
pub mod trace_export;

pub use clock::{ClockMode, ObsClock};
pub use export::{
    exec_snapshot_text, parse_exposition, sample_value, server_snapshot_text, stage_snapshot_text,
    PrometheusText,
};
pub use history::{start_sampler, HistorySample, MetricsHistory, SamplerHandle};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MaxGauge};
pub use profile::{
    profile_recorder, validate_profile_json, ContentionSite, PhaseProfile, Profile,
    WorkerUtilization, DEFAULT_TOP_SITES, PROFILE_SCHEMA_VERSION,
};
pub use recorder::{FlightRecorder, RecorderGuard};
pub use registry::{ExecMetrics, ExecSnapshot, WorkerMetrics};
pub use ring::{pack_wait, unpack_wait, Event, EventKind, EventRing};
pub use server::{ServerMetrics, ServerSnapshot, StageLatency, StageSnapshot};
pub use span::{phase_totals, Phase, PhaseTotal, QueryTrace, SpanEvent, SpanGuard};
pub use trace_export::{
    chrome_trace, chrome_trace_string, dump_text, validate_trace_json, TRACE_SCHEMA_VERSION,
};
