//! Deterministic aggregate profiles folded from flight-recorder rings.
//!
//! The flight recorder answers "what happened, in order"; this module
//! answers "where did the time go". [`profile_recorder`] folds every
//! ring's resident events into one [`Profile`]:
//!
//! - a per-worker **utilization breakdown** — busy (job slices), parked
//!   (`Park`/`Unpark`), queue-wait (job end → next job start) and
//!   lock-wait (`StripeWait`) ticks, each as a fraction of that
//!   worker's observed window;
//! - a **contention-site table** — `StripeWait` payloads carry the
//!   stripe index ([`pack_wait`](crate::ring::pack_wait)) and the fold
//!   attributes each wait to the innermost phase span open at the time,
//!   yielding count / total / max per `(stripe, phase)` site;
//! - a **per-phase self-time table** from `SpanBegin`/`SpanEnd`
//!   nesting — inclusive totals plus self time (a parent's ticks minus
//!   its children's);
//! - a **flamegraph-collapsed rendering** ([`Profile::to_collapsed`]):
//!   one `worker;phase;subphase ticks` line per observed span stack,
//!   pipeable into `flamegraph.pl`.
//!
//! The fold is a pure function of the event streams: under
//! [`ClockMode::Logical`] every tick is an exact integer and both the
//! JSON and the collapsed text render byte-identical across replays of
//! the same deterministic schedule — CI pins that with a twice-emitted
//! `cmp` golden. This file is under the allocation-ban lint rule: the
//! per-event fold path allocates nothing beyond the annotated
//! construction and rendering sites.

use crate::clock::ClockMode;
use crate::json::Json;
use crate::recorder::FlightRecorder;
use crate::ring::{unpack_wait, Event, EventKind};
use crate::span::Phase;
use std::fmt::Write as _;

/// Schema version stamped into profile JSON documents.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Default cap on contention-site table rows (highest total first).
pub const DEFAULT_TOP_SITES: usize = 16;

/// Span stacks deeper than this many frames stop extending the
/// collapsed path key (deeper self time folds into the capped frame).
const MAX_STACK_KEY_DEPTH: usize = 15;

/// One worker's utilization breakdown over its observed window.
///
/// The classes are not disjoint: `lock_wait_ticks` happen inside job
/// slices (a stripe wait blocks mid-job), so busy + parked +
/// queue_wait ≤ window while lock_wait ⊆ busy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerUtilization {
    /// The recording worker's id.
    pub worker: u32,
    /// Events this worker's ring contributed to the fold.
    pub events: u64,
    /// Ticks spanned by this worker's events (last − first).
    pub window_ticks: u64,
    /// Ticks inside `JobStart`/`JobEnd` slices.
    pub busy_ticks: u64,
    /// Ticks inside `Park`/`Unpark` slices.
    pub parked_ticks: u64,
    /// Ticks between finishing a job (or unparking) and starting the
    /// next job — time the worker wanted work but had none running.
    pub queue_wait_ticks: u64,
    /// Ticks spent blocked on contended stripe locks (within jobs).
    pub lock_wait_ticks: u64,
}

fn fraction(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

impl WorkerUtilization {
    /// `busy_ticks` as a fraction of the window (0 on an empty window).
    pub fn busy_fraction(&self) -> f64 {
        fraction(self.busy_ticks, self.window_ticks)
    }

    /// `parked_ticks` as a fraction of the window.
    pub fn parked_fraction(&self) -> f64 {
        fraction(self.parked_ticks, self.window_ticks)
    }

    /// `queue_wait_ticks` as a fraction of the window.
    pub fn queue_wait_fraction(&self) -> f64 {
        fraction(self.queue_wait_ticks, self.window_ticks)
    }

    /// `lock_wait_ticks` as a fraction of the window.
    pub fn lock_wait_fraction(&self) -> f64 {
        fraction(self.lock_wait_ticks, self.window_ticks)
    }
}

/// One contended site: a stripe index plus the innermost phase span
/// open on the waiting worker when the wait was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionSite {
    /// Stripe index from the packed `StripeWait` payload.
    pub stripe: u16,
    /// Phase attribution (`None` when no span was open).
    pub phase: Option<Phase>,
    /// Waits recorded at this site.
    pub count: u64,
    /// Total ticks waited.
    pub total_ticks: u64,
    /// Longest single wait.
    pub max_ticks: u64,
}

/// Aggregate time for one phase across all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// The phase.
    pub phase: Phase,
    /// Spans of this phase that closed inside the window.
    pub count: u64,
    /// Inclusive ticks (children counted in their parents).
    pub total_ticks: u64,
    /// Exclusive ticks: inclusive minus time spent in nested spans.
    pub self_ticks: u64,
}

/// One observed span stack and its accumulated self ticks — the unit
/// of the collapsed flamegraph rendering. The key packs the stack's
/// phase indices (+1) into 4-bit nibbles, bottom frame most
/// significant, so `(worker, key)` orders deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StackSlot {
    worker: u32,
    key: u64,
    ticks: u64,
}

/// A folded profile; build one with [`profile_recorder`].
#[derive(Debug)]
pub struct Profile {
    /// The recorder clock's mode (timestamp unit: ns or steps).
    pub clock: ClockMode,
    /// Per-worker utilization, workers ascending (quiet rings omitted).
    pub workers: Vec<WorkerUtilization>,
    /// Contention sites, highest total first, capped at the `top_sites`
    /// argument of [`profile_recorder`].
    pub sites: Vec<ContentionSite>,
    /// Per-phase self-time table in [`Phase::ALL`] order (phases with
    /// no closed spans omitted).
    pub phases: Vec<PhaseProfile>,
    /// Events folded (resident at read time, across all rings).
    pub events_folded: u64,
    /// Recorder-lifetime events overwritten off ring tails.
    pub dropped_events: u64,
    /// Torn reads skipped while collecting this profile's events.
    pub skipped_reads: u64,
    stacks: Vec<StackSlot>,
}

/// Per-worker fold state: the same pairing state machine the Chrome
/// trace exporter uses, accumulating into tables instead of slices.
struct WorkerFold {
    job_start: Vec<(u64, u64)>,
    park_start: Option<u64>,
    span_stack: Vec<(u8, u64, u64)>, // (phase index, open tick, child ticks)
    idle_since: Option<u64>,
    last_mark: u64, // tick of the last span-stack transition
    util: WorkerUtilization,
}

impl WorkerFold {
    fn new(worker: u32) -> WorkerFold {
        WorkerFold {
            // lint: allow(alloc): per-fold construction; the per-event
            // arms below only push into these stacks.
            job_start: Vec::with_capacity(4),
            park_start: None,
            // lint: allow(alloc): per-fold construction (see above).
            span_stack: Vec::with_capacity(8),
            idle_since: None,
            last_mark: 0,
            util: WorkerUtilization {
                worker,
                ..WorkerUtilization::default()
            },
        }
    }

    /// The current span stack packed into a collapsed-path key
    /// (bottom frame in the most significant nibble).
    fn stack_key(&self) -> u64 {
        let mut key = 0u64;
        for &(phase, _, _) in self.span_stack.iter().take(MAX_STACK_KEY_DEPTH) {
            key = (key << 4) | u64::from(phase + 1);
        }
        key
    }

    /// Attributes the ticks since the last stack transition to the
    /// current stack path (flamegraph self time), then re-marks.
    fn attribute_self(&mut self, now: u64, stacks: &mut Vec<StackSlot>) {
        if !self.span_stack.is_empty() {
            let ticks = now.saturating_sub(self.last_mark);
            if ticks > 0 {
                bump_stack(stacks, self.util.worker, self.stack_key(), ticks);
            }
        }
        self.last_mark = now;
    }

    fn fold(
        &mut self,
        e: &Event,
        stacks: &mut Vec<StackSlot>,
        sites: &mut Vec<ContentionSite>,
        phases: &mut [(u64, u64, u64)],
    ) {
        match e.kind {
            EventKind::JobStart => {
                if let Some(prev) = self.idle_since.take() {
                    self.util.queue_wait_ticks += e.ts.saturating_sub(prev);
                }
                self.job_start.push((e.ts, e.payload));
            }
            EventKind::JobEnd => {
                if let Some((start, _)) = self.job_start.pop() {
                    self.util.busy_ticks += e.ts.saturating_sub(start);
                }
                self.idle_since = Some(e.ts);
            }
            EventKind::Park => self.park_start = Some(e.ts),
            EventKind::Unpark => {
                if let Some(start) = self.park_start.take() {
                    self.util.parked_ticks += e.ts.saturating_sub(start);
                }
                self.idle_since = Some(e.ts);
            }
            EventKind::StripeWait => {
                let (stripe, waited) = unpack_wait(e.payload);
                self.util.lock_wait_ticks += waited;
                let phase = self
                    .span_stack
                    .last()
                    .and_then(|&(p, _, _)| Phase::from_index(p));
                bump_site(sites, stripe, phase, waited);
            }
            EventKind::SpanBegin => {
                self.attribute_self(e.ts, stacks);
                self.span_stack.push(((e.payload & 0xff) as u8, e.ts, 0));
            }
            EventKind::SpanEnd => {
                self.attribute_self(e.ts, stacks);
                let want = (e.payload & 0xff) as u8;
                if let Some(pos) = self.span_stack.iter().rposition(|&(p, _, _)| p == want) {
                    let (_, start, child_ticks) = self.span_stack.remove(pos);
                    let inclusive = e.ts.saturating_sub(start);
                    if let Some(p) = phases.get_mut(usize::from(want)) {
                        p.0 += 1; // spans closed
                        p.1 += inclusive; // inclusive total
                        p.2 += inclusive.saturating_sub(child_ticks); // self
                    }
                    // The closed span is its parent's child time.
                    if let Some(last) = self.span_stack.last_mut() {
                        last.2 += inclusive;
                    }
                }
            }
            EventKind::QueuePush
            | EventKind::QueuePop
            | EventKind::Requeue
            | EventKind::ScoreMark => {}
        }
    }
}

fn bump_stack(stacks: &mut Vec<StackSlot>, worker: u32, key: u64, ticks: u64) {
    if let Some(s) = stacks
        .iter_mut()
        .find(|s| s.worker == worker && s.key == key)
    {
        s.ticks += ticks;
        return;
    }
    stacks.push(StackSlot { worker, key, ticks });
}

fn bump_site(sites: &mut Vec<ContentionSite>, stripe: u16, phase: Option<Phase>, ticks: u64) {
    if let Some(s) = sites
        .iter_mut()
        .find(|s| s.stripe == stripe && s.phase == phase)
    {
        s.count += 1;
        s.total_ticks += ticks;
        s.max_ticks = s.max_ticks.max(ticks);
        return;
    }
    sites.push(ContentionSite {
        stripe,
        phase,
        count: 1,
        total_ticks: ticks,
        max_ticks: ticks,
    });
}

/// Folds everything currently resident in `rec`'s rings into a
/// [`Profile`], keeping at most `top_sites` contention-table rows.
/// Deterministic: workers ascending, ring order within a worker; under
/// a logical clock the result renders byte-identically across replays.
pub fn profile_recorder(rec: &FlightRecorder, top_sites: usize) -> Profile {
    // lint: allow(alloc): fold-wide accumulators, built once per call.
    let mut workers: Vec<WorkerUtilization> = Vec::with_capacity(rec.worker_count());
    // lint: allow(alloc): fold-wide accumulators (see above).
    let mut sites: Vec<ContentionSite> = Vec::new();
    // lint: allow(alloc): fold-wide accumulators (see above).
    let mut stacks: Vec<StackSlot> = Vec::new();
    let mut phase_acc = [(0u64, 0u64, 0u64); Phase::ALL.len()]; // (count, inclusive, self)
    let mut events_folded = 0u64;
    let mut skipped_reads = 0u64;
    for w in 0..rec.worker_count() {
        let ring = rec.ring(w);
        // lint: allow(alloc): one event buffer per ring per fold call.
        let mut events: Vec<Event> = Vec::with_capacity(ring.len());
        skipped_reads += ring.for_each(|e| events.push(e));
        if events.is_empty() {
            continue;
        }
        events_folded += events.len() as u64;
        let first_ts = events.first().map(|e| e.ts).unwrap_or(0);
        let last_ts = events.last().map(|e| e.ts).unwrap_or(first_ts);
        let mut fold = WorkerFold::new(ring.worker());
        fold.last_mark = first_ts;
        for e in &events {
            fold.fold(e, &mut stacks, &mut sites, &mut phase_acc);
        }
        fold.util.events = events.len() as u64;
        fold.util.window_ticks = last_ts.saturating_sub(first_ts);
        workers.push(fold.util);
    }
    // lint: allow(alloc): result-table construction, once per fold.
    let mut phases: Vec<PhaseProfile> = Vec::new();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let (count, total_ticks, self_ticks) = phase_acc[i];
        if count == 0 {
            continue;
        }
        phases.push(PhaseProfile {
            phase: *phase,
            count,
            total_ticks,
            self_ticks,
        });
    }
    // Contention table: highest total first; stripe then phase index
    // break ties so equal-weight sites order deterministically.
    sites.sort_by(|a, b| {
        b.total_ticks
            .cmp(&a.total_ticks)
            .then(a.stripe.cmp(&b.stripe))
            .then(phase_rank(a.phase).cmp(&phase_rank(b.phase)))
    });
    sites.truncate(top_sites);
    stacks.sort_by(|a, b| a.worker.cmp(&b.worker).then(a.key.cmp(&b.key)));
    Profile {
        clock: rec.mode(),
        workers,
        sites,
        phases,
        events_folded,
        dropped_events: rec.dropped_events(),
        skipped_reads,
        stacks,
    }
}

fn phase_rank(p: Option<Phase>) -> u8 {
    p.map(|p| p.index()).unwrap_or(u8::MAX)
}

fn phase_label(p: Option<Phase>) -> &'static str {
    p.map(|p| p.as_str()).unwrap_or("(no span)")
}

impl Profile {
    /// Dominant wait class across workers: the larger of total
    /// queue-wait and lock-wait ticks (`None` when neither occurred).
    pub fn dominant_wait(&self) -> Option<&'static str> {
        let queue: u64 = self.workers.iter().map(|w| w.queue_wait_ticks).sum();
        let lock: u64 = self.workers.iter().map(|w| w.lock_wait_ticks).sum();
        if queue == 0 && lock == 0 {
            None
        } else if lock > queue {
            Some("lock_wait")
        } else {
            Some("queue_wait")
        }
    }

    /// Renders the collapsed flamegraph form: one
    /// `worker{N};phase;subphase ticks` line per observed span stack,
    /// sorted (worker, stack) — ready for `flamegraph.pl`.
    pub fn to_collapsed(&self) -> String {
        // lint: allow(alloc): rendering, not the fold path.
        let mut out = String::new();
        for s in &self.stacks {
            let _ = write!(out, "worker{}", s.worker);
            // Decode nibbles top-frame-first, then emit bottom-first.
            let mut frames = [0u8; MAX_STACK_KEY_DEPTH];
            let mut depth = 0;
            let mut key = s.key;
            while key != 0 && depth < MAX_STACK_KEY_DEPTH {
                frames[depth] = (key & 0xf) as u8 - 1;
                key >>= 4;
                depth += 1;
            }
            for d in (0..depth).rev() {
                let name = Phase::from_index(frames[d]).map(|p| p.as_str());
                let _ = write!(out, ";{}", name.unwrap_or("span"));
            }
            let _ = writeln!(out, " {}", s.ticks);
        }
        out
    }

    /// Serializes the profile (insertion-ordered, byte-deterministic
    /// under a logical clock).
    pub fn to_json(&self) -> Json {
        let mode = match self.clock {
            ClockMode::Wall => "wall",
            ClockMode::Logical => "logical",
        };
        let workers: Vec<Json> = self
            .workers
            .iter()
            .map(|w| {
                Json::obj()
                    .with("worker", u64::from(w.worker))
                    .with("events", w.events)
                    .with("window_ticks", w.window_ticks)
                    .with("busy_ticks", w.busy_ticks)
                    .with("busy_fraction", w.busy_fraction())
                    .with("parked_ticks", w.parked_ticks)
                    .with("parked_fraction", w.parked_fraction())
                    .with("queue_wait_ticks", w.queue_wait_ticks)
                    .with("queue_wait_fraction", w.queue_wait_fraction())
                    .with("lock_wait_ticks", w.lock_wait_ticks)
                    .with("lock_wait_fraction", w.lock_wait_fraction())
            })
            .collect(); // lint: allow(alloc): rendering, not the fold path.
        let sites: Vec<Json> = self
            .sites
            .iter()
            .map(|s| {
                Json::obj()
                    .with("stripe", u64::from(s.stripe))
                    .with("phase", phase_label(s.phase))
                    .with("count", s.count)
                    .with("total_ticks", s.total_ticks)
                    .with("max_ticks", s.max_ticks)
            })
            .collect(); // lint: allow(alloc): rendering, not the fold path.
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj()
                    .with("phase", p.phase.as_str())
                    .with("count", p.count)
                    .with("total_ticks", p.total_ticks)
                    .with("self_ticks", p.self_ticks)
            })
            .collect(); // lint: allow(alloc): rendering, not the fold path.
        let collapsed: Vec<Json> = self.to_collapsed().lines().map(Json::from).collect(); // lint: allow(alloc): rendering, not the fold path.
        Json::obj()
            .with("schema_version", PROFILE_SCHEMA_VERSION)
            .with("clock", mode)
            .with("events_folded", self.events_folded)
            .with("dropped_events", self.dropped_events)
            .with("skipped_reads", self.skipped_reads)
            .with("dominant_wait", self.dominant_wait().unwrap_or("none"))
            .with("workers", Json::Arr(workers))
            .with("contention", Json::Arr(sites))
            .with("phases", Json::Arr(phases))
            .with("collapsed", Json::Arr(collapsed))
    }
}

/// Validates a profile document produced by [`Profile::to_json`]:
/// parses the JSON and checks the envelope and every table row.
pub fn validate_profile_json(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != PROFILE_SCHEMA_VERSION as f64 {
        // lint: allow(alloc): validation error path, not the fold path.
        return Err(format!(
            "schema_version {version} != {PROFILE_SCHEMA_VERSION}"
        ));
    }
    match doc.get("clock").and_then(Json::as_str) {
        Some("wall") | Some("logical") => {}
        // lint: allow(alloc): validation error path, not the fold path.
        other => return Err(format!("clock must be wall|logical, got {other:?}")),
    }
    for key in ["events_folded", "dropped_events", "skipped_reads"] {
        doc.get(key)
            .and_then(Json::as_f64)
            // lint: allow(alloc): validation error path, not the fold path.
            .ok_or_else(|| format!("envelope: missing numeric `{key}`"))?;
    }
    doc.get("dominant_wait")
        .and_then(Json::as_str)
        .ok_or("envelope: missing `dominant_wait`")?;
    let workers = doc
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("missing workers array")?;
    for (i, w) in workers.iter().enumerate() {
        for key in [
            "worker",
            "events",
            "window_ticks",
            "busy_ticks",
            "busy_fraction",
            "parked_ticks",
            "parked_fraction",
            "queue_wait_ticks",
            "queue_wait_fraction",
            "lock_wait_ticks",
            "lock_wait_fraction",
        ] {
            w.get(key)
                .and_then(Json::as_f64)
                // lint: allow(alloc): validation error path, not the fold path.
                .ok_or_else(|| format!("workers[{i}]: missing numeric `{key}`"))?;
        }
    }
    let sites = doc
        .get("contention")
        .and_then(Json::as_arr)
        .ok_or("missing contention array")?;
    for (i, s) in sites.iter().enumerate() {
        s.get("phase")
            .and_then(Json::as_str)
            // lint: allow(alloc): validation error path, not the fold path.
            .ok_or_else(|| format!("contention[{i}]: missing `phase`"))?;
        for key in ["stripe", "count", "total_ticks", "max_ticks"] {
            s.get(key)
                .and_then(Json::as_f64)
                // lint: allow(alloc): validation error path, not the fold path.
                .ok_or_else(|| format!("contention[{i}]: missing numeric `{key}`"))?;
        }
    }
    let phases = doc
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("missing phases array")?;
    for (i, p) in phases.iter().enumerate() {
        p.get("phase")
            .and_then(Json::as_str)
            // lint: allow(alloc): validation error path, not the fold path.
            .ok_or_else(|| format!("phases[{i}]: missing `phase`"))?;
        for key in ["count", "total_ticks", "self_ticks"] {
            p.get(key)
                .and_then(Json::as_f64)
                // lint: allow(alloc): validation error path, not the fold path.
                .ok_or_else(|| format!("phases[{i}]: missing numeric `{key}`"))?;
        }
    }
    doc.get("collapsed")
        .and_then(Json::as_arr)
        .ok_or("missing collapsed array")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;
    use crate::recorder::{record, timed_tagged};
    use crate::ring::pack_wait;

    /// A scripted two-worker recording with nesting, parks, and tagged
    /// stripe waits; logical clock so every tick is pinned.
    fn sample_recorder() -> std::sync::Arc<FlightRecorder> {
        let rec = FlightRecorder::new(2, 128, ClockMode::Logical);
        {
            let _g = rec.install(0);
            record(EventKind::JobStart, 1); // t=0
            record(EventKind::SpanBegin, Phase::Plan.index() as u64); // t=1
            record(EventKind::SpanBegin, Phase::TermProcess.index() as u64); // t=2
            record(EventKind::StripeWait, pack_wait(7, 3)); // t=3
            record(EventKind::SpanEnd, Phase::TermProcess.index() as u64); // t=4
            record(EventKind::SpanEnd, Phase::Plan.index() as u64); // t=5
            record(EventKind::JobEnd, 0); // t=6
            record(EventKind::JobStart, 1); // t=7 (queue_wait 6→7)
            record(EventKind::JobEnd, 0); // t=8
            record(EventKind::Park, 0); // t=9
            record(EventKind::Unpark, 0); // t=10
        }
        {
            let _g = rec.install(1);
            record(EventKind::JobStart, 1);
            timed_tagged(EventKind::StripeWait, 7, || {});
            record(EventKind::JobEnd, 0);
        }
        rec
    }

    #[test]
    fn utilization_breakdown_accounts_each_class() {
        let rec = sample_recorder();
        let p = profile_recorder(&rec, DEFAULT_TOP_SITES);
        assert_eq!(p.workers.len(), 2);
        let w0 = &p.workers[0];
        assert_eq!(w0.worker, 0);
        assert_eq!(w0.window_ticks, 10);
        assert_eq!(w0.busy_ticks, 6 + 1, "two job slices");
        assert_eq!(w0.queue_wait_ticks, 1, "job end t=6 → job start t=7");
        assert_eq!(w0.parked_ticks, 1, "park t=9 → unpark t=10");
        assert_eq!(w0.lock_wait_ticks, 3);
        assert!((w0.busy_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn contention_sites_attribute_stripe_and_phase() {
        let rec = sample_recorder();
        let p = profile_recorder(&rec, DEFAULT_TOP_SITES);
        // Worker 0 waited inside term_process; worker 1 outside spans.
        assert_eq!(p.sites.len(), 2);
        let top = &p.sites[0];
        assert_eq!(top.stripe, 7);
        assert_eq!(top.phase, Some(Phase::TermProcess));
        assert_eq!(top.count, 1);
        assert_eq!(top.total_ticks, 3);
        assert_eq!(top.max_ticks, 3);
        assert_eq!(p.sites[1].phase, None);
        assert_eq!(p.sites[1].stripe, 7);
    }

    #[test]
    fn phase_self_time_subtracts_children() {
        let rec = sample_recorder();
        let p = profile_recorder(&rec, DEFAULT_TOP_SITES);
        let plan = p.phases.iter().find(|p| p.phase == Phase::Plan).unwrap();
        let term = p
            .phases
            .iter()
            .find(|p| p.phase == Phase::TermProcess)
            .unwrap();
        // plan open t=1..5 (inclusive 4); term_process open t=2..4
        // (inclusive 2, entirely plan's child).
        assert_eq!(term.count, 1);
        assert_eq!(term.total_ticks, 2);
        assert_eq!(term.self_ticks, 2);
        assert_eq!(plan.count, 1);
        assert_eq!(plan.total_ticks, 4);
        assert_eq!(plan.self_ticks, 2, "term_process's 2 ticks excluded");
    }

    #[test]
    fn collapsed_lines_stack_worker_then_phases() {
        let rec = sample_recorder();
        let p = profile_recorder(&rec, DEFAULT_TOP_SITES);
        let collapsed = p.to_collapsed();
        assert!(collapsed.contains("worker0;plan 2\n"), "{collapsed}");
        assert!(
            collapsed.contains("worker0;plan;term_process 2\n"),
            "{collapsed}"
        );
    }

    #[test]
    fn profiles_render_byte_identical_and_validate() {
        let a = profile_recorder(&sample_recorder(), 8);
        let b = profile_recorder(&sample_recorder(), 8);
        let ja = a.to_json().to_pretty_string(2);
        let jb = b.to_json().to_pretty_string(2);
        assert_eq!(ja, jb);
        assert_eq!(a.to_collapsed(), b.to_collapsed());
        validate_profile_json(&ja).expect("own profile must validate");
        assert!(validate_profile_json("{}").is_err());
        assert!(validate_profile_json("not json").is_err());
        let broken = ja.replace("\"dominant_wait\"", "\"dominant_mangled\"");
        assert!(validate_profile_json(&broken).is_err());
    }

    #[test]
    fn dominant_wait_picks_larger_class() {
        let rec = sample_recorder();
        let p = profile_recorder(&rec, DEFAULT_TOP_SITES);
        // lock_wait 3+1 ticks vs queue_wait 1 tick.
        assert_eq!(p.dominant_wait(), Some("lock_wait"));
        let quiet = FlightRecorder::new(1, 8, ClockMode::Logical);
        assert_eq!(profile_recorder(&quiet, 4).dominant_wait(), None);
    }

    #[test]
    fn top_sites_caps_the_table() {
        let rec = FlightRecorder::new(1, 256, ClockMode::Logical);
        {
            let _g = rec.install(0);
            for stripe in 0..10u16 {
                record(
                    EventKind::StripeWait,
                    pack_wait(stripe, u64::from(stripe) + 1),
                );
            }
        }
        let p = profile_recorder(&rec, 4);
        assert_eq!(p.sites.len(), 4);
        // Highest totals kept, descending.
        assert_eq!(p.sites[0].stripe, 9);
        assert_eq!(p.sites[0].total_ticks, 10);
        assert_eq!(p.sites[3].stripe, 6);
    }
}
