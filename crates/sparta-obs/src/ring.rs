//! Fixed-capacity, lock-free, allocation-free per-worker event rings.
//!
//! The flight recorder's storage primitive: each worker owns one
//! [`EventRing`] and is its only writer (SPSC — the single consumer is
//! a dumper: the stall watchdog or the trace exporter, reading
//! concurrently and tolerating overwrites). A ring never allocates
//! after construction and never blocks: recording an event is a
//! handful of atomic stores, cheap enough to leave on in production.
//!
//! ## Memory layout
//!
//! `capacity` slots (rounded up to a power of two) of four `AtomicU64`
//! words each:
//!
//! ```text
//! slot := { seq, ts, kind_worker, payload }      // 32 bytes
//! ```
//!
//! `head` counts events ever recorded; event `n` lives in slot
//! `n & (capacity - 1)` until overwritten by event `n + capacity`.
//! Overwrites are *accounted*, never silent:
//! [`EventRing::dropped_events`] reports how many events fell off the
//! tail.
//!
//! ## Seqlock protocol
//!
//! Each slot is a tiny seqlock so a concurrent dumper can detect torn
//! reads without ever making the writer wait:
//!
//! - writer: `seq ← 2n+1` (odd = write in progress), then the fields,
//!   then `seq ← 2n+2` (even = event `n` published);
//! - reader: read `seq`, the fields, `seq` again — accept only if both
//!   reads saw the expected even value `2n+2`.
//!
//! A slot rewritten while being read shows a different `seq` on the
//! second read and is skipped (counted by the return value of
//! [`EventRing::for_each`]). The writer is strictly wait-free.
//!
//! Timestamps come from the recorder's injected [`ObsClock`]: under
//! [`ClockMode::Logical`](crate::clock::ClockMode) every event costs
//! one tick of a shared counter, so a recording made under the
//! deterministic executor is bit-identical across replays of the same
//! seed.

use crate::clock::ObsClock;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// What a recorded scheduler event describes. The taxonomy is fixed
/// and documented in DESIGN.md; payload meaning is per-kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A job began executing on this worker (payload: jobs outstanding).
    JobStart = 0,
    /// The job finished (payload: 1 if it panicked, else 0).
    JobEnd = 1,
    /// A job was pushed onto a queue (payload: queue depth after push).
    QueuePush = 2,
    /// A job was popped from a queue (payload: queue depth after pop).
    QueuePop = 3,
    /// The worker parked on a condvar (payload: unused).
    Park = 4,
    /// The worker woke from a park (payload: unused).
    Unpark = 5,
    /// Cyclic jobs were requeued (payload: queue depth after the batch).
    Requeue = 6,
    /// A `StripedMap` stripe lock was contended (payload: site index in
    /// the high 16 bits, ticks waited in the low 48 — see [`pack_wait`]).
    StripeWait = 7,
    /// A query phase span opened (payload: `Phase` index).
    SpanBegin = 8,
    /// A query phase span closed (payload: `Phase` index).
    SpanEnd = 9,
    /// Periodic heap-trace progress mark (payload: doc id).
    ScoreMark = 10,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 11] = [
        EventKind::JobStart,
        EventKind::JobEnd,
        EventKind::QueuePush,
        EventKind::QueuePop,
        EventKind::Park,
        EventKind::Unpark,
        EventKind::Requeue,
        EventKind::StripeWait,
        EventKind::SpanBegin,
        EventKind::SpanEnd,
        EventKind::ScoreMark,
    ];

    /// Stable snake_case name (used in dumps and trace JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::JobStart => "job_start",
            EventKind::JobEnd => "job_end",
            EventKind::QueuePush => "queue_push",
            EventKind::QueuePop => "queue_pop",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::Requeue => "requeue",
            EventKind::StripeWait => "stripe_wait",
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::ScoreMark => "score_mark",
        }
    }

    /// Inverse of the discriminant; `None` for out-of-range values
    /// (a torn or corrupt slot).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// How many low bits of a `StripeWait` payload hold the waited ticks;
/// the high 16 bits carry the contention-site (stripe) index.
pub const WAIT_TICKS_BITS: u32 = 48;

/// Packs a contention-site index and a waited interval into one
/// `StripeWait` payload word. Waits longer than 2^48 ticks (~3 days of
/// nanoseconds) saturate rather than corrupt the site index.
#[inline]
pub fn pack_wait(site: u16, ticks: u64) -> u64 {
    let cap = (1u64 << WAIT_TICKS_BITS) - 1;
    (u64::from(site) << WAIT_TICKS_BITS) | ticks.min(cap)
}

/// Inverse of [`pack_wait`]: `(site, ticks)`.
#[inline]
pub fn unpack_wait(payload: u64) -> (u16, u64) {
    let cap = (1u64 << WAIT_TICKS_BITS) - 1;
    ((payload >> WAIT_TICKS_BITS) as u16, payload & cap)
}

/// One decoded event, as handed to [`EventRing::for_each`] consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Clock timestamp (ns under a wall clock, ticks under a logical
    /// clock).
    pub ts: u64,
    /// The recording worker's id.
    pub worker: u32,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub payload: u64,
}

/// One ring slot: a 4-word seqlock (see the module docs).
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    kind_worker: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    const fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            kind_worker: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

/// A single worker's event ring. See the module docs for the layout
/// and the seqlock protocol.
pub struct EventRing {
    worker: u32,
    clock: Arc<ObsClock>,
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    skipped: AtomicU64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("worker", &self.worker)
            .field("capacity", &self.capacity())
            .field("head", &self.head())
            .finish()
    }
}

impl EventRing {
    /// Builds a ring for `worker` holding the last `capacity` events
    /// (rounded up to a power of two, minimum 2), stamping them with
    /// `clock`. This is the ring's only allocation — recording is
    /// allocation-free by policy (enforced by the `alloc` lint rule).
    pub fn new(worker: u32, capacity: usize, clock: Arc<ObsClock>) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        // lint: allow(alloc): the ring's one-time slot buffer; nothing
        // allocates after construction.
        let slots: Box<[Slot]> = (0..cap).map(|_| Slot::empty()).collect();
        EventRing {
            worker,
            clock,
            slots,
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        }
    }

    /// The owning worker's id (stamped into every event).
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The clock events are stamped with.
    pub fn clock(&self) -> &ObsClock {
        &self.clock
    }

    /// Reads one timestamp from the ring's clock without recording —
    /// used to time waited intervals (e.g. stripe-lock contention).
    pub fn tick(&self) -> u64 {
        self.clock.tick()
    }

    /// Records one event, stamped now. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, kind: EventKind, payload: u64) {
        self.record_at(self.clock.tick(), kind, payload);
    }

    /// Records one event with an explicit timestamp (for pre-timed
    /// intervals whose start tick was taken earlier).
    pub fn record_at(&self, ts: u64, kind: EventKind, payload: u64) {
        // ordering: single producer — only the owning worker writes (model: seqlock_ring)
        // `head`, so its own read needs no synchronization.
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        // ordering: seqlock begin marker (odd); the Release fence below (model: seqlock_ring)
        // keeps it ahead of the field stores, and readers validate with
        // the seq double-check.
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        // ordering: StoreStore barrier — the odd marker above must be (model: seqlock_ring)
        // visible before any field store below.
        fence(Ordering::Release);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.kind_worker
            .store(u64::from(self.worker) << 8 | kind as u64, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        // ordering: StoreStore barrier — all field stores must be (model: seqlock_ring)
        // visible before the even publish marker below.
        fence(Ordering::Release);
        slot.seq.store(2 * (h + 1), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Total events ever recorded (monotone; not bounded by capacity).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events currently resident in the ring.
    pub fn len(&self) -> usize {
        self.head().min(self.slots.len() as u64) as usize
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.head() == 0
    }

    /// How many events have been overwritten (lost off the tail). The
    /// ring is never *silently* lossy: this is exact, derived from the
    /// monotone head counter.
    pub fn dropped_events(&self) -> u64 {
        self.head().saturating_sub(self.slots.len() as u64)
    }

    /// Visits the resident events oldest-first. Returns the number of
    /// slots *skipped* because a concurrent writer raced the read (the
    /// seqlock double-check failed); 0 whenever the owner is quiescent.
    pub fn for_each<F: FnMut(Event)>(&self, mut f: F) -> u64 {
        let head = self.head();
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut skipped = 0u64;
        for n in start..head {
            let slot = &self.slots[(n & self.mask) as usize];
            let expect = 2 * (n + 1);
            let s1 = slot.seq.load(Ordering::Acquire);
            let ts = slot.ts.load(Ordering::Relaxed);
            let kw = slot.kind_worker.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            // ordering: LoadLoad barrier — the field loads above must (model: seqlock_ring)
            // complete before the validating seq re-read below.
            fence(Ordering::Acquire);
            // ordering: the Acquire fence above orders this validation (model: seqlock_ring)
            // load after the field loads; Acquire on the load itself
            // adds nothing further.
            let s2 = slot.seq.load(Ordering::Relaxed);
            let kind = EventKind::from_u8((kw & 0xff) as u8);
            match kind {
                Some(kind) if s1 == expect && s2 == expect => f(Event {
                    ts,
                    worker: (kw >> 8) as u32,
                    kind,
                    payload,
                }),
                _ => skipped += 1,
            }
        }
        if skipped > 0 {
            // ordering: pure Relaxed monotone counter — readers only (model: seqlock_ring)
            // need eventual visibility of the torn-read total, never an
            // ordering relation with the slots themselves.
            self.skipped.fetch_add(skipped, Ordering::Relaxed);
        }
        skipped
    }

    /// Cumulative count of torn reads skipped by [`EventRing::for_each`]
    /// passes over this ring's lifetime (0 whenever every read pass ran
    /// against a quiescent writer).
    pub fn skipped_reads(&self) -> u64 {
        // ordering: pure Relaxed monotone counter read (model: seqlock_ring)
        self.skipped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;

    fn ring(cap: usize) -> EventRing {
        EventRing::new(3, cap, Arc::new(ObsClock::new(ClockMode::Logical)))
    }

    #[test]
    fn records_and_reads_back_in_order() {
        let r = ring(8);
        for i in 0..5u64 {
            r.record(EventKind::QueuePush, i);
        }
        let mut seen = Vec::new();
        let skipped = r.for_each(|e| seen.push(e));
        assert_eq!(skipped, 0);
        assert_eq!(seen.len(), 5);
        assert_eq!(r.dropped_events(), 0);
        for (i, e) in seen.iter().enumerate() {
            assert_eq!(e.worker, 3);
            assert_eq!(e.kind, EventKind::QueuePush);
            assert_eq!(e.payload, i as u64);
            assert_eq!(e.ts, i as u64, "logical clock ticks once per event");
        }
    }

    #[test]
    fn wraparound_keeps_newest_and_accounts_drops() {
        let r = ring(8);
        for i in 0..20u64 {
            r.record(EventKind::JobStart, i);
        }
        assert_eq!(r.head(), 20);
        assert_eq!(r.len(), 8);
        assert_eq!(r.dropped_events(), 12, "exactly head - capacity lost");
        let mut payloads = Vec::new();
        let skipped = r.for_each(|e| payloads.push(e.payload));
        assert_eq!(skipped, 0);
        assert_eq!(payloads, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(ring(0).capacity(), 2);
        assert_eq!(ring(3).capacity(), 4);
        assert_eq!(ring(8).capacity(), 8);
        assert_eq!(ring(9).capacity(), 16);
    }

    #[test]
    fn kind_roundtrip_and_names() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(EventKind::from_u8(i as u8), Some(*k));
            assert!(!k.as_str().is_empty());
        }
        assert_eq!(EventKind::from_u8(EventKind::ALL.len() as u8), None);
    }

    #[test]
    fn wait_payload_packs_site_and_saturates_ticks() {
        assert_eq!(unpack_wait(pack_wait(0, 0)), (0, 0));
        assert_eq!(unpack_wait(pack_wait(63, 1234)), (63, 1234));
        assert_eq!(unpack_wait(pack_wait(u16::MAX, 7)), (u16::MAX, 7));
        let cap = (1u64 << WAIT_TICKS_BITS) - 1;
        assert_eq!(
            unpack_wait(pack_wait(3, u64::MAX)),
            (3, cap),
            "oversized waits saturate instead of corrupting the site"
        );
    }

    #[test]
    fn clean_reads_leave_skip_counter_at_zero() {
        let r = ring(8);
        for i in 0..5u64 {
            r.record(EventKind::QueuePush, i);
        }
        assert_eq!(r.for_each(|_| {}), 0);
        assert_eq!(r.for_each(|_| {}), 0);
        assert_eq!(r.skipped_reads(), 0);
    }

    #[test]
    fn explicit_timestamp_is_preserved() {
        let r = ring(4);
        r.record_at(777, EventKind::StripeWait, 42);
        let mut got = None;
        r.for_each(|e| got = Some(e));
        let e = got.unwrap();
        assert_eq!(e.ts, 777);
        assert_eq!(e.payload, 42);
    }
}
