//! Lock-free metric primitives: counters, max-gauges, and log-bucketed
//! latency histograms.
//!
//! Recording is a single atomic RMW on the hot path; reads ("scrape")
//! may race with writers and observe a slightly stale but internally
//! consistent-enough view — the standard monitoring trade-off.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that retains the maximum observed value (high-water marks).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Raises the gauge to `v` if `v` exceeds the current maximum.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The maximum observed so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two of the
/// `u64` range, plus a dedicated zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free histogram with logarithmic (base-2) buckets.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values `v` with
/// `2^(i-1) ≤ v < 2^i`. Recording is one `fetch_add` on the bucket
/// plus count/sum updates — no locks, suitable for per-worker hot
/// paths. Percentile readouts return the upper bound of the bucket
/// containing the requested rank, so they are conservative (never
/// under-report) and monotone in `p`.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (0 for the zero bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// An owned point-in-time copy, for aggregation and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        self.snapshot().mean()
    }

    /// Conservative p-th percentile (see type docs), `p ∈ [0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }
}

/// An owned copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Per-bucket counts (see [`Histogram`] for the bucket layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Conservative p-th percentile: the upper bound of the bucket
    /// containing rank `ceil(p · count)`. Monotone in `p`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Adds another snapshot's observations into this one
    /// (saturating, so fault-injection storms cannot overflow).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(9);
        g.observe(7);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn bucket_boundaries() {
        // Zero gets its own bucket; powers of two open new buckets.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Upper bounds bracket the bucket contents.
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} bucket={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn percentiles_are_monotone_and_conservative() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let mut last = 0;
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let q = h.percentile(p);
            assert!(q >= last, "percentile not monotone at p={p}");
            last = q;
        }
        // Conservative: p50 of 1..=1000 is ≥ 500 (bucket upper bound).
        assert!(h.percentile(0.5) >= 500);
        assert!(h.percentile(1.0) >= 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn snapshot_merge_is_saturating() {
        let mut a = HistogramSnapshot {
            count: u64::MAX - 1,
            sum: u64::MAX - 1,
            ..Default::default()
        };
        let b = HistogramSnapshot {
            count: 5,
            sum: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.sum, u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4000);
    }
}
