//! Mutation self-tests: the checker is only trustworthy if a
//! *weakened* protocol is caught. For every ported protocol, flip one
//! acquire edge and (separately) one release edge and require a
//! violated invariant with a schedule that replays to the same
//! violation. A mutation that sails through green means the model — or
//! the checker — is vacuous, and the lint cross-reference built on top
//! of it would be theater.

use sparta_model::protocols::{
    admission, doc_slab, job_queue, seqlock, server_flags, tag_alloc, Mutation,
};
use sparta_model::Model;

/// The contract every mutation must meet: caught, and replayable.
fn assert_caught(label: &str, m: &Model) {
    let report = m.check();
    assert!(
        report.violations > 0,
        "{label}: weakened ordering was NOT caught ({} executions, all clean)",
        report.executions
    );
    assert!(!report.truncated, "{label}: exploration was truncated");
    let v = report
        .first_violation
        .as_ref()
        .expect("violations > 0 implies a recorded first violation");
    let replayed = m
        .replay(&v.schedule)
        .unwrap_or_else(|| panic!("{label}: schedule {:?} did not replay", v.schedule));
    assert_eq!(
        replayed, v.message,
        "{label}: replay of {:?} diverged from the recorded violation",
        v.schedule
    );
}

#[test]
fn job_queue_acquire_load_flipped_to_relaxed_is_caught() {
    assert_caught(
        "job_queue/acquire",
        &job_queue::model(job_queue::Variant::LockBridge, Mutation::AcquireToRelaxed),
    );
}

#[test]
fn job_queue_release_half_of_fetch_sub_dropped_is_caught() {
    assert_caught(
        "job_queue/release",
        &job_queue::model(job_queue::Variant::LockBridge, Mutation::ReleaseToRelaxed),
    );
}

#[test]
fn seqlock_acquire_seq_read_flipped_to_relaxed_is_caught() {
    assert_caught(
        "seqlock/acquire",
        &seqlock::model(Mutation::AcquireToRelaxed),
    );
}

#[test]
fn seqlock_release_publish_dropped_is_caught() {
    assert_caught(
        "seqlock/release",
        &seqlock::model(Mutation::ReleaseToRelaxed),
    );
}

#[test]
fn doc_slab_acquire_sum_load_flipped_to_relaxed_is_caught() {
    assert_caught(
        "doc_slab/acquire",
        &doc_slab::model(Mutation::AcquireToRelaxed),
    );
}

#[test]
fn doc_slab_release_half_of_fetch_add_dropped_is_caught() {
    assert_caught(
        "doc_slab/release",
        &doc_slab::model(Mutation::ReleaseToRelaxed),
    );
}

#[test]
fn admission_lock_without_acquire_edge_is_caught() {
    assert_caught(
        "admission/acquire",
        &admission::model(Mutation::AcquireToRelaxed),
    );
}

#[test]
fn admission_unlock_without_release_edge_is_caught() {
    assert_caught(
        "admission/release",
        &admission::model(Mutation::ReleaseToRelaxed),
    );
}

#[test]
fn server_flags_acquire_probe_flipped_to_relaxed_is_caught() {
    assert_caught(
        "server_flags/acquire",
        &server_flags::model(Mutation::AcquireToRelaxed),
    );
}

#[test]
fn server_flags_release_ready_store_dropped_is_caught() {
    assert_caught(
        "server_flags/release",
        &server_flags::model(Mutation::ReleaseToRelaxed),
    );
}

/// The tag allocator is all-Relaxed by design (the annotation's claim),
/// so its dangerous mutation is losing RMW atomicity, not an ordering
/// flip.
#[test]
fn tag_alloc_split_rmw_is_caught() {
    assert_caught(
        "tag_alloc/split-rmw",
        &tag_alloc::model(tag_alloc::Rmw::SplitLoadStore),
    );
}

/// And the shipped suite itself stays green end to end — the exact set
/// CI's model-check job runs.
#[test]
fn every_shipped_model_verifies_clean() {
    for m in sparta_model::protocols::all_shipped() {
        let report = m.check();
        report.assert_clean();
        assert!(report.executions > 0, "{}: nothing explored", m.name());
    }
}
