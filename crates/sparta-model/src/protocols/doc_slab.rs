//! The `DocSlab`/`DocType` score-publication protocol
//! (`sparta-core/src/sparta/{doc_slab,doc_type}.rs`): `set_score` is
//! `scores[i].swap(AcqRel)` followed by `sum.fetch_add(delta, AcqRel)`,
//! and the Alg. 1 line 23 filter reads `sum` with Acquire.
//!
//! The DESIGN.md claim under test: the running sum is a *publication
//! point* — a thread that Acquire-loads `sum` and observes a delta
//! also observes the score swap that produced it (release sequence
//! through the two RMWs). It also covers the `doc_slab.rs` Relaxed id
//! load: the id word is written before the handle is published through
//! a stripe lock, so the lock's release/acquire edge (modelled by the
//! `publish` mutex) is what makes a Relaxed read safe.

use super::Mutation;
use crate::{MemOrder, Model};

const SCORE: u64 = 7;
const DOC_ID: u64 = 42;

/// One owner thread scoring a doc, one filter thread reading the sum.
/// Mutations: `AcquireToRelaxed` flips the filter's `sum` load
/// (`current_sum()`); `ReleaseToRelaxed` drops the release half of the
/// `sum.fetch_add` (AcqRel → Acquire).
pub fn model(mutation: Mutation) -> Model {
    let mut m = Model::new("doc_slab_publish");
    let id = m.atomic_u64("rec.id", 0);
    let score = m.atomic_u64("rec.score", 0);
    let sum = m.atomic_u64("rec.sum", 0);
    let stripe = m.mutex();
    let published = m.atomic_u64("docmap.published", 0);

    let add_ord = match mutation {
        Mutation::ReleaseToRelaxed => MemOrder::Acquire,
        _ => MemOrder::AcqRel,
    };
    m.thread("owner", move |t| {
        // alloc(): the id word is written once, Relaxed, *before* the
        // handle is published under the docMap stripe lock.
        id.store(t, DOC_ID, MemOrder::Relaxed);
        stripe.lock(t);
        published.store(t, 1, MemOrder::Relaxed);
        stripe.unlock(t);
        // set_score(): swap the score, fold the delta into the sum.
        let old = score.swap(t, SCORE, MemOrder::AcqRel);
        sum.fetch_add(t, SCORE.wrapping_sub(old), add_ord);
    });

    let sum_ord = match mutation {
        Mutation::AcquireToRelaxed => MemOrder::Relaxed,
        _ => MemOrder::Acquire,
    };
    m.thread("filter", move |t| {
        // The cleaner's Eq. 2 filter: current_sum(), then the
        // constituent score must already be visible.
        let s = sum.load(t, sum_ord);
        if s == SCORE {
            t.observe("score_at_filter", score.load(t, MemOrder::Relaxed));
        }
        // A reader that got the handle through the stripe lock may
        // read the id Relaxed.
        stripe.lock(t);
        let p = published.load(t, MemOrder::Relaxed);
        stripe.unlock(t);
        if p == 1 {
            t.observe("id_via_handle", id.load(t, MemOrder::Relaxed));
        }
    });

    m.invariant(move |leaf| {
        if !leaf.observed("score_at_filter").iter().all(|&v| v == SCORE) {
            return Err("filter observed the sum's delta but not the score \
                 swap that produced it"
                .to_string());
        }
        if !leaf.observed("id_via_handle").iter().all(|&v| v == DOC_ID) {
            return Err("handle published through the stripe lock but the id \
                 word was not visible"
                .to_string());
        }
        Ok(())
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_publication_protocol_is_clean() {
        let report = model(Mutation::None).check();
        report.assert_clean();
        assert!(report.executions > 10);
    }
}
