//! The server lifecycle flags (`sparta-server/src/server.rs`,
//! `sparta-server/src/admin.rs`): startup publishes subsystem state
//! (listener bound, admin plane up) with Relaxed stores and flips a
//! single `ready` flag with Release; probes Acquire-load `ready` and
//! may then read the subsystem words Relaxed.
//!
//! The DESIGN.md claim: `ready` is the sole publication point — a
//! probe that observes `ready == 1` observes every write the starter
//! made before flipping it. Mutations: `AcquireToRelaxed` flips the
//! probe's load, `ReleaseToRelaxed` flips the starter's `ready` store;
//! either lets a probe see "ready" with a half-initialized server.

use super::Mutation;
use crate::{MemOrder, Model};

/// One starter bringing the server up, one readiness probe.
pub fn model(mutation: Mutation) -> Model {
    let mut m = Model::new("server_lifecycle");
    let http = m.atomic_u64("admin_up", 0);
    let tcp = m.atomic_u64("listener_up", 0);
    let ready = m.atomic_u64("ready", 0);

    let store_ord = match mutation {
        Mutation::ReleaseToRelaxed => MemOrder::Relaxed,
        _ => MemOrder::Release,
    };
    m.thread("starter", move |t| {
        http.store(t, 1, MemOrder::Relaxed);
        tcp.store(t, 1, MemOrder::Relaxed);
        ready.store(t, 1, store_ord);
    });

    let load_ord = match mutation {
        Mutation::AcquireToRelaxed => MemOrder::Relaxed,
        _ => MemOrder::Acquire,
    };
    m.thread("probe", move |t| {
        if ready.load(t, load_ord) == 1 {
            t.observe(
                "probe",
                100 + http.load(t, MemOrder::Relaxed) * 10 + tcp.load(t, MemOrder::Relaxed),
            );
        }
    });

    m.invariant(move |leaf| {
        for &p in &leaf.observed("probe") {
            if p != 111 {
                return Err(format!(
                    "probe saw ready=1 but subsystems admin_up={} \
                     listener_up={}",
                    p / 10 % 10,
                    p % 10
                ));
            }
        }
        Ok(())
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_lifecycle_publication_is_clean() {
        let report = model(Mutation::None).check();
        report.assert_clean();
        assert!(report.executions > 1);
    }
}
