//! The `JobQueue` completion protocol (`sparta-exec/src/job_queue.rs`):
//! the final `fetch_sub(AcqRel)` on `outstanding`, the lock bridge, and
//! the condvar-parked waiter.
//!
//! This is the instruction-level successor of the bespoke
//! `sparta-testkit::wakeup_model` proof that caught the PR 5 hang —
//! [`Variant::Legacy`] (decrement + notify, no bridge) must wedge on
//! some interleaving, [`Variant::LockBridge`] (the shipped
//! `finish_one`) must verify clean. On top of the old state-machine
//! model, this port also checks the *memory* half of the claim in the
//! `// ordering:` comments: the release of the final decrement is what
//! publishes the finished job's side effects (`data` below) to the
//! waiter that observes `outstanding == 0`.

use super::Mutation;
use crate::{MemOrder, Model};

/// Which finish-side protocol to model (mirrors the old
/// `wakeup_model::Protocol`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Decrement then notify, never touching the waiter's mutex: the
    /// lost-wakeup bug the bridge fixed.
    Legacy,
    /// The shipped `finish_one`: decrement, acquire + drop the queue
    /// mutex, then notify.
    LockBridge,
}

/// One finisher completing the last job, one waiter in
/// `wait_complete`. Invariant: a waiter that returns has the job's
/// side effects (`data == 1`) visible, and no interleaving wedges.
pub fn model(variant: Variant, mutation: Mutation) -> Model {
    let mut m = Model::new("job_queue_outstanding");
    let outstanding = m.atomic_u64("outstanding", 1);
    let data = m.atomic_u64("data", 0);
    let jobs = m.mutex();
    let cv = m.condvar();

    let sub_ord = match mutation {
        // ordering under test: job_queue.rs finish_one's AcqRel — the
        // release half is what the mutation drops.
        Mutation::ReleaseToRelaxed => MemOrder::Acquire,
        _ => MemOrder::AcqRel,
    };
    m.thread("finisher", move |t| {
        // The job body's side effects, then finish_one().
        data.store(t, 1, MemOrder::Relaxed);
        if outstanding.fetch_sub(t, 1, sub_ord) == 1 {
            if variant == Variant::LockBridge {
                jobs.lock(t);
                jobs.unlock(t);
            }
            cv.notify_all(t);
        }
    });

    let load_ord = match mutation {
        // ordering under test: outstanding()'s Acquire load.
        Mutation::AcquireToRelaxed => MemOrder::Relaxed,
        _ => MemOrder::Acquire,
    };
    m.thread("waiter", move |t| {
        // wait_complete(): check under the queue mutex, park on cv.
        jobs.lock(t);
        loop {
            if outstanding.load(t, load_ord) == 0 {
                break;
            }
            cv.wait(t, jobs);
        }
        jobs.unlock(t);
        // The caller now relies on the finished job's writes.
        t.observe("data_at_wakeup", data.load(t, MemOrder::Relaxed));
    });

    m.invariant(move |leaf| {
        if leaf.observed("data_at_wakeup").iter().all(|&v| v == 1) {
            Ok(())
        } else {
            Err("waiter returned from wait_complete without the finished \
                 job's side effects visible"
                .to_string())
        }
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_bridge_is_clean() {
        let report = model(Variant::LockBridge, Mutation::None).check();
        report.assert_clean();
        assert!(report.executions > 1);
    }

    #[test]
    fn legacy_wedges() {
        let report = model(Variant::Legacy, Mutation::None).check();
        assert!(report.violations > 0, "legacy protocol must lose a wakeup");
        assert!(
            report.executions > report.violations,
            "legacy protocol must also have good interleavings"
        );
        assert!(report
            .first_violation
            .expect("wedge recorded")
            .message
            .contains("wedged"));
    }
}
