//! The server admission gate (`sparta-server/src/admission.rs`): a
//! mutex-guarded counter with a condvar queue. Admission takes a slot
//! if one is free, otherwise registers as waiting and parks; release
//! hands its slot directly to a waiter (incrementing `granted`) or
//! frees it, then notifies.
//!
//! The DESIGN.md invariant: the gate conserves slots — after every
//! client has been admitted and released, all counters return to zero
//! and nobody is left parked. The memory half of the claim is the
//! mutex's own release/acquire edge: all three counters are plain
//! (Relaxed) *because* every access happens under the lock. The
//! mutations therefore weaken the lock itself via
//! [`Model::mutex_weakened`]: drop the acquire edge on `lock()` or the
//! release edge on `unlock()` and stale counter reads double-admit,
//! corrupt the accounting, or strand a waiter.

use super::Mutation;
use crate::{MemOrder, Model};

const CAPACITY: u64 = 1;

/// Two clients racing through a capacity-1 gate. Mutations weaken the
/// gate mutex's memory edges (the counters themselves are Relaxed by
/// design, so the lock is the only ordering in the protocol).
pub fn model(mutation: Mutation) -> Model {
    let mut m = Model::new("admission_gate");
    let (acq_on_lock, rel_on_unlock) = match mutation {
        Mutation::None => (true, true),
        Mutation::AcquireToRelaxed => (false, true),
        Mutation::ReleaseToRelaxed => (true, false),
    };
    let gate = m.mutex_weakened(acq_on_lock, rel_on_unlock);
    let cv = m.condvar();
    let in_flight = m.atomic_u64("in_flight", 0);
    let waiting = m.atomic_u64("waiting", 0);
    let granted = m.atomic_u64("granted", 0);

    for name in ["client_a", "client_b"] {
        m.thread(name, move |t| {
            // admit(): take a free slot or queue up and park.
            gate.lock(t);
            let inf = in_flight.load(t, MemOrder::Relaxed);
            if inf < CAPACITY {
                in_flight.store(t, inf + 1, MemOrder::Relaxed);
            } else {
                waiting.store(t, waiting.load(t, MemOrder::Relaxed) + 1, MemOrder::Relaxed);
                loop {
                    let g = granted.load(t, MemOrder::Relaxed);
                    if g > 0 {
                        granted.store(t, g - 1, MemOrder::Relaxed);
                        break;
                    }
                    cv.wait(t, gate);
                }
            }
            gate.unlock(t);

            // ... serve the query ...

            // release(): hand the slot to a waiter or free it.
            gate.lock(t);
            let w = waiting.load(t, MemOrder::Relaxed);
            if w > 0 {
                waiting.store(t, w - 1, MemOrder::Relaxed);
                granted.store(t, granted.load(t, MemOrder::Relaxed) + 1, MemOrder::Relaxed);
            } else {
                // wrapping_sub: under a weakened mutex a stale read can
                // drive this below zero; let the invariant report that
                // instead of an overflow panic.
                in_flight.store(
                    t,
                    in_flight.load(t, MemOrder::Relaxed).wrapping_sub(1),
                    MemOrder::Relaxed,
                );
            }
            gate.unlock(t);
            cv.notify_all(t);
        });
    }

    m.invariant(move |leaf| {
        let (inf, w, g) = (
            leaf.value(in_flight),
            leaf.value(waiting),
            leaf.value(granted),
        );
        if inf == 0 && w == 0 && g == 0 {
            Ok(())
        } else {
            Err(format!(
                "gate leaked slots: in_flight={inf} waiting={w} granted={g} \
                 after all clients released"
            ))
        }
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_gate_conserves_slots() {
        let report = model(Mutation::None).check();
        report.assert_clean();
        assert!(report.executions > 1);
    }
}
