//! The workspace's real protocols, ported op-for-op onto the modelled
//! primitives. Every model here is named — `sparta-lint`'s
//! cross-reference pass harvests the `Model::new("…")` literals and
//! requires each `// ordering:` justification in the workspace to cite
//! one via a `model: <name>` tag.
//!
//! Each port takes a [`Mutation`]: `None` is the shipped protocol and
//! must verify clean; the two weakenings flip exactly one acquire edge
//! or one release edge and must be *caught* (a violated invariant with
//! a replayable schedule). The mutation self-tests in
//! `tests/mutations.rs` hold the checker to that.

use crate::Model;

pub mod admission;
pub mod doc_slab;
pub mod job_queue;
pub mod seqlock;
pub mod server_flags;
pub mod tag_alloc;

/// A deliberate single-ordering weakening applied to a ported
/// protocol, proving the checker is not vacuously green.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The shipped protocol, unmodified.
    None,
    /// One load's `Acquire` flipped to `Relaxed` (for mutex-based
    /// protocols: the lock's acquire edge dropped).
    AcquireToRelaxed,
    /// One store/RMW's release edge dropped (for mutex-based
    /// protocols: the unlock's release edge dropped).
    ReleaseToRelaxed,
}

/// Every shipped (unmutated) model, for the CI `model-check` suite and
/// the lint registry's ground truth.
pub fn all_shipped() -> Vec<Model> {
    vec![
        job_queue::model(job_queue::Variant::LockBridge, Mutation::None),
        seqlock::model(Mutation::None),
        doc_slab::model(Mutation::None),
        admission::model(Mutation::None),
        server_flags::model(Mutation::None),
        tag_alloc::model(tag_alloc::Rmw::Atomic),
    ]
}
