//! The flight-recorder seqlock (`sparta-obs/src/ring.rs`): one slot,
//! one overwriting owner (`record_at`), one racing reader (`for_each`).
//!
//! Writer, op for op: odd begin marker (Relaxed), Release fence, field
//! stores (Relaxed), Release fence, even publish marker (Release).
//! Reader: `s1` (Acquire), field loads (Relaxed), Acquire fence,
//! validating `s2` re-read (Relaxed); the snapshot is accepted only if
//! `s1 == s2` and even. The DESIGN.md invariant: a torn read is
//! *skipped and counted, never observed* — every accepted snapshot is
//! a (seq, fields) triple some quiescent state actually held.

use super::Mutation;
use crate::{MemOrder, Model};

/// Generation-0 snapshot (initial slot: seq 0, fields 0) and the
/// generation-1 snapshot the writer publishes.
const GEN1_F1: u64 = 11;
const GEN1_F2: u64 = 22;

fn encode(s: u64, f1: u64, f2: u64) -> u64 {
    s * 10_000 + f1 * 100 + f2
}

/// Invariant: every accepted snapshot is consistent. Mutations:
/// `AcquireToRelaxed` flips the reader's `s1` load;
/// `ReleaseToRelaxed` drops the writer's even-publish release edge
/// (the second fence *and* the marker store — they are one redundant
/// belt-and-braces edge in the real code, so the mutation must drop
/// both to mean anything).
pub fn model(mutation: Mutation) -> Model {
    let mut m = Model::new("seqlock_ring");
    let seq = m.atomic_u64("slot.seq", 0);
    let f1 = m.atomic_u64("slot.ts", 0);
    let f2 = m.atomic_u64("slot.payload", 0);

    m.thread("owner", move |t| {
        // record_at(): overwrite the published slot in place.
        seq.store(t, 1, MemOrder::Relaxed);
        t.fence(MemOrder::Release);
        f1.store(t, GEN1_F1, MemOrder::Relaxed);
        f2.store(t, GEN1_F2, MemOrder::Relaxed);
        if mutation == Mutation::ReleaseToRelaxed {
            seq.store(t, 2, MemOrder::Relaxed);
        } else {
            t.fence(MemOrder::Release);
            seq.store(t, 2, MemOrder::Release);
        }
    });

    let s1_ord = match mutation {
        Mutation::AcquireToRelaxed => MemOrder::Relaxed,
        _ => MemOrder::Acquire,
    };
    m.thread("reader", move |t| {
        // for_each(): one slot visit with the seq double-check.
        let s1 = seq.load(t, s1_ord);
        let v1 = f1.load(t, MemOrder::Relaxed);
        let v2 = f2.load(t, MemOrder::Relaxed);
        t.fence(MemOrder::Acquire);
        let s2 = seq.load(t, MemOrder::Relaxed);
        if s1 == s2 && s1.is_multiple_of(2) {
            t.observe("accepted", encode(s1, v1, v2));
        } else {
            t.observe("skipped", 1);
        }
    });

    m.invariant(move |leaf| {
        let gen0 = encode(0, 0, 0);
        let gen1 = encode(2, GEN1_F1, GEN1_F2);
        for &snap in &leaf.observed("accepted") {
            if snap != gen0 && snap != gen1 {
                return Err(format!(
                    "torn snapshot accepted: seq={} f1={} f2={} \
                     (valid states are {gen0} and {gen1})",
                    snap / 10_000,
                    snap / 100 % 100,
                    snap % 100
                ));
            }
        }
        Ok(())
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_seqlock_never_accepts_a_torn_snapshot() {
        let report = model(Mutation::None).check();
        report.assert_clean();
        assert!(report.executions > 10, "explorer barely explored");
    }

    #[test]
    fn some_interleaving_skips() {
        // The skip path must be reachable, or the double-check is dead
        // code in the model and the invariant proves nothing.
        let mut m = model(Mutation::None);
        m.invariant(|leaf| {
            if leaf.observed("skipped").is_empty() {
                Ok(())
            } else {
                Err("skip observed".to_string())
            }
        });
        let report = m.check();
        assert!(report.violations > 0, "no interleaving ever skipped");
    }
}
