//! The scheduler's query-tag allocator (`sparta-exec/src/scheduler.rs`
//! `next_tag`): a `fetch_add(1, Relaxed)` counter. The `// ordering:`
//! comment claims Relaxed suffices because the tag is an identity, not
//! a publication — the only property consumers need is uniqueness.
//!
//! The model checks exactly that, and its mutation is different in
//! kind from the acquire/release flips elsewhere: the dangerous
//! "weakening" of a Relaxed RMW is splitting it into a load + store
//! ([`Rmw::SplitLoadStore`]), which loses atomicity and hands two
//! threads the same tag. `Mutation::{AcquireToRelaxed,
//! ReleaseToRelaxed}` have nothing left to weaken here, so the
//! mutation self-test for this protocol exercises the split instead.

use crate::{MemOrder, Model};

/// How the counter bump is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rmw {
    /// The shipped `fetch_add(1, Relaxed)`.
    Atomic,
    /// The mutation: a Relaxed load followed by a Relaxed store of
    /// `v + 1` — no longer one indivisible read-modify-write.
    SplitLoadStore,
}

/// Two threads each drawing one tag. Invariant: the tags are distinct.
pub fn model(rmw: Rmw) -> Model {
    let mut m = Model::new("tag_allocator");
    let next = m.atomic_u64("next_tag", 0);

    for name in ["worker_a", "worker_b"] {
        m.thread(name, move |t| {
            let tag = match rmw {
                Rmw::Atomic => next.fetch_add(t, 1, MemOrder::Relaxed),
                Rmw::SplitLoadStore => {
                    let v = next.load(t, MemOrder::Relaxed);
                    next.store(t, v + 1, MemOrder::Relaxed);
                    v
                }
            };
            t.observe("tag", tag);
        });
    }

    m.invariant(move |leaf| {
        let tags = leaf.observed("tag");
        for (i, a) in tags.iter().enumerate() {
            if tags[i + 1..].contains(a) {
                return Err(format!("duplicate tag allocated: {a}"));
            }
        }
        Ok(())
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_atomic_rmw_allocates_unique_tags() {
        let report = model(Rmw::Atomic).check();
        report.assert_clean();
        assert!(report.executions > 1);
    }
}
