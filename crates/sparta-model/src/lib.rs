//! # sparta-model — exhaustive weak-memory model checking
//!
//! A loom-style checker for the cross-thread protocols the rest of the
//! workspace *claims* are correct in `// ordering:` comments. Modelled
//! primitives ([`ModelAtomicU64`], [`ModelAtomicPtr`], [`ModelMutex`],
//! [`ModelCondvar`]) route every access through a view-based
//! operational semantics of C11 release/acquire ([`mem`]), and an
//! exhaustive schedule explorer ([`Model::check`]) enumerates every
//! interleaving *and every stale read the memory model permits*,
//! asserting the model's invariants on each leaf. A failing
//! interleaving comes back as a decision string that [`Model::replay`]
//! re-executes deterministically.
//!
//! The crate closes the loop with `sparta-lint`: every `// ordering:`
//! justification in the workspace must name a model in this crate via
//! a `model: <name>` tag, so an ordering claim without a machine check
//! is a lint violation. The shipped models live in [`protocols`]; each
//! is an instruction-level port of a real protocol (JobQueue
//! completion, the seqlock event ring, DocSlab score publication, the
//! admission gate, server lifecycle flags, the scheduler tag
//! allocator) with its DESIGN.md invariant attached, plus *mutation*
//! variants proving the checker actually detects a weakened ordering.
//!
//! ```
//! use sparta_model::{MemOrder, Model};
//!
//! let mut m = Model::new("doc_example_message_passing");
//! let data = m.atomic_u64("data", 0);
//! let flag = m.atomic_u64("flag", 0);
//! m.thread("writer", move |t| {
//!     data.store(t, 1, MemOrder::Relaxed);
//!     flag.store(t, 1, MemOrder::Release);
//! });
//! m.thread("reader", move |t| {
//!     if flag.load(t, MemOrder::Acquire) == 1 {
//!         t.observe("data_seen", data.load(t, MemOrder::Relaxed));
//!     }
//! });
//! m.invariant(move |leaf| {
//!     if leaf.observed("data_seen").iter().all(|&v| v == 1) {
//!         Ok(())
//!     } else {
//!         Err("reader saw the flag but stale data".to_string())
//!     }
//! });
//! m.check().assert_clean();
//! ```

#![forbid(unsafe_code)]

mod exec;
mod mem;
mod model;
pub mod protocols;

pub use exec::ThreadCtx;
pub use mem::MemOrder;
pub use model::{
    CheckReport, Leaf, Model, ModelAtomicPtr, ModelAtomicU64, ModelCondvar, ModelMutex, Violation,
};

#[cfg(test)]
mod litmus {
    use super::*;

    /// Message passing with a Relaxed flag load: the stale-data leaf
    /// must be *found*, and its schedule must replay to the same
    /// violation. This is the test that proves the checker is not
    /// vacuously green.
    #[test]
    fn relaxed_message_passing_violation_is_found_and_replays() {
        let mut m = Model::new("litmus_mp_relaxed");
        let data = m.atomic_u64("data", 0);
        let flag = m.atomic_u64("flag", 0);
        m.thread("writer", move |t| {
            data.store(t, 1, MemOrder::Relaxed);
            flag.store(t, 1, MemOrder::Release);
        });
        m.thread("reader", move |t| {
            if flag.load(t, MemOrder::Relaxed) == 1 {
                t.observe("data_seen", data.load(t, MemOrder::Relaxed));
            }
        });
        m.invariant(move |leaf| {
            if leaf.observed("data_seen").iter().all(|&v| v == 1) {
                Ok(())
            } else {
                Err("reader saw flag=1 but data=0".to_string())
            }
        });
        let report = m.check();
        assert!(report.violations > 0, "stale read never explored");
        assert!(report.executions > report.violations);
        let v = report.first_violation.expect("violation recorded");
        let replayed = m.replay(&v.schedule).expect("replay hits the violation");
        assert_eq!(
            replayed, v.message,
            "schedule must replay to the same violation"
        );
        assert!(replayed.starts_with("reader saw flag=1 but data=0"));
    }

    /// The same shape with a proper Release/Acquire pair is clean.
    #[test]
    fn release_acquire_message_passing_is_clean() {
        let mut m = Model::new("litmus_mp_release_acquire");
        let data = m.atomic_u64("data", 0);
        let flag = m.atomic_u64("flag", 0);
        m.thread("writer", move |t| {
            data.store(t, 1, MemOrder::Relaxed);
            flag.store(t, 1, MemOrder::Release);
        });
        m.thread("reader", move |t| {
            if flag.load(t, MemOrder::Acquire) == 1 {
                t.observe("data_seen", data.load(t, MemOrder::Relaxed));
            }
        });
        m.invariant(move |leaf| {
            if leaf.observed("data_seen").iter().all(|&v| v == 1) {
                Ok(())
            } else {
                Err("acquire reader saw stale data".to_string())
            }
        });
        let report = m.check();
        report.assert_clean();
        assert!(report.executions > 1, "explorer found only one schedule");
    }

    /// Store buffering: with only release/acquire (no SeqCst in this
    /// workspace), both threads may read 0 — a behavior *no*
    /// interleaving-only model exhibits. The checker must reach it.
    #[test]
    fn store_buffering_both_zero_is_reachable() {
        let mut m = Model::new("litmus_store_buffering");
        let x = m.atomic_u64("x", 0);
        let y = m.atomic_u64("y", 0);
        m.thread("left", move |t| {
            x.store(t, 1, MemOrder::Release);
            t.observe("r1", y.load(t, MemOrder::Acquire));
        });
        m.thread("right", move |t| {
            y.store(t, 1, MemOrder::Release);
            t.observe("r2", x.load(t, MemOrder::Acquire));
        });
        // Deliberately inverted: "violations" here *count* the weak
        // outcome, proving the model is weaker than interleaving
        // semantics.
        m.invariant(move |leaf| {
            let r1 = leaf.observed("r1");
            let r2 = leaf.observed("r2");
            if r1 == [0] && r2 == [0] {
                Err("both-zero outcome".to_string())
            } else {
                Ok(())
            }
        });
        let report = m.check();
        assert!(
            report.violations > 0,
            "store-buffering outcome unreachable — model is accidentally SC"
        );
    }

    /// A thread that parks with nobody left to notify is a wedge, and
    /// wedges are violations (this is the lost-wakeup detector).
    #[test]
    fn parked_forever_is_reported_as_wedge() {
        let mut m = Model::new("litmus_wedge");
        let mu = m.mutex();
        let cv = m.condvar();
        m.thread("sleeper", move |t| {
            mu.lock(t);
            cv.wait(t, mu);
            mu.unlock(t);
        });
        let report = m.check();
        assert_eq!(report.violations, report.executions);
        let v = report.first_violation.expect("wedge recorded");
        assert!(v.message.contains("wedged"), "{}", v.message);
        assert!(m.replay(&v.schedule).is_some());
    }

    /// Two lockers with no unlock deadlock; the second is stuck.
    #[test]
    fn double_lock_deadlocks() {
        let mut m = Model::new("litmus_deadlock");
        let mu = m.mutex();
        m.thread("a", move |t| {
            mu.lock(t);
        });
        m.thread("b", move |t| {
            mu.lock(t);
            mu.unlock(t);
        });
        let report = m.check();
        assert!(report.violations > 0, "deadlock not detected");
    }

    /// Model-thread panics surface as violations, not test aborts.
    #[test]
    fn thread_panic_is_a_violation() {
        let mut m = Model::new("litmus_panic");
        let x = m.atomic_u64("x", 0);
        m.thread("assertive", move |t| {
            assert_eq!(x.load(t, MemOrder::Relaxed), 1, "x must be 1");
        });
        let report = m.check();
        assert_eq!(report.violations, report.executions);
        assert!(report
            .first_violation
            .expect("panic recorded")
            .message
            .contains("panicked"));
    }

    /// The preemption bound prunes (truncated flag) but keeps the
    /// serial schedules.
    #[test]
    fn preemption_bound_prunes_loudly() {
        let mut m = Model::new("litmus_preemption_bound");
        let x = m.atomic_u64("x", 0);
        m.thread("a", move |t| {
            x.fetch_add(t, 1, MemOrder::AcqRel);
            x.fetch_add(t, 1, MemOrder::AcqRel);
        });
        m.thread("b", move |t| {
            x.fetch_add(t, 1, MemOrder::AcqRel);
            x.fetch_add(t, 1, MemOrder::AcqRel);
        });
        m.invariant(move |leaf| {
            if leaf.value(x) == 4 {
                Ok(())
            } else {
                Err(format!("lost update: {}", leaf.value(x)))
            }
        });
        let full = m.check();
        assert!(!full.truncated);
        assert_eq!(full.violations, 0);
        m.preemption_bound(0);
        let bounded = m.check();
        assert!(bounded.truncated, "bound 0 must prune");
        assert!(bounded.executions < full.executions);
        assert_eq!(bounded.violations, 0);
    }
}
