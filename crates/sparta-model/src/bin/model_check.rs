//! The CI `model-check` entry point: exhaustively verify every shipped
//! protocol model, re-prove the Legacy-wedges golden regression, and
//! hold the whole suite to a wall-clock budget.
//!
//! Exit codes: 0 suite green, 1 a model violated its invariant (or a
//! golden expectation failed), 2 budget exceeded or exploration
//! truncated.
//!
//! ```text
//! model-check [--budget-secs N]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use sparta_model::protocols::{job_queue, Mutation};

const DEFAULT_BUDGET_SECS: u64 = 120;

fn main() {
    let mut budget_secs = DEFAULT_BUDGET_SECS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget-secs" => {
                let v = args.next().unwrap_or_default();
                budget_secs = v.parse().unwrap_or_else(|_| {
                    eprintln!("model-check: bad --budget-secs value {v:?}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("model-check: unknown argument {other:?}");
                eprintln!("usage: model-check [--budget-secs N]");
                std::process::exit(2);
            }
        }
    }

    let started = Instant::now();
    let mut failed = false;
    let mut truncated = false;
    let mut total_execs = 0usize;
    let mut total_steps = 0u64;

    println!("model-check: exhaustive weak-memory verification");
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "model", "executions", "steps", "verdict"
    );
    for m in sparta_model::protocols::all_shipped() {
        let report = m.check();
        total_execs += report.executions;
        total_steps += report.steps;
        truncated |= report.truncated;
        let verdict = if report.violations > 0 {
            failed = true;
            "VIOLATED"
        } else if report.truncated {
            "TRUNCATED"
        } else {
            "ok"
        };
        println!(
            "{:<24} {:>12} {:>12} {:>10}",
            m.name(),
            report.executions,
            report.steps,
            verdict
        );
        if let Some(v) = report.first_violation {
            eprintln!("  schedule: {}", v.schedule);
            eprintln!("  {}", v.message);
        }
    }

    // Golden regression: the Legacy finish protocol (pre-lock-bridge)
    // must still wedge — if it stops wedging, the checker has lost the
    // bug class that motivated it.
    let legacy = job_queue::model(job_queue::Variant::Legacy, Mutation::None).check();
    total_execs += legacy.executions;
    total_steps += legacy.steps;
    let legacy_ok = legacy.violations > 0 && legacy.executions > legacy.violations;
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "job_queue (legacy)",
        legacy.executions,
        legacy.steps,
        if legacy_ok { "wedges" } else { "LOST-BUG" }
    );
    if !legacy_ok {
        eprintln!("model-check: golden regression failed: Legacy no longer wedges");
        failed = true;
    }

    let elapsed = started.elapsed();
    println!(
        "total: {total_execs} executions, {total_steps} steps in {:.2}s (budget {budget_secs}s)",
        elapsed.as_secs_f64()
    );

    if failed {
        std::process::exit(1);
    }
    if truncated {
        eprintln!("model-check: a model was truncated; exhaustiveness lost");
        std::process::exit(2);
    }
    if elapsed.as_secs() > budget_secs {
        eprintln!("model-check: suite exceeded its wall-clock budget");
        std::process::exit(2);
    }
    println!("model-check: all protocols verified over every interleaving");
}
