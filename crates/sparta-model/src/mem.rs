//! The weak-memory substrate: a view-based operational model of C11
//! release/acquire atomics.
//!
//! A naive store-buffer (TSO) simulation cannot do this job: TSO is
//! strictly stronger than C11 Relaxed, so flipping an `Acquire` load to
//! `Relaxed` would change nothing and every mutation self-test would be
//! vacuous. Instead each location keeps its full *modification order*
//! as an append-only message history, and each thread carries a *view*:
//! a per-location timestamp floor below which it can no longer read.
//!
//! - A **store** appends a message. A `Release` store attaches the
//!   writer's current view to the message; a `Relaxed` store attaches
//!   only the view captured by the last `Release` **fence** (empty if
//!   none) plus its own coordinate.
//! - A **load** may read *any* message at or above the thread's floor
//!   for that location — this is where stale reads, and therefore every
//!   interesting weak behavior, come from. An `Acquire` load joins the
//!   message's attached view into the thread's view; a `Relaxed` load
//!   banks it in `acq_pending`, to be claimed by a later `Acquire`
//!   fence.
//! - An **RMW** reads the latest message (atomicity) and its new
//!   message always inherits the previous message's attached view —
//!   that is the release-sequence rule the `DocSlab` running sum and
//!   the `JobQueue` outstanding counter lean on.
//!
//! This is the release/acquire fragment of the promising/operational
//! semantics family (no promises, no SC accesses — the workspace lint
//! forbids `SeqCst` outright, so the checker does not model it).

/// Timestamp into one location's modification order (index into its
/// message history; 0 is the initialization message).
pub(crate) type Ts = usize;

/// A per-location timestamp vector. `stamps[loc]` is the floor: this
/// thread can only read messages of `loc` with `ts >= stamps[loc]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct View {
    stamps: Vec<Ts>,
}

impl View {
    pub(crate) fn new(locs: usize) -> Self {
        View {
            stamps: vec![0; locs],
        }
    }

    pub(crate) fn get(&self, loc: usize) -> Ts {
        self.stamps[loc]
    }

    pub(crate) fn raise(&mut self, loc: usize, ts: Ts) {
        if self.stamps[loc] < ts {
            self.stamps[loc] = ts;
        }
    }

    /// Pointwise maximum — the lattice join all synchronization
    /// reduces to.
    pub(crate) fn join(&mut self, other: &View) {
        for (s, o) in self.stamps.iter_mut().zip(&other.stamps) {
            if *s < *o {
                *s = *o;
            }
        }
    }
}

/// One message in a location's modification order.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    pub(crate) val: u64,
    pub(crate) ts: Ts,
    /// The view a reader synchronizes with when it acquires this
    /// message (the writer's view for Release stores; the fence view
    /// for Relaxed stores; inherited along release sequences for RMWs).
    pub(crate) view: View,
}

/// One atomic location: its name (for traces) and message history.
#[derive(Debug)]
pub(crate) struct Loc {
    pub(crate) name: &'static str,
    pub(crate) hist: Vec<Msg>,
}

impl Loc {
    pub(crate) fn new(name: &'static str, init: u64, locs: usize) -> Self {
        Loc {
            name,
            hist: vec![Msg {
                val: init,
                ts: 0,
                view: View::new(locs),
            }],
        }
    }

    pub(crate) fn latest(&self) -> &Msg {
        self.hist.last().expect("history never empty")
    }
}

/// The ordering vocabulary the modelled primitives accept.
///
/// Deliberately *not* `std::sync::atomic::Ordering`: model code must
/// stay invisible to sparta-lint's `Ordering::*` audit (the checker is
/// the thing ordering claims appeal to, not another claimant), and the
/// workspace policy bans `SeqCst`, so the model does not offer it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrder {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
}

impl MemOrder {
    pub(crate) fn acquires(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel)
    }

    pub(crate) fn releases(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel)
    }
}

/// One thread's memory state.
#[derive(Debug, Clone)]
pub(crate) struct ThreadMem {
    /// Current view: per-location read floors plus everything this
    /// thread has synchronized with.
    pub(crate) cur: View,
    /// View captured at the last `Release` fence; attached to
    /// subsequent Relaxed stores.
    pub(crate) fence_rel: View,
    /// Views banked by Relaxed loads, claimed by an `Acquire` fence.
    pub(crate) acq_pending: View,
}

impl ThreadMem {
    pub(crate) fn new(locs: usize) -> Self {
        ThreadMem {
            cur: View::new(locs),
            fence_rel: View::new(locs),
            acq_pending: View::new(locs),
        }
    }

    /// Message indices of `loc` this thread is allowed to read.
    pub(crate) fn readable(&self, loc: &Loc, id: usize) -> Vec<usize> {
        let floor = self.cur.get(id);
        (floor..loc.hist.len()).collect()
    }

    /// Applies a load of message index `k` from `loc`.
    pub(crate) fn load(&mut self, loc: &Loc, id: usize, k: usize, ord: MemOrder) -> u64 {
        let msg = &loc.hist[k];
        self.cur.raise(id, msg.ts);
        if ord.acquires() {
            self.cur.join(&msg.view);
        } else {
            self.acq_pending.join(&msg.view);
        }
        msg.val
    }

    /// Applies a store of `val`, appending the new message.
    pub(crate) fn store(&mut self, loc: &mut Loc, id: usize, val: u64, ord: MemOrder) {
        let ts = loc.hist.len();
        self.cur.raise(id, ts);
        let view = if ord.releases() {
            self.cur.clone()
        } else {
            let mut v = self.fence_rel.clone();
            v.raise(id, ts);
            v
        };
        loc.hist.push(Msg { val, ts, view });
    }

    /// Applies an RMW computing `f(old)`, reading the latest message
    /// and appending adjacently. Returns the old value.
    pub(crate) fn rmw(
        &mut self,
        loc: &mut Loc,
        id: usize,
        ord: MemOrder,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let (old_val, old_view, old_ts) = {
            let m = loc.latest();
            (m.val, m.view.clone(), m.ts)
        };
        self.cur.raise(id, old_ts);
        if ord.acquires() {
            self.cur.join(&old_view);
        } else {
            self.acq_pending.join(&old_view);
        }
        let ts = loc.hist.len();
        self.cur.raise(id, ts);
        // Release sequence: the new message carries the previous
        // message's view even when this RMW itself is not a release —
        // an Acquire reader of the new message still synchronizes with
        // the head of the sequence.
        let mut view = old_view;
        if ord.releases() {
            view.join(&self.cur);
        } else {
            view.join(&self.fence_rel);
        }
        view.raise(id, ts);
        loc.hist.push(Msg {
            val: f(old_val),
            ts,
            view,
        });
        old_val
    }

    pub(crate) fn fence(&mut self, ord: MemOrder) {
        if ord.acquires() {
            let pending = self.acq_pending.clone();
            self.cur.join(&pending);
        }
        if ord.releases() {
            self.fence_rel = self.cur.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<Loc>, ThreadMem, ThreadMem) {
        let locs = vec![Loc::new("data", 0, 2), Loc::new("flag", 0, 2)];
        (locs, ThreadMem::new(2), ThreadMem::new(2))
    }

    #[test]
    fn message_passing_release_acquire() {
        let (mut locs, mut w, mut r) = setup();
        // Writer: data = 1 (Relaxed); flag = 1 (Release).
        {
            let (d, rest) = locs.split_at_mut(1);
            w.store(&mut d[0], 0, 1, MemOrder::Relaxed);
            w.store(&mut rest[0], 1, 1, MemOrder::Release);
        }
        // Reader acquires flag = 1: the data floor must rise, so the
        // stale data message becomes unreadable.
        let v = r.load(&locs[1], 1, 1, MemOrder::Acquire);
        assert_eq!(v, 1);
        assert_eq!(
            r.readable(&locs[0], 0),
            vec![1],
            "stale data must be unreadable after the acquire"
        );
    }

    #[test]
    fn relaxed_load_leaves_stale_data_readable() {
        let (mut locs, mut w, mut r) = setup();
        {
            let (d, rest) = locs.split_at_mut(1);
            w.store(&mut d[0], 0, 1, MemOrder::Relaxed);
            w.store(&mut rest[0], 1, 1, MemOrder::Release);
        }
        let v = r.load(&locs[1], 1, 1, MemOrder::Relaxed);
        assert_eq!(v, 1);
        assert_eq!(
            r.readable(&locs[0], 0),
            vec![0, 1],
            "Relaxed must not synchronize"
        );
        // ...until an Acquire fence claims the banked view.
        r.fence(MemOrder::Acquire);
        assert_eq!(r.readable(&locs[0], 0), vec![1]);
    }

    #[test]
    fn release_fence_protects_subsequent_relaxed_store() {
        let (mut locs, mut w, mut r) = setup();
        {
            let (d, rest) = locs.split_at_mut(1);
            w.store(&mut d[0], 0, 1, MemOrder::Relaxed);
            w.fence(MemOrder::Release);
            w.store(&mut rest[0], 1, 1, MemOrder::Relaxed);
        }
        let v = r.load(&locs[1], 1, 1, MemOrder::Acquire);
        assert_eq!(v, 1);
        assert_eq!(r.readable(&locs[0], 0), vec![1]);
    }

    #[test]
    fn rmw_continues_the_release_sequence() {
        let (mut locs, mut w, mut r) = setup();
        {
            let (d, rest) = locs.split_at_mut(1);
            w.store(&mut d[0], 0, 7, MemOrder::Relaxed);
            // Release store of flag=1, then a *Relaxed* RMW bumping it:
            // an Acquire read of the RMW's message must still see data.
            w.store(&mut rest[0], 1, 1, MemOrder::Release);
        }
        let mut other = ThreadMem::new(2);
        other.rmw(&mut locs[1], 1, MemOrder::Relaxed, |v| v + 1);
        let v = r.load(&locs[1], 1, 2, MemOrder::Acquire);
        assert_eq!(v, 2);
        assert_eq!(r.readable(&locs[0], 0), vec![1]);
    }

    #[test]
    fn coherence_forbids_reading_backwards() {
        let (mut locs, mut w, mut r) = setup();
        w.store(&mut locs[0], 0, 1, MemOrder::Relaxed);
        w.store(&mut locs[0], 0, 2, MemOrder::Relaxed);
        let v = r.load(&locs[0], 0, 1, MemOrder::Relaxed);
        assert_eq!(v, 1);
        assert_eq!(
            r.readable(&locs[0], 0),
            vec![1, 2],
            "read-read coherence: the init message is gone"
        );
    }
}
