//! The public checker API: build a [`Model`] out of modelled
//! primitives, thread closures, and invariants; [`Model::check`]
//! explores every interleaving (and every allowed stale read) and
//! reports violations with a replayable schedule.
//!
//! # Exploration
//!
//! Stateless replay-based DFS: each execution re-runs the model's
//! thread closures from scratch, following a *decision string* — at
//! every scheduling step with more than one enabled (thread,
//! read-candidate) alternative, the string says which to take.
//! Backtracking increments the last non-exhausted decision and re-runs.
//! Steps with a single alternative are collapsed (not recorded), so
//! schedules stay short and the leaf count equals the number of
//! genuinely distinct interleaving/read combinations.
//!
//! This is honest exhaustive enumeration at visible-operation
//! granularity, not DPOR: sound dynamic partial-order reduction must
//! treat a load as conflicting with *future* stores (delaying a load
//! can only add read candidates), and a hand-rolled persistent-set
//! pruner that gets that subtlety wrong silently drops interleavings —
//! the one failure mode a checker of last resort cannot have. The
//! models this crate ships are small enough (≤ a few thousand leaves)
//! that brute force stays well under a second; an optional
//! [`Model::preemption_bound`] is the documented fallback for larger
//! models, and it over-approximates *pruning* loudly via
//! [`CheckReport::truncated`].

use crate::exec::{
    Choice, CvSt, Exec, ExecAbort, ExecSt, MutexSt, Op, RmwKind, Status, ThreadCtx, ThreadSt,
};
use crate::mem::{Loc, MemOrder, ThreadMem, View};
use std::sync::{Arc, Condvar, Mutex};

type Body = Arc<dyn Fn(&ThreadCtx) + Send + Sync + 'static>;
type Invariant = Arc<dyn Fn(&Leaf) -> Result<(), String> + Send + Sync + 'static>;

/// Handle to a modelled 64-bit atomic. Copy — capture it by value in
/// thread closures.
#[derive(Debug, Clone, Copy)]
pub struct ModelAtomicU64 {
    pub(crate) loc: usize,
}

impl ModelAtomicU64 {
    pub fn load(&self, t: &ThreadCtx, ord: MemOrder) -> u64 {
        t.exec.visible(t.tid, Op::Load { loc: self.loc, ord })
    }

    pub fn store(&self, t: &ThreadCtx, val: u64, ord: MemOrder) {
        t.exec.visible(
            t.tid,
            Op::Store {
                loc: self.loc,
                val,
                ord,
            },
        );
    }

    pub fn fetch_add(&self, t: &ThreadCtx, operand: u64, ord: MemOrder) -> u64 {
        self.rmw(t, RmwKind::Add, operand, ord)
    }

    pub fn fetch_sub(&self, t: &ThreadCtx, operand: u64, ord: MemOrder) -> u64 {
        self.rmw(t, RmwKind::Sub, operand, ord)
    }

    pub fn swap(&self, t: &ThreadCtx, val: u64, ord: MemOrder) -> u64 {
        self.rmw(t, RmwKind::Swap, val, ord)
    }

    fn rmw(&self, t: &ThreadCtx, kind: RmwKind, operand: u64, ord: MemOrder) -> u64 {
        t.exec.visible(
            t.tid,
            Op::Rmw {
                loc: self.loc,
                kind,
                operand,
                ord,
            },
        )
    }
}

/// Handle to a modelled pointer-width atomic. The workspace forbids
/// `unsafe`, so the model cannot dereference real pointers; a "pointer"
/// here is an opaque u64 token (arena index, tagged id, …) — which is
/// exactly the shape hazard-pointer and epoch publication protocols
/// need checked: who can observe which token, when.
#[derive(Debug, Clone, Copy)]
pub struct ModelAtomicPtr {
    inner: ModelAtomicU64,
}

impl ModelAtomicPtr {
    pub fn load(&self, t: &ThreadCtx, ord: MemOrder) -> u64 {
        self.inner.load(t, ord)
    }

    pub fn store(&self, t: &ThreadCtx, token: u64, ord: MemOrder) {
        self.inner.store(t, token, ord);
    }

    /// The pointer-swing: publish `token`, get the previous one back.
    pub fn swap(&self, t: &ThreadCtx, token: u64, ord: MemOrder) -> u64 {
        self.inner.swap(t, token, ord)
    }
}

/// Handle to a modelled mutex.
///
/// Lock acquisition is scheduler-blocked (the operation is enabled only
/// while the mutex is free) rather than modelled as a spin loop — a
/// spinning acquisition would give the explorer unboundedly many
/// fruitless interleavings. Its *memory* effects stay explicit and
/// weakenable: by default unlock releases the holder's view into the
/// mutex and lock acquires it, and [`Model::mutex_weakened`] builds
/// variants without one or both edges so lock-based protocols are
/// mutation-testable too.
#[derive(Debug, Clone, Copy)]
pub struct ModelMutex {
    pub(crate) id: usize,
}

impl ModelMutex {
    pub fn lock(&self, t: &ThreadCtx) {
        t.exec.visible(t.tid, Op::Lock { m: self.id });
    }

    pub fn unlock(&self, t: &ThreadCtx) {
        t.exec.visible(t.tid, Op::Unlock { m: self.id });
    }
}

/// Handle to a modelled condvar, with guaranteed semantics only: a
/// notify wakes currently-parked threads and is otherwise lost; there
/// are no spurious wakeups. Protocols must be correct without relying
/// on spurious wakeups *or* on notifies reaching not-yet-parked
/// waiters — which is precisely what the PR 5 lost-wakeup bug violated.
#[derive(Debug, Clone, Copy)]
pub struct ModelCondvar {
    pub(crate) id: usize,
}

impl ModelCondvar {
    /// Atomically releases `m` and parks; reacquires `m` before
    /// returning. Call only with `m` held, and only inside a
    /// predicate-rechecking loop (the sparta-lint `condvar-wait` rule
    /// applies to models too).
    pub fn wait(&self, t: &ThreadCtx, m: ModelMutex) {
        t.exec.visible(
            t.tid,
            Op::Wait {
                cv: self.id,
                m: m.id,
            },
        );
    }

    pub fn notify_all(&self, t: &ThreadCtx) {
        t.exec.visible(t.tid, Op::NotifyAll { cv: self.id });
    }
}

struct LocSpec {
    name: &'static str,
    init: u64,
}

struct MutexSpec {
    acq_on_lock: bool,
    rel_on_unlock: bool,
}

struct ThreadSpec {
    name: &'static str,
    body: Body,
}

/// The final state of one fully-terminated execution, handed to
/// invariants.
pub struct Leaf {
    values: Vec<u64>,
    observations: Vec<(usize, &'static str, u64)>,
}

impl Leaf {
    /// The location's final value (tail of its modification order).
    pub fn value(&self, a: ModelAtomicU64) -> u64 {
        self.values[a.loc]
    }

    /// Every value observed under `label`, in observation order.
    pub fn observed(&self, label: &str) -> Vec<u64> {
        self.observations
            .iter()
            .filter(|(_, l, _)| *l == label)
            .map(|&(_, _, v)| v)
            .collect()
    }
}

/// A violated invariant (or wedge/panic) with the decision string that
/// reproduces it via [`Model::replay`].
#[derive(Debug, Clone)]
pub struct Violation {
    pub schedule: String,
    pub message: String,
}

/// Outcome of [`Model::check`].
#[derive(Debug, Clone)]
pub struct CheckReport {
    pub model: String,
    /// Complete executions explored (leaves of the decision tree).
    pub executions: usize,
    /// Visible-operation grants across all executions — the state
    /// count the CI budget reports.
    pub steps: u64,
    /// Leaves that violated an invariant, wedged, or panicked.
    pub violations: usize,
    pub first_violation: Option<Violation>,
    /// True when the exploration stopped at [`Model::max_executions`]
    /// or pruned schedules past the preemption bound.
    pub truncated: bool,
}

impl CheckReport {
    /// Panics with the first counterexample if any leaf violated.
    pub fn assert_clean(&self) {
        if let Some(v) = &self.first_violation {
            panic!(
                "model `{}`: {} violating execution(s) of {}; first: {} (replay schedule: \"{}\")",
                self.model, self.violations, self.executions, v.message, v.schedule
            );
        }
        assert!(
            !self.truncated,
            "model `{}`: exploration truncated — raise max_executions",
            self.model
        );
    }
}

enum LeafKind {
    Ok,
    Violation(String),
}

/// An exhaustive-checkable concurrency model. See the crate docs for a
/// worked example and DESIGN.md §15 for the modelling contract.
pub struct Model {
    name: String,
    locs: Vec<LocSpec>,
    mutexes: Vec<MutexSpec>,
    cvs: usize,
    threads: Vec<ThreadSpec>,
    invariants: Vec<Invariant>,
    max_executions: usize,
    preemption_bound: Option<usize>,
}

impl Model {
    pub fn new(name: &str) -> Model {
        Model {
            name: name.to_string(),
            locs: Vec::new(),
            mutexes: Vec::new(),
            cvs: 0,
            threads: Vec::new(),
            invariants: Vec::new(),
            max_executions: 1_000_000,
            preemption_bound: None,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a modelled atomic with an initial value.
    pub fn atomic_u64(&mut self, name: &'static str, init: u64) -> ModelAtomicU64 {
        self.locs.push(LocSpec { name, init });
        ModelAtomicU64 {
            loc: self.locs.len() - 1,
        }
    }

    /// Declares a modelled pointer-width atomic holding `init` as its
    /// initial token.
    pub fn atomic_ptr(&mut self, name: &'static str, init: u64) -> ModelAtomicPtr {
        ModelAtomicPtr {
            inner: self.atomic_u64(name, init),
        }
    }

    /// Declares a mutex with full release/acquire edges.
    pub fn mutex(&mut self) -> ModelMutex {
        self.mutex_weakened(true, true)
    }

    /// Declares a mutex with configurable memory edges — mutation tests
    /// drop one side to prove the checker notices.
    pub fn mutex_weakened(&mut self, acq_on_lock: bool, rel_on_unlock: bool) -> ModelMutex {
        self.mutexes.push(MutexSpec {
            acq_on_lock,
            rel_on_unlock,
        });
        ModelMutex {
            id: self.mutexes.len() - 1,
        }
    }

    /// Declares a condvar.
    pub fn condvar(&mut self) -> ModelCondvar {
        self.cvs += 1;
        ModelCondvar { id: self.cvs - 1 }
    }

    /// Adds a model thread. The closure re-runs once per explored
    /// execution, so it must be a pure function of the modelled state.
    pub fn thread(
        &mut self,
        name: &'static str,
        body: impl Fn(&ThreadCtx) + Send + Sync + 'static,
    ) {
        self.threads.push(ThreadSpec {
            name,
            body: Arc::new(body),
        });
    }

    /// Adds an invariant checked on the final state of every fully
    /// terminated execution. (Wedged executions — no runnable thread
    /// with threads unfinished — are violations unconditionally.)
    pub fn invariant(&mut self, f: impl Fn(&Leaf) -> Result<(), String> + Send + Sync + 'static) {
        self.invariants.push(Arc::new(f));
    }

    /// Caps the number of explored executions (default one million);
    /// hitting the cap sets [`CheckReport::truncated`].
    pub fn max_executions(&mut self, n: usize) {
        self.max_executions = n;
    }

    /// Bounded-preemption fallback for models too large to enumerate:
    /// at most `n` preemptive context switches per execution. Pruned
    /// schedules set [`CheckReport::truncated`].
    pub fn preemption_bound(&mut self, n: usize) {
        self.preemption_bound = Some(n);
    }

    /// Explores every interleaving and read-candidate combination.
    pub fn check(&self) -> CheckReport {
        let mut report = CheckReport {
            model: self.name.clone(),
            executions: 0,
            steps: 0,
            violations: 0,
            first_violation: None,
            truncated: false,
        };
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let mut trail = Vec::new();
            let (leaf, pruned) = self.run_one(&prefix, Some(&mut trail), &mut report.steps);
            report.executions += 1;
            report.truncated |= pruned;
            if let LeafKind::Violation(message) = leaf {
                report.violations += 1;
                if report.first_violation.is_none() {
                    report.first_violation = Some(Violation {
                        schedule: schedule_string(&trail),
                        message,
                    });
                }
            }
            if report.executions >= self.max_executions {
                report.truncated = true;
                return report;
            }
            // Backtrack: bump the deepest non-exhausted decision.
            loop {
                match trail.pop() {
                    Some((chosen, total)) if chosen + 1 < total => {
                        prefix = trail.iter().map(|&(c, _)| c).collect();
                        prefix.push(chosen + 1);
                        break;
                    }
                    Some(_) => continue,
                    None => return report,
                }
            }
        }
    }

    /// Re-runs the single execution named by a [`Violation::schedule`]
    /// decision string; returns its violation message, or `None` if
    /// that execution is clean.
    pub fn replay(&self, schedule: &str) -> Option<String> {
        let prefix: Vec<usize> = schedule
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse().expect("malformed schedule"))
            .collect();
        let mut steps = 0;
        match self.run_one(&prefix, None, &mut steps) {
            (LeafKind::Violation(m), _) => Some(m),
            (LeafKind::Ok, _) => None,
        }
    }

    /// Runs one execution following `prefix` (then first-alternative),
    /// recording multi-alternative decisions into `trail`. Returns the
    /// leaf outcome and whether the preemption bound pruned anything.
    fn run_one(
        &self,
        prefix: &[usize],
        trail: Option<&mut Vec<(usize, usize)>>,
        steps: &mut u64,
    ) -> (LeafKind, bool) {
        let nlocs = self.locs.len();
        let exec = Arc::new(Exec {
            st: Mutex::new(ExecSt {
                locs: self
                    .locs
                    .iter()
                    .map(|l| Loc::new(l.name, l.init, nlocs))
                    .collect(),
                mutexes: self
                    .mutexes
                    .iter()
                    .map(|m| MutexSt {
                        holder: None,
                        view: View::new(nlocs),
                        acq_on_lock: m.acq_on_lock,
                        rel_on_unlock: m.rel_on_unlock,
                    })
                    .collect(),
                cvs: vec![CvSt::default(); self.cvs],
                threads: self
                    .threads
                    .iter()
                    .map(|_| ThreadSt {
                        status: Status::Running,
                        pending: None,
                        granted: false,
                        abort: false,
                        result: 0,
                        mem: ThreadMem::new(nlocs),
                    })
                    .collect(),
                observations: Vec::new(),
                panic_msg: None,
            }),
            cv: Condvar::new(),
        });

        let mut handles = Vec::with_capacity(self.threads.len());
        for (tid, spec) in self.threads.iter().enumerate() {
            let exec2 = Arc::clone(&exec);
            let body = Arc::clone(&spec.body);
            let name = spec.name;
            let h = std::thread::Builder::new()
                .name(format!("model-{name}"))
                .stack_size(128 * 1024)
                .spawn(move || {
                    let ctx = ThreadCtx {
                        exec: Arc::clone(&exec2),
                        tid,
                    };
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                    let mut st = exec2.st.lock().expect("exec state poisoned");
                    if let Err(payload) = r {
                        if !payload.is::<ExecAbort>() {
                            let msg = panic_text(payload.as_ref());
                            st.panic_msg
                                .get_or_insert(format!("thread `{name}` panicked: {msg}"));
                        }
                    }
                    st.threads[tid].status = Status::Finished;
                    exec2.cv.notify_all();
                })
                .expect("spawn model thread");
            handles.push(h);
        }

        let outcome = self.control(&exec, prefix, trail, steps);

        // Release every still-blocked thread so the joins complete.
        {
            let mut st = exec.st.lock().expect("exec state poisoned");
            for t in &mut st.threads {
                t.abort = true;
            }
            exec.cv.notify_all();
        }
        for h in handles {
            h.join().expect("model thread cleanly joined");
        }
        outcome
    }

    /// The controller loop of one execution.
    fn control(
        &self,
        exec: &Exec,
        prefix: &[usize],
        mut trail: Option<&mut Vec<(usize, usize)>>,
        steps: &mut u64,
    ) -> (LeafKind, bool) {
        let mut pos = 0usize;
        let mut pruned = false;
        let mut preemptions = 0usize;
        let mut last_tid: Option<usize> = None;
        let mut st = exec.st.lock().expect("exec state poisoned");
        loop {
            while st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Running))
            {
                st = exec.cv.wait(st).expect("exec state poisoned");
            }
            if let Some(msg) = st.panic_msg.take() {
                return (LeafKind::Violation(msg), pruned);
            }
            let mut choices = st.choices();
            // Bounded-preemption fallback: once the budget is spent, a
            // thread that is still enabled keeps running.
            if let Some(bound) = self.preemption_bound {
                if let Some(prev) = last_tid {
                    let prev_enabled = choices.iter().any(|c| c.tid == prev);
                    if prev_enabled && preemptions >= bound {
                        let before = choices.len();
                        choices.retain(|c| c.tid == prev);
                        pruned |= choices.len() < before;
                    }
                }
            }
            if choices.is_empty() {
                let all_done = st
                    .threads
                    .iter()
                    .all(|t| matches!(t.status, Status::Finished));
                if !all_done {
                    let stuck: Vec<&str> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| !matches!(t.status, Status::Finished))
                        .map(|(tid, _)| self.threads[tid].name)
                        .collect();
                    return (
                        LeafKind::Violation(format!(
                            "wedged: no runnable thread, but [{}] never finished \
                             (lost wakeup or deadlock)",
                            stuck.join(", ")
                        )),
                        pruned,
                    );
                }
                let leaf = Leaf {
                    values: st.locs.iter().map(|l| l.latest().val).collect(),
                    observations: st.observations.clone(),
                };
                for inv in &self.invariants {
                    if let Err(msg) = inv(&leaf) {
                        let state: Vec<String> = st
                            .locs
                            .iter()
                            .map(|l| format!("{}={}", l.name, l.latest().val))
                            .collect();
                        return (
                            LeafKind::Violation(format!(
                                "{msg} [final state: {}]",
                                state.join(" ")
                            )),
                            pruned,
                        );
                    }
                }
                return (LeafKind::Ok, pruned);
            }
            let idx = if choices.len() == 1 {
                0
            } else {
                let i = prefix.get(pos).copied().unwrap_or(0).min(choices.len() - 1);
                pos += 1;
                if let Some(tr) = trail.as_mut() {
                    tr.push((i, choices.len()));
                }
                i
            };
            let choice: Choice = choices[idx];
            if let Some(prev) = last_tid {
                if prev != choice.tid && choices.iter().any(|c| c.tid == prev) {
                    preemptions += 1;
                }
            }
            last_tid = Some(choice.tid);
            *steps += 1;
            st.apply(choice);
            exec.cv.notify_all();
        }
    }
}

fn schedule_string(trail: &[(usize, usize)]) -> String {
    trail
        .iter()
        .map(|&(c, _)| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}
