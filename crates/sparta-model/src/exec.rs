//! One execution of a model: real OS threads, stepped one visible
//! operation at a time by a controller that owns all shared state.
//!
//! Model threads run their closures on small-stack OS threads. Every
//! modelled operation (atomic access, fence, lock, unlock, wait,
//! notify) is *announced* to the controller and the thread parks until
//! the controller grants it. The controller — the only mutator of the
//! memory/mutex/condvar state — waits until every live thread is
//! parked at an announcement, enumerates the enabled (thread,
//! read-candidate) choices, picks one according to the decision string
//! being explored, applies its effects, and releases that thread to
//! run to its next announcement. Interleaving therefore happens only
//! at visible operations, which is exactly the granularity weak-memory
//! behaviors are defined at.
//!
//! Teardown: when a leaf is reached with threads still blocked (a
//! wedge, or exploration being cut short), the controller sets their
//! abort flags; the announcement wait loop observes the flag and
//! unwinds with the private [`ExecAbort`] payload, which the spawn
//! wrapper swallows. Any *other* panic escaping a model thread is
//! reported as a violation of that execution.

use crate::mem::{Loc, MemOrder, ThreadMem};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to unwind aborted model threads. Raised with
/// `resume_unwind`, so the global panic hook stays silent.
pub(crate) struct ExecAbort;

/// A visible operation announced by a model thread.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Load {
        loc: usize,
        ord: MemOrder,
    },
    Store {
        loc: usize,
        val: u64,
        ord: MemOrder,
    },
    Rmw {
        loc: usize,
        kind: RmwKind,
        operand: u64,
        ord: MemOrder,
    },
    Fence {
        ord: MemOrder,
    },
    Lock {
        m: usize,
    },
    Unlock {
        m: usize,
    },
    Wait {
        cv: usize,
        m: usize,
    },
    NotifyAll {
        cv: usize,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum RmwKind {
    Add,
    Sub,
    Swap,
}

/// Where a model thread currently stands, from the controller's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Executing between visible operations; the controller must wait.
    Running,
    /// Announced an operation and parked, awaiting a grant.
    Ready,
    /// Parked on a modelled condvar (inside a granted `Wait`).
    Parked {
        cv: usize,
        m: usize,
    },
    /// Notified; runnable once the mutex it must reacquire is free.
    WakePending {
        m: usize,
    },
    Finished,
}

pub(crate) struct ThreadSt {
    pub(crate) status: Status,
    pub(crate) pending: Option<Op>,
    pub(crate) granted: bool,
    pub(crate) abort: bool,
    pub(crate) result: u64,
    pub(crate) mem: ThreadMem,
}

#[derive(Debug, Clone)]
pub(crate) struct MutexSt {
    pub(crate) holder: Option<usize>,
    /// View transferred from unlockers to lockers (when the configured
    /// orderings say so — weakened variants exist for mutation tests).
    pub(crate) view: crate::mem::View,
    pub(crate) acq_on_lock: bool,
    pub(crate) rel_on_unlock: bool,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct CvSt {
    pub(crate) parked: Vec<usize>,
}

pub(crate) struct ExecSt {
    pub(crate) locs: Vec<Loc>,
    pub(crate) mutexes: Vec<MutexSt>,
    pub(crate) cvs: Vec<CvSt>,
    pub(crate) threads: Vec<ThreadSt>,
    pub(crate) observations: Vec<(usize, &'static str, u64)>,
    pub(crate) panic_msg: Option<String>,
}

/// Shared handle between the controller and the model threads of one
/// execution.
pub(crate) struct Exec {
    pub(crate) st: Mutex<ExecSt>,
    pub(crate) cv: Condvar,
}

impl Exec {
    /// Thread side: announce `op`, park until granted, return the
    /// operation's result (loaded/old value; 0 for effect-only ops).
    pub(crate) fn visible(&self, tid: usize, op: Op) -> u64 {
        let mut st = self.st.lock().expect("exec state poisoned");
        st.threads[tid].pending = Some(op);
        st.threads[tid].status = Status::Ready;
        self.cv.notify_all();
        loop {
            if st.threads[tid].abort {
                drop(st);
                std::panic::resume_unwind(Box::new(ExecAbort));
            }
            if st.threads[tid].granted {
                break;
            }
            st = self.cv.wait(st).expect("exec state poisoned");
        }
        st.threads[tid].granted = false;
        st.threads[tid].result
    }

    /// Thread side: record an observation for the leaf invariants.
    /// Deliberately *not* a visible operation — observations are the
    /// model's assertion plumbing, not part of the protocol under test.
    pub(crate) fn observe(&self, tid: usize, label: &'static str, val: u64) {
        let mut st = self.st.lock().expect("exec state poisoned");
        st.observations.push((tid, label, val));
    }
}

/// One grantable alternative at a scheduling step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    pub(crate) tid: usize,
    /// For loads: index into the readable-message candidates. 0 for
    /// everything else (including `WakePending` relocks).
    pub(crate) cand: usize,
}

impl ExecSt {
    /// Enumerates every enabled (thread, candidate) alternative, in
    /// deterministic (tid, candidate) order.
    pub(crate) fn choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            match t.status {
                Status::Ready => match t.pending.expect("ready thread has an op") {
                    Op::Load { loc, .. } => {
                        let n = self.threads[tid].mem.readable(&self.locs[loc], loc).len();
                        for cand in 0..n {
                            out.push(Choice { tid, cand });
                        }
                    }
                    Op::Lock { m } => {
                        if self.mutexes[m].holder.is_none() {
                            out.push(Choice { tid, cand: 0 });
                        }
                    }
                    _ => out.push(Choice { tid, cand: 0 }),
                },
                Status::WakePending { m } => {
                    if self.mutexes[m].holder.is_none() {
                        out.push(Choice { tid, cand: 0 });
                    }
                }
                Status::Running | Status::Parked { .. } | Status::Finished => {}
            }
        }
        out
    }

    /// Applies the chosen alternative. Grants the thread (sets it
    /// `Running`) except for `Wait`, which parks it on the condvar.
    pub(crate) fn apply(&mut self, c: Choice) {
        let tid = c.tid;
        if let Status::WakePending { m } = self.threads[tid].status {
            self.lock_mutex(tid, m);
            self.grant(tid, 0);
            return;
        }
        let op = self.threads[tid].pending.expect("granted thread has an op");
        match op {
            Op::Load { loc, ord } => {
                let cands = self.threads[tid].mem.readable(&self.locs[loc], loc);
                let k = cands[c.cand];
                let v = self.threads[tid].mem.load(&self.locs[loc], loc, k, ord);
                self.grant(tid, v);
            }
            Op::Store { loc, val, ord } => {
                let t = &mut self.threads[tid];
                t.mem.store(&mut self.locs[loc], loc, val, ord);
                self.grant(tid, 0);
            }
            Op::Rmw {
                loc,
                kind,
                operand,
                ord,
            } => {
                let t = &mut self.threads[tid];
                let old = t.mem.rmw(&mut self.locs[loc], loc, ord, |v| match kind {
                    RmwKind::Add => v.wrapping_add(operand),
                    RmwKind::Sub => v.wrapping_sub(operand),
                    RmwKind::Swap => operand,
                });
                self.grant(tid, old);
            }
            Op::Fence { ord } => {
                self.threads[tid].mem.fence(ord);
                self.grant(tid, 0);
            }
            Op::Lock { m } => {
                self.lock_mutex(tid, m);
                self.grant(tid, 0);
            }
            Op::Unlock { m } => {
                self.unlock_mutex(tid, m);
                self.grant(tid, 0);
            }
            Op::Wait { cv, m } => {
                // The condvar's atomic release-and-park: one visible
                // step, so no notify can land between them.
                self.unlock_mutex(tid, m);
                self.cvs[cv].parked.push(tid);
                self.threads[tid].status = Status::Parked { cv, m };
            }
            Op::NotifyAll { cv } => {
                // Guaranteed semantics only: a notify wakes currently
                // parked threads and is lost otherwise; no spurious
                // wakeups. The protocols must not need either.
                let parked = std::mem::take(&mut self.cvs[cv].parked);
                for w in parked {
                    let Status::Parked { m, .. } = self.threads[w].status else {
                        unreachable!("parked list entry not parked");
                    };
                    self.threads[w].status = Status::WakePending { m };
                }
                self.grant(tid, 0);
            }
        }
    }

    fn grant(&mut self, tid: usize, result: u64) {
        let t = &mut self.threads[tid];
        t.result = result;
        t.granted = true;
        t.status = Status::Running;
    }

    fn lock_mutex(&mut self, tid: usize, m: usize) {
        let mu = &mut self.mutexes[m];
        assert!(mu.holder.is_none(), "lock granted while held");
        mu.holder = Some(tid);
        if mu.acq_on_lock {
            self.threads[tid].mem.cur.join(&mu.view);
        }
    }

    fn unlock_mutex(&mut self, tid: usize, m: usize) {
        let mu = &mut self.mutexes[m];
        assert_eq!(
            mu.holder,
            Some(tid),
            "model bug: unlock of `{m}` by a non-holder"
        );
        mu.holder = None;
        if mu.rel_on_unlock {
            let cur = self.threads[tid].mem.cur.clone();
            self.mutexes[m].view.join(&cur);
        }
    }
}

/// Client-side handle passed to every model-thread closure.
pub struct ThreadCtx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
}

impl ThreadCtx {
    /// Issues a standalone memory fence.
    pub fn fence(&self, ord: MemOrder) {
        self.exec.visible(self.tid, Op::Fence { ord });
    }

    /// Records a labelled value for the leaf invariants to inspect.
    pub fn observe(&self, label: &'static str, val: u64) {
        self.exec.observe(self.tid, label, val);
    }
}
