//! Wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message is a **frame**: a 4-byte little-endian payload length
//! followed by the payload. The first payload byte is a frame tag;
//! the rest is a fixed little-endian layout per frame kind:
//!
//! ```text
//! Request  = 0x01 · k:u32 · algo_len:u8 · algo:[u8] · nterms:u16 · terms:[u32]
//! Response = 0x02 · query_tag:u64 · nhits:u16 · hits:[(doc:u32, score:u64)]
//!            · elapsed_ns:u64 · postings_scanned:u64 · heap_updates:u64
//!            · cleaner_passes:u64
//! Error    = 0x03 · code:u8 · msg_len:u16 · msg:[u8]  (UTF-8)
//! ```
//!
//! Decoding is total: truncated, oversized, or garbage input yields a
//! [`ProtocolError`], never a panic, and `decode(encode(f)) == f` for
//! every well-formed frame (the round-trip tests sweep all three
//! kinds). Payloads are bounded by [`MAX_PAYLOAD`] so a hostile length
//! prefix cannot make the server allocate gigabytes.

use std::io::{Read, Write};

/// Upper bound on a frame payload, in bytes (1 MiB). A request with
/// the maximum 65 535 terms is ~256 KiB; a response carrying 65 535
/// hits is ~800 KiB. Anything larger is a corrupt or hostile prefix.
pub const MAX_PAYLOAD: usize = 1 << 20;

const TAG_REQUEST: u8 = 0x01;
const TAG_RESPONSE: u8 = 0x02;
const TAG_ERROR: u8 = 0x03;

/// Why a frame could not be read or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The stream ended inside a frame (prefix or payload).
    Truncated,
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The first payload byte is not a known frame tag.
    UnknownTag(u8),
    /// The payload is structurally invalid for its tag.
    Malformed(&'static str),
    /// The transport failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Closed => write!(f, "connection closed"),
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_PAYLOAD}")
            }
            ProtocolError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            ProtocolError::Malformed(why) => write!(f, "malformed frame: {why}"),
            ProtocolError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Server-to-client failure codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control rejected the query (budget and queue full).
    Shed = 1,
    /// The request was syntactically valid but semantically not
    /// servable (k = 0, k beyond the server's cap, …).
    BadRequest = 2,
    /// The requested algorithm name is not registered.
    UnknownAlgorithm = 3,
    /// The query panicked or the server failed internally.
    Internal = 4,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Shed),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::UnknownAlgorithm),
            4 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// One top-k query as sent by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Result-set size.
    pub k: u32,
    /// Algorithm name as registered in `sparta-core` ("sparta",
    /// "pnra", "pbmw", "pjass", …).
    pub algorithm: String,
    /// Query term ids.
    pub terms: Vec<u32>,
}

/// Per-query execution summary returned alongside the hits, so load
/// harnesses can attribute latency to work without a second channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Wall (or logical) duration of the search, in nanoseconds.
    pub elapsed_ns: u64,
    /// Posting-list entries traversed.
    pub postings_scanned: u64,
    /// Successful heap insertions/updates.
    pub heap_updates: u64,
    /// Cleaner passes executed (Sparta only).
    pub cleaner_passes: u64,
}

/// One scored hit on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHit {
    /// Document id.
    pub doc: u32,
    /// Integer score.
    pub score: u64,
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: run one query.
    Request(QueryRequest),
    /// Server → client: the query's results.
    Response {
        /// Tag the scheduler stamped on the query's job queue.
        query_tag: u64,
        /// Hits in rank order.
        hits: Vec<WireHit>,
        /// Execution summary.
        summary: TraceSummary,
    },
    /// Server → client: the query was not answered.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Little-endian cursor over a payload; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ProtocolError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(ProtocolError::Malformed("payload shorter than declared"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after frame"))
        }
    }
}

impl Frame {
    /// Encodes the frame payload (everything after the length prefix).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Request(req) => {
                out.push(TAG_REQUEST);
                out.extend_from_slice(&req.k.to_le_bytes());
                let name = req.algorithm.as_bytes();
                assert!(name.len() <= u8::MAX as usize, "algorithm name too long");
                out.push(name.len() as u8);
                out.extend_from_slice(name);
                assert!(req.terms.len() <= u16::MAX as usize, "too many terms");
                out.extend_from_slice(&(req.terms.len() as u16).to_le_bytes());
                for t in &req.terms {
                    out.extend_from_slice(&t.to_le_bytes());
                }
            }
            Frame::Response {
                query_tag,
                hits,
                summary,
            } => {
                out.push(TAG_RESPONSE);
                out.extend_from_slice(&query_tag.to_le_bytes());
                assert!(hits.len() <= u16::MAX as usize, "too many hits");
                out.extend_from_slice(&(hits.len() as u16).to_le_bytes());
                for h in hits {
                    out.extend_from_slice(&h.doc.to_le_bytes());
                    out.extend_from_slice(&h.score.to_le_bytes());
                }
                out.extend_from_slice(&summary.elapsed_ns.to_le_bytes());
                out.extend_from_slice(&summary.postings_scanned.to_le_bytes());
                out.extend_from_slice(&summary.heap_updates.to_le_bytes());
                out.extend_from_slice(&summary.cleaner_passes.to_le_bytes());
            }
            Frame::Error { code, message } => {
                out.push(TAG_ERROR);
                out.push(*code as u8);
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&msg[..len]);
            }
        }
        debug_assert!(out.len() <= MAX_PAYLOAD);
        out
    }

    /// Encodes the full frame: length prefix plus payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(4 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a frame payload (everything after the length prefix).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, ProtocolError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(ProtocolError::Oversized(payload.len() as u32));
        }
        let mut r = Reader::new(payload);
        let tag = r
            .u8()
            .map_err(|_| ProtocolError::Malformed("empty payload"))?;
        let frame = match tag {
            TAG_REQUEST => {
                let k = r.u32()?;
                let name_len = r.u8()? as usize;
                let name = r.take(name_len)?;
                let algorithm = std::str::from_utf8(name)
                    .map_err(|_| ProtocolError::Malformed("algorithm name not UTF-8"))?
                    .to_string();
                let nterms = r.u16()? as usize;
                let mut terms = Vec::with_capacity(nterms);
                for _ in 0..nterms {
                    terms.push(r.u32()?);
                }
                Frame::Request(QueryRequest {
                    k,
                    algorithm,
                    terms,
                })
            }
            TAG_RESPONSE => {
                let query_tag = r.u64()?;
                let nhits = r.u16()? as usize;
                let mut hits = Vec::with_capacity(nhits);
                for _ in 0..nhits {
                    let doc = r.u32()?;
                    let score = r.u64()?;
                    hits.push(WireHit { doc, score });
                }
                let summary = TraceSummary {
                    elapsed_ns: r.u64()?,
                    postings_scanned: r.u64()?,
                    heap_updates: r.u64()?,
                    cleaner_passes: r.u64()?,
                };
                Frame::Response {
                    query_tag,
                    hits,
                    summary,
                }
            }
            TAG_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)
                    .ok_or(ProtocolError::Malformed("unknown error code"))?;
                let msg_len = r.u16()? as usize;
                let msg = r.take(msg_len)?;
                let message = std::str::from_utf8(msg)
                    .map_err(|_| ProtocolError::Malformed("error message not UTF-8"))?
                    .to_string();
                Frame::Error { code, message }
            }
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Read timeouts tolerated *inside* a frame before giving up. Once a
/// frame has started arriving, a timeout means a slow peer, not an
/// idle connection, so we retry — but boundedly, so a peer that hangs
/// mid-frame cannot pin a handler thread forever (with the server's
/// 50 ms poll interval this is ~10 s).
const MID_FRAME_TIMEOUT_RETRIES: usize = 200;

/// Reads exactly `buf.len()` bytes. `Closed` if the stream ends before
/// the first byte and `at_start` is set, `Truncated` if it ends later.
/// A timeout before the first byte of a frame surfaces as `Io` (the
/// server's idle-poll tick); mid-frame timeouts retry up to
/// [`MID_FRAME_TIMEOUT_RETRIES`].
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], at_start: bool) -> Result<(), ProtocolError> {
    let mut filled = 0;
    let mut timeouts = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_start && filled == 0 {
                    ProtocolError::Closed
                } else {
                    ProtocolError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) && !(at_start && filled == 0) =>
            {
                timeouts += 1;
                if timeouts > MID_FRAME_TIMEOUT_RETRIES {
                    return Err(ProtocolError::Truncated);
                }
            }
            Err(e) => return Err(ProtocolError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Reads one full frame from `r`.
///
/// Returns [`ProtocolError::Closed`] on clean EOF between frames, and
/// [`ProtocolError::Truncated`] when the stream dies mid-frame. Read
/// timeouts surface as [`ProtocolError::Io`] with `WouldBlock` /
/// `TimedOut`; callers that poll a shutdown flag treat those as
/// retryable **only** when no prefix byte has arrived yet (the server
/// loop does exactly this).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtocolError> {
    let mut prefix = [0u8; 4];
    read_full(r, &mut prefix, true)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized(len as u32));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false)?;
    Frame::decode_payload(&payload)
}

/// Writes one full frame to `w` and flushes it.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}
