//! Admission control: a bounded in-flight budget with a bounded FIFO
//! wait queue, shedding everything beyond both.
//!
//! A query's life at the door:
//!
//! ```text
//!             ┌────────── budget free ──────────► Admitted(Permit)
//! try_admit ──┤
//!             ├── budget full, queue has room ──► Queued(QueueSlot)
//!             │        │ head granted a released slot
//!             │        ▼
//!             │     claim / wait ───────────────► Permit
//!             │        │ dropped unclaimed
//!             │        ▼
//!             │     abandoned
//!             └── budget full, queue full ──────► Shed
//! ```
//!
//! [`Permit`] is RAII: dropping it (normal return or unwind) releases
//! the slot, which is handed to the queue head if one is waiting —
//! FIFO, no barging — and counts `completed`. Every decision is
//! recorded in a shared [`ServerMetrics`], and the accounting is exact
//! on every schedule (see `tests/server_admission.rs`): after a drain,
//! `accepted == completed`, `accepted + shed + abandoned == attempts`,
//! and no query is both shed and answered.
//!
//! Locking: one mutex (`gate`) around the whole admission state, never
//! held while blocking and never nested inside another lock, so the
//! controller adds no edges to the workspace lock-order graph.

use parking_lot::{Condvar, Mutex};
use sparta_obs::ServerMetrics;
use std::collections::VecDeque;
use std::sync::Arc;

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queries allowed to execute concurrently (≥ 1).
    pub max_in_flight: usize,
    /// Queries allowed to wait for a slot; 0 disables queueing and
    /// sheds everything beyond the budget.
    pub queue_capacity: usize,
}

impl AdmissionConfig {
    /// A budget of `max_in_flight` with `queue_capacity` waiters.
    pub fn new(max_in_flight: usize, queue_capacity: usize) -> Self {
        assert!(max_in_flight >= 1);
        Self {
            max_in_flight,
            queue_capacity,
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::new(4, 16)
    }
}

/// Mutable admission state, all under the one `gate` mutex.
#[derive(Debug, Default)]
struct Gate {
    /// Slots currently held by permits (or transferred to granted
    /// tickets that have not claimed yet).
    in_flight: usize,
    /// Waiting tickets, FIFO.
    waiting: VecDeque<u64>,
    /// Tickets that inherited a released slot but have not claimed it.
    granted: Vec<u64>,
    /// Next ticket id.
    next_ticket: u64,
}

/// Bounded admission with FIFO queueing and load shedding.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    gate: Mutex<Gate>,
    cv: Condvar,
    metrics: Arc<ServerMetrics>,
}

/// Outcome of a non-blocking admission attempt.
#[derive(Debug)]
pub enum TryAdmit {
    /// A slot was free; run now.
    Admitted(Permit),
    /// The budget is full but the queue had room; claim or wait.
    Queued(QueueSlot),
    /// Budget and queue are both full.
    Shed,
}

impl AdmissionController {
    /// A controller recording into `metrics`.
    pub fn new(cfg: AdmissionConfig, metrics: Arc<ServerMetrics>) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            gate: Mutex::new(Gate::default()),
            cv: Condvar::new(),
            metrics,
        })
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The configured limits.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Current wait-queue depth (waiting, not yet granted).
    pub fn queue_depth(&self) -> usize {
        self.gate.lock().waiting.len()
    }

    /// Slots currently held (including granted-but-unclaimed ones).
    pub fn in_flight(&self) -> usize {
        self.gate.lock().in_flight
    }

    /// Non-blocking admission. Deterministic: the outcome depends only
    /// on the controller's state at the instant the gate is taken.
    pub fn try_admit(self: &Arc<Self>) -> TryAdmit {
        let mut g = self.gate.lock();
        if g.in_flight < self.cfg.max_in_flight {
            g.in_flight += 1;
            let now = g.in_flight as u64;
            drop(g);
            self.metrics.in_flight_highwater.observe(now);
            self.metrics.accepted.incr();
            TryAdmit::Admitted(Permit {
                ctrl: Arc::clone(self),
            })
        } else if g.waiting.len() < self.cfg.queue_capacity {
            let ticket = g.next_ticket;
            g.next_ticket += 1;
            g.waiting.push_back(ticket);
            let depth = g.waiting.len() as u64;
            drop(g);
            self.metrics.queue_depth_highwater.observe(depth);
            self.metrics.queued.incr();
            TryAdmit::Queued(QueueSlot {
                ctrl: Arc::clone(self),
                ticket,
                claimed: false,
            })
        } else {
            drop(g);
            self.metrics.shed.incr();
            TryAdmit::Shed
        }
    }

    /// Blocking admission: waits in the queue if needed. `None` means
    /// the query was shed.
    pub fn admit(self: &Arc<Self>) -> Option<Permit> {
        match self.try_admit() {
            TryAdmit::Admitted(p) => Some(p),
            TryAdmit::Queued(slot) => Some(slot.wait()),
            TryAdmit::Shed => None,
        }
    }

    /// Releases one slot: hands it to the queue head if anyone waits,
    /// otherwise frees it. Shared by permit drop and the abandonment
    /// path of a granted-but-unclaimed slot.
    fn release_slot(&self) {
        let mut g = self.gate.lock();
        if let Some(next) = g.waiting.pop_front() {
            // The slot transfers to the head ticket: `in_flight` is
            // unchanged because the grantee now owns it.
            g.granted.push(next);
        } else {
            debug_assert!(g.in_flight >= 1);
            g.in_flight -= 1;
        }
        drop(g);
        self.cv.notify_all();
    }
}

/// An execution slot. Dropping it releases the slot (handing it to the
/// queue head if one waits) and counts the query as completed — RAII,
/// so a panicking query still releases on unwind.
#[derive(Debug)]
pub struct Permit {
    ctrl: Arc<AdmissionController>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.ctrl.release_slot();
        self.ctrl.metrics.completed.incr();
    }
}

/// A position in the wait queue. Exactly one of three things happens
/// to it: it is claimed into a [`Permit`] (non-blocking `try_claim` or
/// blocking `wait`), or it is dropped unclaimed and counted as
/// abandoned.
#[derive(Debug)]
pub struct QueueSlot {
    ctrl: Arc<AdmissionController>,
    ticket: u64,
    claimed: bool,
}

impl QueueSlot {
    fn into_permit(mut self) -> Permit {
        self.claimed = true;
        let ctrl = Arc::clone(&self.ctrl);
        ctrl.metrics.accepted.incr();
        Permit { ctrl }
    }

    /// Non-blocking: claims the slot if a release has granted it to
    /// this ticket. Used by the deterministic admission tests, which
    /// poll instead of parking.
    pub fn try_claim(self) -> Result<Permit, QueueSlot> {
        let granted = {
            let mut g = self.ctrl.gate.lock();
            match g.granted.iter().position(|&t| t == self.ticket) {
                Some(i) => {
                    g.granted.swap_remove(i);
                    true
                }
                None => false,
            }
        };
        if granted {
            Ok(self.into_permit())
        } else {
            Err(self)
        }
    }

    /// Blocks until the slot is granted, then claims it.
    pub fn wait(self) -> Permit {
        {
            let mut g = self.ctrl.gate.lock();
            loop {
                if let Some(i) = g.granted.iter().position(|&t| t == self.ticket) {
                    g.granted.swap_remove(i);
                    break;
                }
                self.ctrl.cv.wait(&mut g);
            }
        }
        self.into_permit()
    }
}

impl Drop for QueueSlot {
    fn drop(&mut self) {
        if self.claimed {
            return;
        }
        // Abandoned. Either still waiting (just leave the queue) or
        // already granted a slot (give the slot back like a permit
        // would, but count abandoned instead of accepted/completed).
        let granted = {
            let mut g = self.ctrl.gate.lock();
            if let Some(i) = g.waiting.iter().position(|&t| t == self.ticket) {
                g.waiting.remove(i);
                false
            } else if let Some(i) = g.granted.iter().position(|&t| t == self.ticket) {
                g.granted.swap_remove(i);
                true
            } else {
                // Unreachable: an unclaimed ticket is in exactly one
                // of the two sets. Count nothing rather than panic in
                // a destructor.
                return;
            }
        };
        if granted {
            self.ctrl.release_slot();
        }
        self.ctrl.metrics.abandoned.incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(max_in_flight: usize, queue: usize) -> Arc<AdmissionController> {
        AdmissionController::new(
            AdmissionConfig::new(max_in_flight, queue),
            ServerMetrics::new(),
        )
    }

    #[test]
    fn admits_up_to_budget_then_queues_then_sheds() {
        let c = ctrl(2, 1);
        let p1 = match c.try_admit() {
            TryAdmit::Admitted(p) => p,
            other => panic!("expected admit, got {other:?}"),
        };
        let _p2 = match c.try_admit() {
            TryAdmit::Admitted(p) => p,
            other => panic!("expected admit, got {other:?}"),
        };
        let slot = match c.try_admit() {
            TryAdmit::Queued(s) => s,
            other => panic!("expected queue, got {other:?}"),
        };
        assert!(matches!(c.try_admit(), TryAdmit::Shed));
        // Releasing a permit grants the queued ticket, FIFO.
        drop(p1);
        let slot = match slot.try_claim() {
            Ok(p) => {
                drop(p);
                None
            }
            Err(s) => Some(s),
        };
        assert!(slot.is_none(), "released slot must grant the queue head");
        let s = c.metrics().snapshot();
        assert_eq!(s.accepted, 3);
        assert_eq!(s.queued, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.abandoned, 0);
    }

    #[test]
    fn abandoned_waiting_slot_counts_and_frees_nothing() {
        let c = ctrl(1, 2);
        let p = c.admit().expect("first query admitted");
        let slot = match c.try_admit() {
            TryAdmit::Queued(s) => s,
            other => panic!("expected queue, got {other:?}"),
        };
        drop(slot); // abandon while still waiting
        drop(p);
        let s = c.metrics().snapshot();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.queue_depth(), 0);
    }

    #[test]
    fn abandoned_granted_slot_releases_its_inherited_slot() {
        let c = ctrl(1, 1);
        let p = c.admit().expect("admitted");
        let slot = match c.try_admit() {
            TryAdmit::Queued(s) => s,
            other => panic!("expected queue, got {other:?}"),
        };
        drop(p); // grants the slot to `slot`
        drop(slot); // abandoned after grant: must free the slot
        assert_eq!(c.in_flight(), 0);
        let s = c.metrics().snapshot();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.abandoned, 1);
        // The freed slot is usable again.
        assert!(matches!(c.try_admit(), TryAdmit::Admitted(_)));
    }

    #[test]
    fn permit_release_on_unwind() {
        let c = ctrl(1, 0);
        let c2 = Arc::clone(&c);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _p = c2.admit().expect("admitted");
            panic!("query died");
        }));
        assert!(r.is_err());
        assert_eq!(c.in_flight(), 0, "unwind must release the slot");
        assert_eq!(c.metrics().snapshot().completed, 1);
    }
}
