//! The TCP frontend: accept loop, per-connection handlers, clean
//! shutdown.
//!
//! One thread accepts connections; each connection gets a handler
//! thread that reads framed requests and answers through the shared
//! [`BatchScheduler`](crate::BatchScheduler). Shutdown is cooperative:
//! [`ServerHandle::shutdown`] raises a flag, pokes the accept loop
//! with a throwaway connection, and joins every thread — no detached
//! threads survive, so the stall watchdog stays quiet after a test.
//!
//! Handlers poll the shutdown flag between frames via a short read
//! timeout; an idle connection therefore notices shutdown within
//! [`POLL_INTERVAL`] without any wall-clock dependence in the hot
//! path (this crate is outside the core wall-clock lint scope — the
//! timeout exists only at the transport edge).

use crate::protocol::{read_frame, write_frame, ErrorCode, Frame, ProtocolError};
use crate::scheduler::BatchScheduler;
use parking_lot::Mutex;
use sparta_obs::ServerMetrics;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle connection re-checks the shutdown flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running query server. Dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    scheduler: Arc<BatchScheduler>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission/scheduling metrics registry.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The scheduler (exposed so in-process harnesses can bypass TCP).
    pub fn scheduler(&self) -> &Arc<BatchScheduler> {
        &self.scheduler
    }

    /// Stops accepting, wakes every handler, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // ordering: Release publishes the stop request; handlers and
        // the accept loop read it with Acquire.
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let Some(h) = self.conns.lock().pop() else {
                break;
            };
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

/// Starts a server bound to `addr` (use `"127.0.0.1:0"` for an
/// ephemeral port) answering queries through `scheduler`.
pub fn serve(addr: &str, scheduler: BatchScheduler) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let scheduler = Arc::new(scheduler);
    let metrics = Arc::clone(scheduler.admission().metrics());
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let scheduler = Arc::clone(&scheduler);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("sparta-accept".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    // ordering: Acquire pairs with the Release store in
                    // stop_and_join.
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let scheduler = Arc::clone(&scheduler);
                    let stop = Arc::clone(&stop);
                    let handle = std::thread::Builder::new()
                        .name("sparta-conn".to_string())
                        .spawn(move || handle_connection(stream, &scheduler, &stop))
                        .expect("spawn connection handler");
                    conns.lock().push(handle);
                }
            })?
    };

    Ok(ServerHandle {
        addr: local,
        scheduler,
        metrics,
        stop,
        accept: Some(accept),
        conns,
    })
}

/// Serves one connection until EOF, a protocol error, or shutdown.
fn handle_connection(stream: TcpStream, scheduler: &BatchScheduler, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        // ordering: Acquire pairs with the Release store in
        // stop_and_join.
        if stop.load(Ordering::Acquire) {
            return;
        }
        match read_frame(&mut reader) {
            Ok(Frame::Request(req)) => {
                let reply = scheduler.execute(&req);
                if write_frame(&mut writer, &reply).is_err() {
                    return; // client gone
                }
            }
            Ok(_) => {
                // Clients must only send requests.
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        code: ErrorCode::BadRequest,
                        message: "only Request frames are accepted".to_string(),
                    },
                );
                return;
            }
            Err(ProtocolError::Io(ErrorKind::WouldBlock | ErrorKind::TimedOut)) => {
                // Idle poll tick; loop to re-check the stop flag.
                continue;
            }
            Err(ProtocolError::Closed) => return,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                );
                return;
            }
        }
    }
}
