//! The TCP frontend: accept loop, per-connection handlers, clean
//! shutdown, and the optional admin plane.
//!
//! One thread accepts connections; each connection gets a handler
//! thread that reads framed requests and answers through the shared
//! [`BatchScheduler`](crate::BatchScheduler). Shutdown is cooperative:
//! [`ServerHandle::shutdown`] raises a flag, pokes the accept loop(s)
//! with a throwaway connection, and joins every thread — no detached
//! threads survive, so the stall watchdog stays quiet after a test.
//!
//! Handlers poll the shutdown flag between frames via a short read
//! timeout; an idle connection therefore notices shutdown within
//! [`POLL_INTERVAL`] without any wall-clock dependence in the hot
//! path (this crate is outside the core wall-clock lint scope — the
//! timeout exists only at the transport edge).
//!
//! [`serve_with_admin`] binds a second listener speaking minimal
//! HTTP/1.0 (see [`crate::admin`]) for `/metrics`, `/healthz`,
//! `/readyz`, `/debug/trace`, and `/debug/slow`. Readiness tracks the
//! server lifecycle: `/readyz` answers `200` only after both accept
//! loops are live and flips to `503` the moment [`ServerHandle::drain`]
//! or shutdown begins.
//!
//! Each data-plane request is decomposed into stage latencies: the
//! scheduler times admission/queue/execute
//! ([`BatchScheduler::execute_timed`]), the handler times the response
//! write on the same clock, and [`BatchScheduler::complete`] folds the
//! stages plus the end-to-end interval into the
//! [`StageLatency`](sparta_obs::StageLatency) histograms and the
//! slow-query log.

use crate::admin::{handle_admin_connection, AdminState};
use crate::protocol::{read_frame, write_frame, ErrorCode, Frame, ProtocolError};
use crate::scheduler::BatchScheduler;
use parking_lot::Mutex;
use sparta_obs::{start_sampler, MetricsHistory, SamplerHandle, ServerMetrics};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle connection re-checks the shutdown flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Samples the metrics-history ring keeps before overwriting the
/// oldest (`/debug/history` serves the whole ring).
pub const HISTORY_CAPACITY: usize = 256;

/// How often the background sampler snapshots the metrics registries
/// into the history ring.
pub const SAMPLE_INTERVAL: Duration = Duration::from_millis(100);

/// A running query server. Dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    scheduler: Arc<BatchScheduler>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    admin_accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    history: Option<Arc<MetricsHistory>>,
    sampler: Option<SamplerHandle>,
}

impl ServerHandle {
    /// The bound query address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin address, when started via [`serve_with_admin`].
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The admission/scheduling metrics registry.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The scheduler (exposed so in-process harnesses can bypass TCP).
    pub fn scheduler(&self) -> &Arc<BatchScheduler> {
        &self.scheduler
    }

    /// The metrics-history ring the admin sampler feeds, when started
    /// via [`serve_with_admin`].
    pub fn history(&self) -> Option<&Arc<MetricsHistory>> {
        self.history.as_ref()
    }

    /// Marks the server not-ready (`/readyz` → 503) without stopping
    /// it: the drain step a rolling restart takes before shutdown, so
    /// load balancers stop routing while in-flight queries finish.
    pub fn drain(&self) {
        // ordering: Release publishes the drain; /readyz reads with (model: server_lifecycle)
        // Acquire.
        self.ready.store(false, Ordering::Release);
    }

    /// Stops accepting, wakes every handler, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // Stop the metrics sampler first: it only reads registries,
        // but joining it here keeps the no-detached-threads invariant.
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
        // ordering: Release publishes the drain; /readyz reads with (model: server_lifecycle)
        // Acquire.
        self.ready.store(false, Ordering::Release);
        // ordering: Release publishes the stop request; handlers and (model: server_lifecycle)
        // the accept loops read it with Acquire.
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loops with throwaway connections.
        let _ = TcpStream::connect(self.addr);
        if let Some(admin) = self.admin_addr {
            let _ = TcpStream::connect(admin);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.admin_accept.take() {
            let _ = h.join();
        }
        loop {
            let Some(h) = self.conns.lock().pop() else {
                break;
            };
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

/// Starts a server bound to `addr` (use `"127.0.0.1:0"` for an
/// ephemeral port) answering queries through `scheduler`.
pub fn serve(addr: &str, scheduler: BatchScheduler) -> std::io::Result<ServerHandle> {
    serve_inner(addr, None, scheduler)
}

/// Like [`serve`], but also binds an admin listener at `admin_addr`
/// serving `/metrics`, `/healthz`, `/readyz`, `/debug/trace`,
/// `/debug/slow`, `/debug/profile`, and `/debug/history` over minimal
/// HTTP/1.0, and starts the metrics-history sampler that feeds
/// `/debug/history`. The bound admin address is available from
/// [`ServerHandle::admin_addr`].
pub fn serve_with_admin(
    addr: &str,
    admin_addr: &str,
    scheduler: BatchScheduler,
) -> std::io::Result<ServerHandle> {
    serve_inner(addr, Some(admin_addr), scheduler)
}

fn serve_inner(
    addr: &str,
    admin_addr: Option<&str>,
    scheduler: BatchScheduler,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let admin_listener = admin_addr.map(TcpListener::bind).transpose()?;
    let admin_local = admin_listener
        .as_ref()
        .map(TcpListener::local_addr)
        .transpose()?;
    let scheduler = Arc::new(scheduler);
    let metrics = Arc::clone(scheduler.admission().metrics());
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let scheduler = Arc::clone(&scheduler);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("sparta-accept".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    // ordering: Acquire pairs with the Release store in (model: server_lifecycle)
                    // stop_and_join.
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let scheduler = Arc::clone(&scheduler);
                    let stop = Arc::clone(&stop);
                    let handle = std::thread::Builder::new()
                        .name("sparta-conn".to_string())
                        .spawn(move || handle_connection(stream, &scheduler, &stop))
                        .expect("spawn connection handler");
                    conns.lock().push(handle);
                }
            })?
    };

    // The admin plane gets a metrics-history ring fed by a background
    // sampler that snapshots the admission/stage/executor registries on
    // the scheduler's clock.
    let (history, sampler) = if admin_listener.is_some() {
        let history = MetricsHistory::new(HISTORY_CAPACITY);
        let source_scheduler = Arc::clone(&scheduler);
        let sampler = start_sampler(
            Arc::clone(&history),
            Arc::clone(scheduler.clock()),
            SAMPLE_INTERVAL,
            move || {
                let metrics = source_scheduler.admission().metrics();
                (
                    metrics.snapshot(),
                    metrics.stages.snapshot(),
                    source_scheduler.exec_metrics().map(|m| m.snapshot()),
                )
            },
        );
        (Some(history), Some(sampler))
    } else {
        (None, None)
    };

    let admin_accept = match admin_listener {
        Some(listener) => {
            let state = Arc::new(AdminState {
                scheduler: Arc::clone(&scheduler),
                ready: Arc::clone(&ready),
                stop: Arc::clone(&stop),
                history: history.clone(),
            });
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            Some(
                std::thread::Builder::new()
                    .name("sparta-admin-accept".to_string())
                    .spawn(move || {
                        for incoming in listener.incoming() {
                            // ordering: Acquire pairs with the Release (model: server_lifecycle)
                            // store in stop_and_join.
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let Ok(stream) = incoming else { continue };
                            let state = Arc::clone(&state);
                            let handle = std::thread::Builder::new()
                                .name("sparta-admin-conn".to_string())
                                .spawn(move || handle_admin_connection(stream, &state))
                                .expect("spawn admin handler");
                            conns.lock().push(handle);
                        }
                    })?,
            )
        }
        None => None,
    };

    // ordering: Release publishes readiness after both accept loops (model: server_lifecycle)
    // are spawned; /readyz reads with Acquire.
    ready.store(true, Ordering::Release);

    Ok(ServerHandle {
        addr: local,
        admin_addr: admin_local,
        scheduler,
        metrics,
        stop,
        ready,
        accept: Some(accept),
        admin_accept,
        conns,
        history,
        sampler,
    })
}

/// Serves one connection until EOF, a protocol error, or shutdown.
fn handle_connection(stream: TcpStream, scheduler: &BatchScheduler, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        // ordering: Acquire pairs with the Release store in (model: server_lifecycle)
        // stop_and_join.
        if stop.load(Ordering::Acquire) {
            return;
        }
        match read_frame(&mut reader) {
            Ok(Frame::Request(req)) => {
                let (reply, timing) = scheduler.execute_timed(&req);
                let write_start = scheduler.clock().tick();
                let write_ok = write_frame(&mut writer, &reply).is_ok();
                if let Some(t) = timing {
                    let write_ns = scheduler.clock().tick().saturating_sub(write_start);
                    scheduler.complete(&req, &t, write_ns);
                }
                if !write_ok {
                    return; // client gone
                }
            }
            Ok(_) => {
                // Clients must only send requests.
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        code: ErrorCode::BadRequest,
                        message: "only Request frames are accepted".to_string(),
                    },
                );
                return;
            }
            Err(ProtocolError::Io(ErrorKind::WouldBlock | ErrorKind::TimedOut)) => {
                // Idle poll tick; loop to re-check the stop flag.
                continue;
            }
            Err(ProtocolError::Closed) => return,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                );
                return;
            }
        }
    }
}
