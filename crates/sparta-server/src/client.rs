//! A minimal blocking client for the framed protocol, used by the
//! load harness and the integration tests.

use crate::protocol::{read_frame, write_frame, Frame, ProtocolError, QueryRequest};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to a query server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// Sends one request and blocks for the reply frame (a
    /// [`Frame::Response`] or [`Frame::Error`]).
    pub fn query(&mut self, req: &QueryRequest) -> Result<Frame, ProtocolError> {
        write_frame(&mut self.stream, &Frame::Request(req.clone()))
            .map_err(|e| ProtocolError::Io(e.kind()))?;
        read_frame(&mut self.stream)
    }
}
