//! The admin plane: a dependency-free HTTP/1.0 listener on a second
//! port, serving operational state about the query server.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition: admission counters
//!   and high-water gauges ([`ServerSnapshot`]), the per-query stage
//!   latency histograms ([`StageSnapshot`]), and — when the scheduler's
//!   pool is instrumented — the aggregated executor snapshot.
//! * `GET /healthz` — liveness: `200 ok` whenever the listener answers.
//! * `GET /readyz` — readiness: `200` only between "accept loops are
//!   live" and "shutdown/drain began"; `503` otherwise, so a load
//!   balancer stops routing before in-flight queries are cut off.
//! * `GET /debug/trace` — Chrome trace-event JSON of the flight
//!   recorder rings (open in `chrome://tracing` / Perfetto).
//! * `GET /debug/slow` — the slow-query log as JSON.
//! * `GET /debug/profile` — deterministic aggregate profile folded
//!   from the flight-recorder rings (utilization breakdown, contention
//!   sites, per-phase self time) as JSON; `?format=collapsed` returns
//!   the flamegraph-collapsed text rendering instead.
//! * `GET /debug/history` — the bounded metrics-history ring as JSON
//!   (periodic `ServerSnapshot`/`StageSnapshot`/`ExecSnapshot` samples
//!   with exact overwrite accounting).
//!
//! The protocol support is deliberately minimal — request line + headers
//! are read, only `GET` and the path matter, every response closes the
//! connection (`Connection: close`, HTTP/1.0 semantics). That keeps the
//! entire admin plane inside std TCP: no HTTP dependency enters the
//! workspace for the sake of five read-only routes.
//!
//! Error paths are first-class: malformed request lines get `400`,
//! unknown paths `404`, request heads larger than
//! [`MAX_REQUEST_BYTES`] get `431`, and a client that vanishes
//! mid-response only costs the handler thread a failed write. Handlers
//! poll the server's stop flag on read timeouts, so admin connections
//! never outlive shutdown.

use crate::scheduler::BatchScheduler;
use crate::server::POLL_INTERVAL;
use sparta_obs::{
    chrome_trace_string, exec_snapshot_text, profile_recorder, server_snapshot_text,
    stage_snapshot_text, MetricsHistory, DEFAULT_TOP_SITES,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Upper bound on an admin request head (request line + headers). A
/// request that exceeds this without completing is answered `431` and
/// dropped — the admin plane never buffers unbounded client input.
pub const MAX_REQUEST_BYTES: usize = 4096;

/// How many consecutive read-timeout polls a handler tolerates while
/// waiting for the request head before giving up on the connection
/// (mirrors the data-plane's mid-frame bound: an admin client that
/// opens a socket and sends nothing cannot pin a thread forever).
const REQUEST_TIMEOUT_POLLS: usize = 200;

/// Shared state the admin handlers read. Everything is either atomic
/// or behind the scheduler's own synchronization; handlers never block
/// the data plane.
pub(crate) struct AdminState {
    pub(crate) scheduler: Arc<BatchScheduler>,
    /// True once the accept loops are live; cleared by drain/shutdown.
    pub(crate) ready: Arc<AtomicBool>,
    pub(crate) stop: Arc<AtomicBool>,
    /// The metrics-history ring the background sampler feeds; `None`
    /// when the server runs without an admin plane.
    pub(crate) history: Option<Arc<MetricsHistory>>,
}

/// Serves one admin connection: read the request head, route, answer,
/// close.
pub(crate) fn handle_admin_connection(stream: TcpStream, state: &AdminState) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    let head = match read_request_head(&mut reader, &state.stop) {
        Ok(h) => h,
        Err(ReadError::Oversized) => {
            write_response(
                &mut writer,
                431,
                "Request Header Fields Too Large",
                "text/plain",
                "request head exceeds 4096 bytes\n",
            );
            return;
        }
        // Stop, EOF before a full request, or a dead socket: nothing
        // useful to answer.
        Err(ReadError::Gone) => return,
    };
    let Some((method, path)) = parse_request_line(&head) else {
        write_response(
            &mut writer,
            400,
            "Bad Request",
            "text/plain",
            "malformed request line\n",
        );
        return;
    };
    if method != "GET" {
        write_response(
            &mut writer,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
        return;
    }
    let (status, reason, ctype, body) = route(&path, state);
    write_response(&mut writer, status, reason, ctype, &body);
}

enum ReadError {
    /// Head grew past [`MAX_REQUEST_BYTES`] without completing.
    Oversized,
    /// EOF / error / stop before a complete request arrived.
    Gone,
}

/// Reads until the end of the request head (blank line) or the first
/// full request line, whichever lets us route. Bounded by
/// [`MAX_REQUEST_BYTES`] and [`REQUEST_TIMEOUT_POLLS`].
fn read_request_head(reader: &mut TcpStream, stop: &AtomicBool) -> Result<String, ReadError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    let mut idle_polls = 0usize;
    loop {
        // ordering: Acquire pairs with the Release store in (model: server_lifecycle)
        // stop_and_join; a stopping server abandons pending reads.
        if stop.load(Ordering::Acquire) {
            return Err(ReadError::Gone);
        }
        // The request line is enough to route; the head ends at the
        // blank line but we don't need to wait for it.
        if buf.contains(&b'\n') {
            return String::from_utf8(buf).map_err(|_| ReadError::Gone);
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Err(ReadError::Oversized);
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Gone),
            Ok(n) => {
                idle_polls = 0;
                buf.extend_from_slice(&chunk[..n.min(MAX_REQUEST_BYTES + 1 - buf.len())]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                idle_polls += 1;
                if idle_polls > REQUEST_TIMEOUT_POLLS {
                    return Err(ReadError::Gone);
                }
            }
            Err(_) => return Err(ReadError::Gone),
        }
    }
}

/// Parses `"GET /path HTTP/1.x"` into `(method, path)`. `None` on any
/// shape violation.
fn parse_request_line(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/") || !path.starts_with('/') {
        return None;
    }
    Some((method.to_string(), path.to_string()))
}

/// Routes a GET. Returns `(status, reason, content-type, body)`. The
/// query string (everything past the first `?`) only matters to
/// `/debug/profile`, which accepts `format=collapsed`.
fn route(path: &str, state: &AdminState) -> (u16, &'static str, &'static str, String) {
    let (path, query) = path.split_once('?').map_or((path, ""), |(p, q)| (p, q));
    match path {
        "/metrics" => (200, "OK", "text/plain; version=0.0.4", metrics_body(state)),
        "/healthz" => (200, "OK", "text/plain", "ok\n".to_string()),
        "/readyz" => {
            // ordering: Acquire pairs with the Release store in (model: server_lifecycle)
            // stop_and_join / drain; readiness must observe them.
            let ready = state.ready.load(Ordering::Acquire) && !state.stop.load(Ordering::Acquire);
            if ready {
                (200, "OK", "text/plain", "ready\n".to_string())
            } else {
                (
                    503,
                    "Service Unavailable",
                    "text/plain",
                    "not ready\n".to_string(),
                )
            }
        }
        "/debug/trace" => match state.scheduler.recorder() {
            Some(rec) => (200, "OK", "application/json", chrome_trace_string(rec)),
            None => (
                404,
                "Not Found",
                "text/plain",
                "no flight recorder attached\n".to_string(),
            ),
        },
        "/debug/slow" => (
            200,
            "OK",
            "application/json",
            state.scheduler.slow_log().to_json().to_pretty_string(2),
        ),
        "/debug/profile" => match state.scheduler.recorder() {
            Some(rec) => {
                let profile = profile_recorder(rec, DEFAULT_TOP_SITES);
                if query.split('&').any(|kv| kv == "format=collapsed") {
                    (200, "OK", "text/plain", profile.to_collapsed())
                } else {
                    (
                        200,
                        "OK",
                        "application/json",
                        profile.to_json().to_pretty_string(2),
                    )
                }
            }
            None => (
                404,
                "Not Found",
                "text/plain",
                "no flight recorder attached\n".to_string(),
            ),
        },
        "/debug/history" => match &state.history {
            Some(history) => (
                200,
                "OK",
                "application/json",
                history.to_json().to_pretty_string(2),
            ),
            None => (
                404,
                "Not Found",
                "text/plain",
                "no metrics history attached\n".to_string(),
            ),
        },
        _ => (404, "Not Found", "text/plain", format!("no route {path}\n")),
    }
}

/// The `/metrics` exposition: admission + stage histograms, plus the
/// executor snapshot when the pool is instrumented, the flight
/// recorder's loss counters when one is attached, and the compressed
/// backend's decode counters when the index reports [`IoStats`]
/// decode activity.
///
/// [`IoStats`]: sparta_index::IoStats
fn metrics_body(state: &AdminState) -> String {
    use std::fmt::Write as _;
    let metrics = state.scheduler.admission().metrics();
    let mut out = server_snapshot_text(&metrics.snapshot());
    out.push_str(&stage_snapshot_text(&metrics.stages.snapshot()));
    if let Some(exec) = state.scheduler.exec_metrics() {
        out.push_str(&exec_snapshot_text("pool", &exec.snapshot()));
    }
    if let Some(rec) = state.scheduler.recorder() {
        let _ = write!(
            out,
            "# HELP sparta_recorder_dropped_events_total Flight-recorder events overwritten before any reader saw them.\n\
             # TYPE sparta_recorder_dropped_events_total counter\n\
             sparta_recorder_dropped_events_total {}\n\
             # HELP sparta_recorder_skipped_reads_total Ring slots skipped by readers because a seqlock torn read was detected.\n\
             # TYPE sparta_recorder_skipped_reads_total counter\n\
             sparta_recorder_skipped_reads_total {}\n",
            rec.dropped_events(),
            rec.skipped_reads(),
        );
    }
    if let Some(io) = state.scheduler.index().io_stats() {
        let (blocks_decoded, compressed_bytes) = io.decode_snapshot();
        let _ = write!(
            out,
            "# HELP sparta_index_blocks_decoded_total Compressed posting blocks decoded.\n\
             # TYPE sparta_index_blocks_decoded_total counter\n\
             sparta_index_blocks_decoded_total {blocks_decoded}\n\
             # HELP sparta_index_compressed_bytes_total Compressed bytes moved through the block decoder.\n\
             # TYPE sparta_index_compressed_bytes_total counter\n\
             sparta_index_compressed_bytes_total {compressed_bytes}\n",
        );
    }
    out
}

/// Writes a complete HTTP/1.0 response. Write errors are swallowed —
/// a client that hung up mid-response costs nothing but this handler.
fn write_response(writer: &mut TcpStream, status: u16, reason: &str, ctype: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.write_all(body.as_bytes()))
        .and_then(|()| writer.flush());
    let _ = writer.shutdown(std::net::Shutdown::Write);
}

/// Minimal HTTP/1.0 GET client for the admin plane — used by the bench
/// harness's scraper, the CI smoke job, and tests. Returns the status
/// code and the response body.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no header/body separator"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_rejects() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.0\r\n"),
            Some(("GET".to_string(), "/metrics".to_string()))
        );
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET".to_string(), "/metrics".to_string()))
        );
        assert!(parse_request_line("\r\n").is_none(), "empty line");
        assert!(parse_request_line("GET /x\r\n").is_none(), "no version");
        assert!(
            parse_request_line("GET metrics HTTP/1.0\r\n").is_none(),
            "path must be absolute"
        );
        assert!(
            parse_request_line("GET /x HTTP/1.0 extra\r\n").is_none(),
            "trailing tokens"
        );
        assert!(
            parse_request_line("GET /x FTP/1.0\r\n").is_none(),
            "not HTTP"
        );
    }
}
