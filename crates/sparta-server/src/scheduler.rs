//! Batching scheduler: every admitted query runs on one shared
//! [`WorkerPool`] instead of a pool per query.
//!
//! Each request derives its own [`SearchConfig`] from the server's
//! template (`template.with_k(req.k).with_query_tag(tag)`), so the
//! shared pool multiplexes many tagged job queues round-robin — the
//! batching the paper's throughput mode describes (§5.4): concurrent
//! queries coalesce onto the same workers rather than oversubscribing
//! the machine with one pool each. The tag stamped on the queue keeps
//! every job attributable to its query in flight-recorder dumps.
//!
//! The scheduler owns the admission step: `execute` either returns a
//! [`Frame::Response`] or a [`Frame::Error`] (shed, bad request,
//! unknown algorithm, or a caught query panic — the permit is RAII, so
//! even a panicking query releases its slot).
//!
//! Observability: every admitted query's path is decomposed against
//! the scheduler's injectable [`ObsClock`] into the
//! [`StageLatency`](sparta_obs::StageLatency) histograms — admission
//! wait, queue wait, execution, and (recorded by the transport in
//! [`complete`](BatchScheduler::complete)) response write plus
//! end-to-end. Queries whose end-to-end time crosses the
//! [`SlowLog`](crate::slowlog::SlowLog) threshold are captured with a
//! flight-recorder ring dump; a default-constructed scheduler
//! instruments its pool with both [`ExecMetrics`] and a
//! [`FlightRecorder`] so the admin plane has something to serve.

use crate::admission::{AdmissionConfig, AdmissionController, TryAdmit};
use crate::protocol::{ErrorCode, Frame, QueryRequest, TraceSummary, WireHit};
use crate::slowlog::{SlowLog, SlowLogConfig, SlowQueryRecord};
use sparta_core::registry::algorithm_by_name;
use sparta_core::SearchConfig;
use sparta_corpus::Query;
use sparta_exec::{Executor, StallWatchdog, WatchdogConfig, WorkerPool};
use sparta_index::Index;
use sparta_obs::{ClockMode, ExecMetrics, FlightRecorder, ObsClock, ServerMetrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on per-request k, protecting the shared pool from a
/// single request allocating an enormous heap.
pub const MAX_K: u32 = 10_000;

/// Events each per-worker flight-recorder ring retains.
const RECORDER_RING_CAPACITY: usize = 1 << 12;

/// Stage timings for one admitted query, measured on the scheduler's
/// clock. The transport finishes the story by calling
/// [`BatchScheduler::complete`] with the response-write time, which
/// closes the end-to-end interval.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Clock tick at request entry (start of the end-to-end interval).
    pub start_tick: u64,
    /// Entry → admission decision.
    pub admission_wait_ns: u64,
    /// Time parked in the wait queue (0 if admitted immediately).
    pub queue_wait_ns: u64,
    /// Search execution time.
    pub execute_ns: u64,
    /// The tag stamped on the query.
    pub query_tag: u64,
}

/// Runs admitted queries on a shared worker pool.
pub struct BatchScheduler {
    exec: Arc<dyn Executor + Send + Sync>,
    /// The concrete pool when built via [`BatchScheduler::new`]; lets
    /// [`watchdog`](Self::watchdog) probe pool state.
    pool: Option<Arc<WorkerPool>>,
    admission: Arc<AdmissionController>,
    index: Arc<dyn Index>,
    template: SearchConfig,
    clock: Arc<ObsClock>,
    recorder: Option<Arc<FlightRecorder>>,
    exec_metrics: Option<Arc<ExecMetrics>>,
    slow_log: Arc<SlowLog>,
    // ordering: Relaxed — monotone tag allocator; uniqueness is all (model: tag_allocator)
    // that matters, no ordering with other memory.
    next_tag: AtomicU64,
}

impl BatchScheduler {
    /// A scheduler over `index` with `workers` pool threads. The pool
    /// is instrumented: per-worker [`ExecMetrics`] and a wall-clock
    /// [`FlightRecorder`] ring per worker, both served by the admin
    /// endpoint.
    pub fn new(
        index: Arc<dyn Index>,
        template: SearchConfig,
        workers: usize,
        admission: AdmissionConfig,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        let workers = workers.max(1);
        let exec_metrics = ExecMetrics::new(workers);
        let recorder = FlightRecorder::new(workers, RECORDER_RING_CAPACITY, ClockMode::Wall);
        let pool = Arc::new(WorkerPool::with_recorder(
            workers,
            Some(Arc::clone(&exec_metrics)),
            Arc::clone(&recorder),
        ));
        Self {
            exec: Arc::clone(&pool) as Arc<dyn Executor + Send + Sync>,
            pool: Some(pool),
            admission: AdmissionController::new(admission, metrics),
            index,
            template,
            clock: Arc::new(ObsClock::new(ClockMode::Wall)),
            recorder: Some(recorder),
            exec_metrics: Some(exec_metrics),
            slow_log: SlowLog::new(SlowLogConfig::default()),
            next_tag: AtomicU64::new(1),
        }
    }

    /// A scheduler running queries on a caller-supplied executor (e.g.
    /// a fault-injecting
    /// [`DeterministicExecutor`](sparta_exec::DeterministicExecutor)).
    /// Pass the executor's recorder so slow-query captures can dump
    /// its rings; there is no pool to probe, so [`watchdog`](Self::watchdog)
    /// returns `None`.
    pub fn with_executor(
        index: Arc<dyn Index>,
        template: SearchConfig,
        exec: Arc<dyn Executor + Send + Sync>,
        recorder: Option<Arc<FlightRecorder>>,
        admission: AdmissionConfig,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        Self {
            exec,
            pool: None,
            admission: AdmissionController::new(admission, metrics),
            index,
            template,
            clock: Arc::new(ObsClock::new(ClockMode::Wall)),
            recorder,
            exec_metrics: None,
            slow_log: SlowLog::new(SlowLogConfig::default()),
            next_tag: AtomicU64::new(1),
        }
    }

    /// Replaces the stage/end-to-end clock (builder style). Inject a
    /// [`ClockMode::Logical`] clock to keep timing-dependent tests and
    /// deterministic replays byte-stable.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<ObsClock>) -> Self {
        self.clock = clock;
        self
    }

    /// Replaces the slow-query log bounds (builder style).
    #[must_use]
    pub fn with_slow_log(mut self, cfg: SlowLogConfig) -> Self {
        self.slow_log = SlowLog::new(cfg);
        self
    }

    /// The admission controller (exposed for load harnesses that drive
    /// admission directly).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// The clock stages and the slow-query threshold are measured on.
    pub fn clock(&self) -> &Arc<ObsClock> {
        &self.clock
    }

    /// The flight recorder, if one is attached.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The index queries run against (exposed so the admin plane can
    /// scrape backend counters such as the compressed decoder's
    /// [`IoStats`](sparta_index::IoStats)).
    pub fn index(&self) -> &Arc<dyn Index> {
        &self.index
    }

    /// The pool's executor metrics, if instrumented.
    pub fn exec_metrics(&self) -> Option<&Arc<ExecMetrics>> {
        self.exec_metrics.as_ref()
    }

    /// The slow-query log.
    pub fn slow_log(&self) -> &Arc<SlowLog> {
        &self.slow_log
    }

    /// Spawns a stall watchdog over the scheduler's pool whose dumps
    /// also land in the slow-query log as `"stall"` records (so wedge
    /// evidence is servable at `/debug/slow`, not just on stderr).
    /// `None` when the scheduler has a custom executor (no pool).
    pub fn watchdog(&self, mut config: WatchdogConfig) -> Option<StallWatchdog> {
        let pool = self.pool.as_ref()?;
        let slow = Arc::clone(&self.slow_log);
        let prior = config.on_dump.take();
        config.on_dump = Some(Arc::new(move |dump: &str| {
            slow.record_stall(dump);
            if let Some(hook) = &prior {
                hook(dump);
            }
        }));
        pool.watchdog(config)
    }

    /// Validates a request without running it. `Ok` carries the
    /// resolved algorithm name.
    fn validate(req: &QueryRequest) -> Result<(), Frame> {
        let err = |code, message: &str| Frame::Error {
            code,
            message: message.to_string(),
        };
        if req.k == 0 || req.k > MAX_K {
            return Err(err(
                ErrorCode::BadRequest,
                &format!("k must be in 1..={MAX_K}"),
            ));
        }
        if algorithm_by_name(&req.algorithm).is_none() {
            return Err(err(
                ErrorCode::UnknownAlgorithm,
                &format!("unknown algorithm {:?}", req.algorithm),
            ));
        }
        Ok(())
    }

    /// Admits and runs one query, blocking in the wait queue if the
    /// in-flight budget is full. Always returns a frame to send back.
    ///
    /// Convenience wrapper over [`execute_timed`](Self::execute_timed)
    /// and [`complete`](Self::complete) for callers with no transport
    /// write to time (the response-write stage records 0).
    pub fn execute(&self, req: &QueryRequest) -> Frame {
        let (frame, timing) = self.execute_timed(req);
        if let Some(t) = timing {
            self.complete(req, &t, 0);
        }
        frame
    }

    /// Like [`execute`](Self::execute), but returns the stage timings
    /// so the transport can time the response write and then call
    /// [`complete`](Self::complete). `None` timing means the query
    /// never held a permit (invalid or shed) and records no stages.
    pub fn execute_timed(&self, req: &QueryRequest) -> (Frame, Option<StageTiming>) {
        if let Err(e) = Self::validate(req) {
            return (e, None);
        }
        let t_entry = self.clock.tick();
        let (permit, t_admitted, queue_wait_ns) = match self.admission.try_admit() {
            TryAdmit::Admitted(p) => {
                let t = self.clock.tick();
                (p, t, 0)
            }
            TryAdmit::Queued(slot) => {
                let t_queued = self.clock.tick();
                let p = slot.wait();
                let t = self.clock.tick();
                (p, t_queued, t.saturating_sub(t_queued))
            }
            TryAdmit::Shed => {
                return (
                    Frame::Error {
                        code: ErrorCode::Shed,
                        message: "server overloaded: in-flight budget and queue full".to_string(),
                    },
                    None,
                );
            }
        };
        let admission_wait_ns = t_admitted.saturating_sub(t_entry);
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let cfg = self.template.with_k(req.k as usize).with_query_tag(tag);
        let algo = algorithm_by_name(&req.algorithm).expect("validated above");
        let query = Query::new(req.terms.clone());
        let index = Arc::clone(&self.index);
        let exec = Arc::clone(&self.exec);
        let t_exec_start = self.clock.tick();
        // The permit is dropped (slot released, completed counted) on
        // both the normal and the unwinding path.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _permit = permit;
            algo.search(&index, &query, &cfg, &*exec)
        }));
        let execute_ns = self.clock.tick().saturating_sub(t_exec_start);
        let timing = StageTiming {
            start_tick: t_entry,
            admission_wait_ns,
            queue_wait_ns,
            execute_ns,
            query_tag: tag,
        };
        let frame = match result {
            Ok(r) => Frame::Response {
                query_tag: tag,
                hits: r
                    .hits
                    .iter()
                    .map(|h| WireHit {
                        doc: h.doc,
                        score: h.score,
                    })
                    .collect(),
                summary: TraceSummary {
                    elapsed_ns: r.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                    postings_scanned: r.work.postings_scanned,
                    heap_updates: r.work.heap_updates,
                    cleaner_passes: r.work.cleaner_passes,
                },
            },
            Err(_) => Frame::Error {
                code: ErrorCode::Internal,
                message: format!("query {tag} panicked during execution"),
            },
        };
        (frame, Some(timing))
    }

    /// Closes one admitted query's end-to-end interval: records all
    /// five stage histograms and, when the end-to-end time crosses the
    /// slow-log threshold, captures a [`SlowQueryRecord`] with the
    /// admission state and a flight-recorder dump.
    pub fn complete(&self, req: &QueryRequest, timing: &StageTiming, response_write_ns: u64) {
        let end_to_end_ns = self.clock.tick().saturating_sub(timing.start_tick);
        let stages = &self.admission.metrics().stages;
        stages.admission_wait.record(timing.admission_wait_ns);
        stages.queue_wait.record(timing.queue_wait_ns);
        stages.execute.record(timing.execute_ns);
        stages.response_write.record(response_write_ns);
        stages.end_to_end.record(end_to_end_ns);
        if !self.slow_log.is_slow(end_to_end_ns) {
            return;
        }
        let dump = self
            .recorder
            .as_ref()
            .map(|r| sparta_obs::dump_text(r))
            .unwrap_or_default();
        self.slow_log.push(SlowQueryRecord {
            kind: "slow",
            query_tag: timing.query_tag,
            k: req.k,
            algorithm: req.algorithm.clone(),
            admission_wait_ns: timing.admission_wait_ns,
            queue_wait_ns: timing.queue_wait_ns,
            execute_ns: timing.execute_ns,
            response_write_ns,
            end_to_end_ns,
            queue_depth: self.admission.queue_depth() as u64,
            in_flight: self.admission.in_flight() as u64,
            shed_total: self.admission.metrics().snapshot().shed,
            recorder: dump,
        });
    }
}
