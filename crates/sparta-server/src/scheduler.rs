//! Batching scheduler: every admitted query runs on one shared
//! [`WorkerPool`] instead of a pool per query.
//!
//! Each request derives its own [`SearchConfig`] from the server's
//! template (`template.with_k(req.k).with_query_tag(tag)`), so the
//! shared pool multiplexes many tagged job queues round-robin — the
//! batching the paper's throughput mode describes (§5.4): concurrent
//! queries coalesce onto the same workers rather than oversubscribing
//! the machine with one pool each. The tag stamped on the queue keeps
//! every job attributable to its query in flight-recorder dumps.
//!
//! The scheduler owns the admission step: `execute` either returns a
//! [`Frame::Response`] or a [`Frame::Error`] (shed, bad request,
//! unknown algorithm, or a caught query panic — the permit is RAII, so
//! even a panicking query releases its slot).

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::protocol::{ErrorCode, Frame, QueryRequest, TraceSummary, WireHit};
use sparta_core::registry::algorithm_by_name;
use sparta_core::SearchConfig;
use sparta_corpus::Query;
use sparta_exec::WorkerPool;
use sparta_index::Index;
use sparta_obs::ServerMetrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on per-request k, protecting the shared pool from a
/// single request allocating an enormous heap.
pub const MAX_K: u32 = 10_000;

/// Runs admitted queries on a shared worker pool.
pub struct BatchScheduler {
    pool: Arc<WorkerPool>,
    admission: Arc<AdmissionController>,
    index: Arc<dyn Index>,
    template: SearchConfig,
    // ordering: Relaxed — monotone tag allocator; uniqueness is all
    // that matters, no ordering with other memory.
    next_tag: AtomicU64,
}

impl BatchScheduler {
    /// A scheduler over `index` with `workers` pool threads.
    pub fn new(
        index: Arc<dyn Index>,
        template: SearchConfig,
        workers: usize,
        admission: AdmissionConfig,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        Self {
            pool: Arc::new(WorkerPool::new(workers.max(1))),
            admission: AdmissionController::new(admission, metrics),
            index,
            template,
            next_tag: AtomicU64::new(1),
        }
    }

    /// The admission controller (exposed for load harnesses that drive
    /// admission directly).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Validates a request without running it. `Ok` carries the
    /// resolved algorithm name.
    fn validate(req: &QueryRequest) -> Result<(), Frame> {
        let err = |code, message: &str| Frame::Error {
            code,
            message: message.to_string(),
        };
        if req.k == 0 || req.k > MAX_K {
            return Err(err(
                ErrorCode::BadRequest,
                &format!("k must be in 1..={MAX_K}"),
            ));
        }
        if algorithm_by_name(&req.algorithm).is_none() {
            return Err(err(
                ErrorCode::UnknownAlgorithm,
                &format!("unknown algorithm {:?}", req.algorithm),
            ));
        }
        Ok(())
    }

    /// Admits and runs one query, blocking in the wait queue if the
    /// in-flight budget is full. Always returns a frame to send back.
    pub fn execute(&self, req: &QueryRequest) -> Frame {
        if let Err(e) = Self::validate(req) {
            return e;
        }
        let permit = match self.admission.admit() {
            Some(p) => p,
            None => {
                return Frame::Error {
                    code: ErrorCode::Shed,
                    message: "server overloaded: in-flight budget and queue full".to_string(),
                }
            }
        };
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let cfg = self.template.with_k(req.k as usize).with_query_tag(tag);
        let algo = algorithm_by_name(&req.algorithm).expect("validated above");
        let query = Query::new(req.terms.clone());
        let index = Arc::clone(&self.index);
        let pool = Arc::clone(&self.pool);
        // The permit is dropped (slot released, completed counted) on
        // both the normal and the unwinding path.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _permit = permit;
            algo.search(&index, &query, &cfg, &*pool)
        }));
        match result {
            Ok(r) => Frame::Response {
                query_tag: tag,
                hits: r
                    .hits
                    .iter()
                    .map(|h| WireHit {
                        doc: h.doc,
                        score: h.score,
                    })
                    .collect(),
                summary: TraceSummary {
                    elapsed_ns: r.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                    postings_scanned: r.work.postings_scanned,
                    heap_updates: r.work.heap_updates,
                    cleaner_passes: r.work.cleaner_passes,
                },
            },
            Err(_) => Frame::Error {
                code: ErrorCode::Internal,
                message: format!("query {tag} panicked during execution"),
            },
        }
    }
}
