//! Sparta as a service: a long-lived query server over the workspace's
//! retrieval substrate.
//!
//! The paper evaluates Sparta one query at a time; a deployment runs
//! it behind a frontend that must decide, under load, which queries to
//! run now, which to make wait, and which to refuse. This crate is
//! that frontend, kept deliberately dependency-free (std TCP plus the
//! workspace's own crates):
//!
//! * [`protocol`] — length-prefixed request/response frames with total,
//!   panic-free decoding ([`Frame`], [`ProtocolError`]).
//! * [`admission`] — a bounded in-flight budget with a bounded FIFO
//!   wait queue and load shedding; RAII [`Permit`]s make the
//!   accounting exact on every schedule, and every decision lands in
//!   [`sparta_obs::ServerMetrics`].
//! * [`scheduler`] — the batching layer: every admitted query derives
//!   a per-request [`SearchConfig`](sparta_core::SearchConfig) from a
//!   shared template (`with_k` + `with_query_tag`) and runs on **one
//!   shared** [`WorkerPool`](sparta_exec::WorkerPool), which
//!   multiplexes concurrent queries round-robin instead of paying one
//!   pool per query.
//! * [`server`] / [`client`] — the TCP edge: accept loop, polling
//!   handlers, cooperative shutdown that joins every thread.
//! * [`admin`] — the observability plane: a second listener speaking
//!   minimal HTTP/1.0 for `/metrics` (Prometheus exposition),
//!   `/healthz`, `/readyz`, `/debug/trace` (Chrome trace of the
//!   flight-recorder rings), and `/debug/slow`.
//! * [`slowlog`] — the slow-query log: a bounded ring of evidence
//!   records (stage decomposition + flight-recorder dump) for queries
//!   whose end-to-end latency crossed a threshold, plus watchdog stall
//!   dumps.
//!
//! The open-loop load harness in `sparta-bench` (`repro load`) drives
//! either the in-process scheduler (deterministic, logical-clock,
//! byte-identical reports) or this TCP edge (real sockets, wall
//! clock); see README "Running the server".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod admission;
pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod slowlog;

pub use admin::{http_get, MAX_REQUEST_BYTES};
pub use admission::{AdmissionConfig, AdmissionController, Permit, QueueSlot, TryAdmit};
pub use client::Client;
pub use protocol::{
    read_frame, write_frame, ErrorCode, Frame, ProtocolError, QueryRequest, TraceSummary, WireHit,
    MAX_PAYLOAD,
};
pub use scheduler::{BatchScheduler, StageTiming, MAX_K};
pub use server::{serve, serve_with_admin, ServerHandle, POLL_INTERVAL};
pub use slowlog::{SlowLog, SlowLogConfig, SlowQueryRecord, SLOW_DUMP_MAX_BYTES};
