//! The slow-query log: a fixed-capacity ring of evidence records for
//! queries whose end-to-end latency crossed a threshold, plus stall
//! dumps pushed by the watchdog hook.
//!
//! When the scheduler finishes a query whose end-to-end time (read
//! from the scheduler's injectable `ObsClock`, so deterministic runs
//! stay deterministic) meets [`SlowLogConfig::threshold_ns`], it
//! captures a bounded [`SlowQueryRecord`]: the query's identity (tag,
//! k, algorithm), its full stage decomposition, the admission state at
//! capture time (queue depth, in-flight, cumulative shed), and a
//! truncated flight-recorder ring dump — the last thing every worker
//! did while the query was slow. Records live in a bounded ring
//! (oldest evicted first) served by the admin endpoint at
//! `/debug/slow`.
//!
//! A second entry point, [`SlowLog::record_stall`], accepts stall
//! dumps from [`sparta_exec::WatchdogConfig::on_dump`] — a wedged
//! query never completes, so it can never cross the completion-path
//! threshold; the watchdog is how its evidence still reaches the ring.

use parking_lot::Mutex;
use sparta_obs::json::Json;
use sparta_obs::Counter;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cap on the flight-recorder dump embedded in one record, so a ring
/// of records stays bounded no matter how chatty the rings were.
pub const SLOW_DUMP_MAX_BYTES: usize = 8 * 1024;

/// Slow-query log knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowLogConfig {
    /// End-to-end latency (clock ticks; nanoseconds under a wall
    /// clock) at or above which a completed query is captured.
    /// `u64::MAX` disables capture.
    pub threshold_ns: u64,
    /// Maximum records retained; the oldest is evicted first.
    pub capacity: usize,
}

impl Default for SlowLogConfig {
    fn default() -> Self {
        Self {
            threshold_ns: 100_000_000, // 100 ms
            capacity: 64,
        }
    }
}

impl SlowLogConfig {
    /// A config that never captures (threshold `u64::MAX`).
    pub fn disabled() -> Self {
        Self {
            threshold_ns: u64::MAX,
            capacity: 1,
        }
    }
}

/// One captured slow query (or stall dump).
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// `"slow"` (completion-path threshold) or `"stall"` (watchdog).
    pub kind: &'static str,
    /// Scheduler-assigned query tag (0 for stall dumps).
    pub query_tag: u64,
    /// Requested k (0 for stall dumps).
    pub k: u32,
    /// Requested algorithm (`"<watchdog>"` for stall dumps).
    pub algorithm: String,
    /// Admission-decision wait, clock ticks.
    pub admission_wait_ns: u64,
    /// FIFO queue wait, clock ticks.
    pub queue_wait_ns: u64,
    /// Execution time, clock ticks.
    pub execute_ns: u64,
    /// Response write time, clock ticks.
    pub response_write_ns: u64,
    /// End-to-end time, clock ticks.
    pub end_to_end_ns: u64,
    /// Wait-queue depth at capture time.
    pub queue_depth: u64,
    /// Slots held at capture time.
    pub in_flight: u64,
    /// Cumulative shed counter at capture time (overload context).
    pub shed_total: u64,
    /// Truncated flight-recorder ring dump (empty when the scheduler
    /// has no recorder).
    pub recorder: String,
}

impl SlowQueryRecord {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("kind", self.kind)
            .with("query_tag", self.query_tag)
            .with("k", u64::from(self.k))
            .with("algorithm", self.algorithm.as_str())
            .with("admission_wait_ns", self.admission_wait_ns)
            .with("queue_wait_ns", self.queue_wait_ns)
            .with("execute_ns", self.execute_ns)
            .with("response_write_ns", self.response_write_ns)
            .with("end_to_end_ns", self.end_to_end_ns)
            .with("queue_depth", self.queue_depth)
            .with("in_flight", self.in_flight)
            .with("shed_total", self.shed_total)
            .with("recorder", self.recorder.as_str())
    }
}

/// Bounded ring of slow-query evidence. One mutex, never held across a
/// blocking call; capture happens off the hot path (only for queries
/// that were already slow) so the lock is uncontended in practice.
#[derive(Debug)]
pub struct SlowLog {
    cfg: SlowLogConfig,
    ring: Mutex<VecDeque<SlowQueryRecord>>,
    /// Records ever captured (monotone; the ring may have evicted).
    captured: Counter,
}

impl SlowLog {
    /// An empty log with the given bounds.
    pub fn new(cfg: SlowLogConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            ring: Mutex::new(VecDeque::with_capacity(cfg.capacity.max(1))),
            captured: Counter::new(),
        })
    }

    /// The configured bounds.
    pub fn config(&self) -> SlowLogConfig {
        self.cfg
    }

    /// Whether an end-to-end latency crosses the capture threshold.
    pub fn is_slow(&self, end_to_end_ns: u64) -> bool {
        self.cfg.threshold_ns != u64::MAX && end_to_end_ns >= self.cfg.threshold_ns
    }

    /// Appends a record, evicting the oldest past capacity. The
    /// embedded recorder dump is truncated to [`SLOW_DUMP_MAX_BYTES`].
    pub fn push(&self, mut rec: SlowQueryRecord) {
        if rec.recorder.len() > SLOW_DUMP_MAX_BYTES {
            let mut cut = SLOW_DUMP_MAX_BYTES;
            while !rec.recorder.is_char_boundary(cut) {
                cut -= 1;
            }
            rec.recorder.truncate(cut);
            rec.recorder.push_str("\n…[truncated]");
        }
        let mut ring = self.ring.lock();
        while ring.len() >= self.cfg.capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(rec);
        drop(ring);
        self.captured.incr();
    }

    /// Captures a watchdog stall dump as a `"stall"` record.
    pub fn record_stall(&self, dump: &str) {
        self.push(SlowQueryRecord {
            kind: "stall",
            query_tag: 0,
            k: 0,
            algorithm: "<watchdog>".to_string(),
            admission_wait_ns: 0,
            queue_wait_ns: 0,
            execute_ns: 0,
            response_write_ns: 0,
            end_to_end_ns: 0,
            queue_depth: 0,
            in_flight: 0,
            shed_total: 0,
            recorder: dump.to_string(),
        });
    }

    /// Records ever captured (monotone, survives eviction).
    pub fn captured(&self) -> u64 {
        self.captured.get()
    }

    /// A copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<SlowQueryRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// The `/debug/slow` document: bounds, totals, and the records.
    pub fn to_json(&self) -> Json {
        let records = self.records();
        Json::obj()
            .with("threshold_ns", self.cfg.threshold_ns)
            .with("capacity", self.cfg.capacity as u64)
            .with("captured", self.captured())
            .with(
                "records",
                Json::Arr(records.iter().map(SlowQueryRecord::to_json).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tag: u64, dump: &str) -> SlowQueryRecord {
        SlowQueryRecord {
            kind: "slow",
            query_tag: tag,
            k: 10,
            algorithm: "sparta".into(),
            admission_wait_ns: 1,
            queue_wait_ns: 2,
            execute_ns: 3,
            response_write_ns: 4,
            end_to_end_ns: 11,
            queue_depth: 0,
            in_flight: 1,
            shed_total: 0,
            recorder: dump.into(),
        }
    }

    #[test]
    fn threshold_gates_capture() {
        let log = SlowLog::new(SlowLogConfig {
            threshold_ns: 100,
            capacity: 4,
        });
        assert!(!log.is_slow(99));
        assert!(log.is_slow(100));
        assert!(!SlowLog::new(SlowLogConfig::disabled()).is_slow(u64::MAX));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_all() {
        let log = SlowLog::new(SlowLogConfig {
            threshold_ns: 0,
            capacity: 2,
        });
        for tag in 1..=5 {
            log.push(rec(tag, "d"));
        }
        let got: Vec<u64> = log.records().iter().map(|r| r.query_tag).collect();
        assert_eq!(got, [4, 5], "oldest evicted first");
        assert_eq!(log.captured(), 5);
    }

    #[test]
    fn oversized_dump_is_truncated_at_char_boundary() {
        let log = SlowLog::new(SlowLogConfig {
            threshold_ns: 0,
            capacity: 1,
        });
        // Multibyte char straddling the cut must not split.
        let dump = "é".repeat(SLOW_DUMP_MAX_BYTES);
        log.push(rec(1, &dump));
        let got = &log.records()[0].recorder;
        assert!(got.len() <= SLOW_DUMP_MAX_BYTES + "\n…[truncated]".len());
        assert!(got.ends_with("[truncated]"));
    }

    #[test]
    fn stall_records_carry_the_dump() {
        let log = SlowLog::new(SlowLogConfig::default());
        log.record_stall("=== stall dump ===");
        let records = log.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "stall");
        assert!(records[0].recorder.contains("stall dump"));
        // The JSON document is parseable and carries the record.
        let text = log.to_json().to_pretty_string(2);
        let doc = sparta_obs::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("captured").and_then(Json::as_f64),
            Some(1.0),
            "{text}"
        );
    }
}
