//! Admission accounting under every explored schedule.
//!
//! Each simulated query is two jobs — an admission step and a
//! completion step — pushed onto one [`JobQueue`] and run by the
//! seeded [`DeterministicExecutor`], which permutes job order per
//! seed. Queued queries poll `try_claim` with a bounded budget, then
//! abandon. On **every** interleaving, with and without injected
//! panics and dropped jobs, the controller's books must balance:
//!
//! * `accepted == completed` once all permits are released,
//! * `accepted + shed + abandoned == admission attempts`,
//! * no query is ever both shed and answered,
//! * the controller ends empty (`in_flight == 0`, `queue_depth == 0`).

use sparta_exec::{DeterministicExecutor, Executor, FaultPlan, JobQueue};
use sparta_obs::ServerMetrics;
use sparta_server::admission::{AdmissionConfig, AdmissionController, Permit, QueueSlot, TryAdmit};
use sparta_testkit::{base_seed, sweep_schedules};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Per-query outcome flags, written from the job closures.
struct Flags {
    answered: Vec<AtomicBool>,
    shed: Vec<AtomicBool>,
    abandoned: Vec<AtomicBool>,
}

impl Flags {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            answered: (0..n).map(|_| AtomicBool::new(false)).collect(),
            shed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            abandoned: (0..n).map(|_| AtomicBool::new(false)).collect(),
        })
    }
}

/// How many `try_claim` polls a queued query spends before abandoning.
/// Generous enough that fault-free schedules always drain the queue,
/// bounded so a schedule that dropped the releasing job still ends.
const POLL_BUDGET: u32 = 200;

/// Pushes the completion job for query `i`: take the stored permit and
/// release it.
fn push_finish(
    queue: &Arc<JobQueue>,
    slots: &Arc<Vec<Mutex<Option<Permit>>>>,
    flags: &Arc<Flags>,
    i: usize,
) {
    let slots = Arc::clone(slots);
    let flags = Arc::clone(flags);
    queue.push(Box::new(move || {
        let permit = slots[i].lock().unwrap().take();
        drop(permit);
        flags.answered[i].store(true, Ordering::Relaxed);
    }) as Box<dyn FnOnce() + Send>);
}

/// Pushes one polling step for queued query `i`.
fn push_poll(
    queue: &Arc<JobQueue>,
    slots: &Arc<Vec<Mutex<Option<Permit>>>>,
    flags: &Arc<Flags>,
    slot: QueueSlot,
    i: usize,
    budget: u32,
) {
    let queue2 = Arc::clone(queue);
    let slots2 = Arc::clone(slots);
    let flags2 = Arc::clone(flags);
    queue.push(Box::new(move || match slot.try_claim() {
        Ok(permit) => {
            *slots2[i].lock().unwrap() = Some(permit);
            push_finish(&queue2, &slots2, &flags2, i);
        }
        Err(slot) => {
            if budget == 0 {
                drop(slot); // abandon: leaves the queue, counts abandoned
                flags2.abandoned[i].store(true, Ordering::Relaxed);
            } else {
                push_poll(&queue2, &slots2, &flags2, slot, i, budget - 1);
            }
        }
    }) as Box<dyn FnOnce() + Send>);
}

/// Builds the job graph for `n` queries against a fresh controller and
/// runs it on `exec`. Returns the controller and the outcome flags;
/// any permits stranded by dropped jobs are released before returning.
fn run_case(
    exec: &DeterministicExecutor,
    n: usize,
    cfg: AdmissionConfig,
) -> (Arc<AdmissionController>, Arc<Flags>) {
    let ctrl = AdmissionController::new(cfg, ServerMetrics::new());
    let queue = JobQueue::new();
    let slots: Arc<Vec<Mutex<Option<Permit>>>> =
        Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    let flags = Flags::new(n);
    for i in 0..n {
        let ctrl2 = Arc::clone(&ctrl);
        let queue2 = Arc::clone(&queue);
        let slots2 = Arc::clone(&slots);
        let flags2 = Arc::clone(&flags);
        queue.push(Box::new(move || match ctrl2.try_admit() {
            TryAdmit::Admitted(permit) => {
                *slots2[i].lock().unwrap() = Some(permit);
                push_finish(&queue2, &slots2, &flags2, i);
            }
            TryAdmit::Queued(slot) => {
                push_poll(&queue2, &slots2, &flags2, slot, i, POLL_BUDGET);
            }
            TryAdmit::Shed => {
                flags2.shed[i].store(true, Ordering::Relaxed);
            }
        }) as Box<dyn FnOnce() + Send>);
    }
    exec.run(Arc::clone(&queue));
    assert!(
        queue.is_complete(),
        "deterministic run must drain the queue"
    );
    // A dropped finish job strands its permit in the slot vector;
    // release them so `completed` accounts for every acceptance.
    for s in slots.iter() {
        drop(s.lock().unwrap().take());
    }
    (ctrl, flags)
}

/// The invariants every schedule must satisfy after the drain.
fn assert_books_balance(ctrl: &Arc<AdmissionController>, flags: &Flags, seed: u64) {
    let s = ctrl.metrics().snapshot();
    assert_eq!(
        s.accepted, s.completed,
        "seed {seed}: every accepted query must complete (snapshot {s:?})"
    );
    assert_eq!(
        s.accepted + s.shed + s.abandoned,
        s.attempts(),
        "seed {seed}: attempts must decompose exactly"
    );
    assert_eq!(ctrl.in_flight(), 0, "seed {seed}: slots leaked");
    assert_eq!(ctrl.queue_depth(), 0, "seed {seed}: waiters leaked");
    assert!(
        s.queued >= s.abandoned,
        "seed {seed}: only queued queries can abandon"
    );
    for i in 0..flags.answered.len() {
        let answered = flags.answered[i].load(Ordering::Relaxed);
        let shed = flags.shed[i].load(Ordering::Relaxed);
        let abandoned = flags.abandoned[i].load(Ordering::Relaxed);
        assert!(
            !(shed && answered),
            "seed {seed}: query {i} was both shed and answered"
        );
        assert!(
            !(abandoned && answered),
            "seed {seed}: query {i} both abandoned and answered"
        );
        assert!(
            !(shed && abandoned),
            "seed {seed}: query {i} both shed and abandoned"
        );
    }
}

#[test]
fn accounting_exact_on_every_schedule() {
    // 12 queries through a 2-slot budget with a 3-deep queue: every
    // schedule mixes immediate admits, queue waits, and sheds.
    sweep_schedules(150, |seed, exec| {
        let (ctrl, flags) = run_case(exec, 12, AdmissionConfig::new(2, 3));
        assert_books_balance(&ctrl, &flags, seed);
        let s = ctrl.metrics().snapshot();
        assert_eq!(s.attempts(), 12, "seed {seed}: every query must attempt");
        // Fault-free: every query ends in exactly one terminal state.
        for i in 0..12 {
            let terminal = flags.answered[i].load(Ordering::Relaxed) as u32
                + flags.shed[i].load(Ordering::Relaxed) as u32
                + flags.abandoned[i].load(Ordering::Relaxed) as u32;
            assert_eq!(terminal, 1, "seed {seed}: query {i} has no terminal state");
        }
    });
}

#[test]
fn shed_only_configuration_never_queues() {
    sweep_schedules(60, |seed, exec| {
        let (ctrl, flags) = run_case(exec, 8, AdmissionConfig::new(1, 0));
        assert_books_balance(&ctrl, &flags, seed);
        let s = ctrl.metrics().snapshot();
        assert_eq!(s.queued, 0, "seed {seed}: capacity 0 must never queue");
        assert_eq!(s.abandoned, 0, "seed {seed}");
        assert_eq!(s.accepted + s.shed, 8, "seed {seed}");
    });
}

#[test]
fn accounting_survives_panic_and_drop_injection() {
    let base = base_seed();
    for i in 0..60u64 {
        let seed = base.wrapping_add(i);
        // Vary where the faults land with the seed so the sweep covers
        // start jobs, finish jobs, and poll jobs.
        let plan = FaultPlan::none()
            .panic_at(seed % 9)
            .drop_at(3 + seed % 11)
            .drop_at(17 + seed % 5);
        let exec = DeterministicExecutor::new(seed).with_faults(plan);
        let (ctrl, flags) = run_case(&exec, 12, AdmissionConfig::new(2, 3));
        // Dropped start jobs mean some queries never attempt; the books
        // must still balance for those that did.
        assert_books_balance(&ctrl, &flags, seed);
        let s = ctrl.metrics().snapshot();
        assert!(
            s.attempts() <= 12,
            "seed {seed}: more attempts than queries"
        );
    }
}

#[test]
fn parallelism_sweep_matches_virtual_worker_count() {
    // The recorder multiplexes schedules over virtual workers; the
    // admission books must not depend on that choice.
    for parallelism in [1usize, 2, 4, 8] {
        let exec = DeterministicExecutor::new(base_seed()).with_parallelism(parallelism);
        let (ctrl, flags) = run_case(&exec, 10, AdmissionConfig::new(3, 2));
        assert_books_balance(&ctrl, &flags, base_seed());
    }
}
