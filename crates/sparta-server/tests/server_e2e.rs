//! End-to-end: a live server on loopback answers real queries with the
//! same hits a direct search produces, rejects nonsense without
//! falling over, and shuts down without leaking threads.

use sparta_core::{algorithm_by_name, SearchConfig};
use sparta_exec::DedicatedExecutor;
use sparta_obs::ServerMetrics;
use sparta_server::admission::AdmissionConfig;
use sparta_server::protocol::{ErrorCode, Frame, QueryRequest};
use sparta_server::scheduler::BatchScheduler;
use sparta_server::{serve, Client};
use sparta_testkit::{base_seed, build_index};
use std::sync::Arc;

fn start_server() -> (sparta_server::ServerHandle, Arc<dyn sparta_index::Index>) {
    let (index, _corpus) = build_index(base_seed());
    let scheduler = BatchScheduler::new(
        Arc::clone(&index),
        SearchConfig::exact(10),
        2,
        AdmissionConfig::new(2, 8),
        ServerMetrics::new(),
    );
    let handle = serve("127.0.0.1:0", scheduler).expect("bind loopback");
    (handle, index)
}

#[test]
fn served_hits_match_direct_search() {
    let (handle, index) = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let terms: Vec<u32> = vec![1, 2, 3];
    let req = QueryRequest {
        k: 5,
        algorithm: "sparta".to_string(),
        terms: terms.clone(),
    };
    let reply = client.query(&req).expect("query answered");
    let Frame::Response {
        query_tag,
        hits,
        summary,
    } = reply
    else {
        panic!("expected a response, got {reply:?}");
    };
    assert!(query_tag > 0, "scheduler must tag the query");
    assert!(summary.postings_scanned > 0, "work summary must be real");

    let direct = algorithm_by_name("sparta").unwrap().search(
        &index,
        &sparta_corpus::Query::new(terms),
        &SearchConfig::exact(5),
        &DedicatedExecutor::new(2),
    );
    let direct_docs: Vec<u32> = direct.hits.iter().map(|h| h.doc).collect();
    let served_docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
    assert_eq!(
        served_docs, direct_docs,
        "served top-k must equal direct top-k"
    );
    assert_eq!(
        hits.iter().map(|h| h.score).collect::<Vec<_>>(),
        direct.hits.iter().map(|h| h.score).collect::<Vec<_>>(),
    );
    handle.shutdown();
}

#[test]
fn multiple_sequential_queries_reuse_one_connection() {
    let (handle, _index) = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut tags = Vec::new();
    for terms in [vec![1], vec![2, 3], vec![4, 5, 6]] {
        let reply = client
            .query(&QueryRequest {
                k: 3,
                algorithm: "sparta".to_string(),
                terms,
            })
            .expect("answered");
        match reply {
            Frame::Response { query_tag, .. } => tags.push(query_tag),
            other => panic!("expected response, got {other:?}"),
        }
    }
    assert_eq!(tags.len(), 3);
    assert!(
        tags.windows(2).all(|w| w[0] < w[1]),
        "tags must be unique and increasing: {tags:?}"
    );
    let snap = handle.metrics().snapshot();
    assert_eq!(snap.accepted, 3);
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.shed, 0);
    handle.shutdown();
}

#[test]
fn bad_requests_get_typed_errors_not_disconnects() {
    let (handle, _index) = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    // Unknown algorithm.
    let reply = client
        .query(&QueryRequest {
            k: 3,
            algorithm: "nope".to_string(),
            terms: vec![1],
        })
        .expect("server must answer");
    assert!(
        matches!(
            reply,
            Frame::Error {
                code: ErrorCode::UnknownAlgorithm,
                ..
            }
        ),
        "got {reply:?}"
    );
    // k = 0.
    let reply = client
        .query(&QueryRequest {
            k: 0,
            algorithm: "sparta".to_string(),
            terms: vec![1],
        })
        .expect("server must answer");
    assert!(
        matches!(
            reply,
            Frame::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "got {reply:?}"
    );
    // The connection survived both errors: a valid query still works.
    let reply = client
        .query(&QueryRequest {
            k: 2,
            algorithm: "sparta".to_string(),
            terms: vec![1, 2],
        })
        .expect("answered after errors");
    assert!(matches!(reply, Frame::Response { .. }), "got {reply:?}");
    // Neither rejected request consumed an admission slot.
    assert_eq!(handle.metrics().snapshot().accepted, 1);
    handle.shutdown();
}

#[test]
fn concurrent_clients_are_all_answered() {
    let (handle, _index) = start_server();
    let addr = handle.addr();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client
                    .query(&QueryRequest {
                        k: 4,
                        algorithm: "sparta".to_string(),
                        terms: vec![1 + i as u32, 2],
                    })
                    .expect("answered");
                matches!(reply, Frame::Response { .. })
            })
        })
        .collect();
    let answered = threads
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .filter(|&ok| ok)
        .count();
    // Budget 2 + queue 8 ≥ 8 concurrent queries: none shed.
    assert_eq!(answered, 8, "all concurrent queries must be answered");
    let snap = handle.metrics().snapshot();
    assert_eq!(snap.accepted, 8);
    assert_eq!(snap.completed, 8);
    assert_eq!(snap.shed, 0);
    assert!(snap.in_flight_highwater <= 2, "budget must cap concurrency");
    handle.shutdown();
}

#[test]
fn shutdown_joins_cleanly_with_idle_connections() {
    let (handle, _index) = start_server();
    // An idle connection that never sends anything must not block
    // shutdown (the handler polls the stop flag).
    let _idle = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let t0 = std::time::Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not hang on idle connections"
    );
}
