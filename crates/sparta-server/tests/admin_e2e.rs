//! Live observability plane, end to end: a burst of real queries over
//! TCP must leave a consistent story in `/metrics` (stage histograms in
//! lockstep, stage sums bounded by end-to-end), `/readyz` must track
//! the server lifecycle, and an injected executor stall must surface in
//! `/debug/slow` with flight-recorder evidence attached.

use sparta_core::SearchConfig;
use sparta_exec::{DeterministicExecutor, Executor, FaultPlan};
use sparta_obs::json::Json;
use sparta_obs::{parse_exposition, sample_value, ClockMode, FlightRecorder, ServerMetrics};
use sparta_server::admission::AdmissionConfig;
use sparta_server::protocol::{Frame, QueryRequest};
use sparta_server::scheduler::BatchScheduler;
use sparta_server::slowlog::SlowLogConfig;
use sparta_server::{http_get, serve_with_admin, Client, ServerHandle};
use sparta_testkit::{base_seed, build_index};
use std::net::SocketAddr;
use std::sync::Arc;

fn start_server() -> (ServerHandle, SocketAddr) {
    let (index, _corpus) = build_index(base_seed());
    let scheduler = BatchScheduler::new(
        Arc::clone(&index),
        SearchConfig::exact(10),
        2,
        AdmissionConfig::new(2, 8),
        ServerMetrics::new(),
    );
    let handle = serve_with_admin("127.0.0.1:0", "127.0.0.1:0", scheduler).expect("bind loopback");
    let admin = handle.admin_addr().expect("admin listener bound");
    (handle, admin)
}

fn scrape(admin: SocketAddr) -> Vec<(String, f64)> {
    let (status, body) = http_get(admin, "/metrics").expect("/metrics answers");
    assert_eq!(status, 200);
    parse_exposition(&body).expect("exposition parses")
}

#[test]
fn burst_load_leaves_consistent_stage_decomposition() {
    let (handle, admin) = start_server();
    let addr = handle.addr();
    // A burst wider than the in-flight budget (2), so some queries
    // actually wait in the queue and the queue_wait stage is exercised.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client
                    .query(&QueryRequest {
                        k: 5,
                        algorithm: "sparta".to_string(),
                        terms: vec![1 + i as u32, 2, 3],
                    })
                    .expect("answered");
                assert!(matches!(reply, Frame::Response { .. }), "got {reply:?}");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let samples = scrape(admin);
    let get = |series: &str| {
        sample_value(&samples, series).unwrap_or_else(|| panic!("missing series {series}"))
    };

    // Admission counters: the rendered invariant holds and matches the
    // eight completed queries.
    let attempts = get("sparta_server_admission_attempts_total");
    let accepted = get("sparta_server_admission_accepted_total");
    let shed = get("sparta_server_admission_shed_total");
    let abandoned = get("sparta_server_admission_abandoned_total");
    assert_eq!(attempts, accepted + shed + abandoned);
    assert_eq!(accepted, 8.0);
    assert_eq!(get("sparta_server_completed_total"), 8.0);

    // Every stage histogram advanced once per completed query — the
    // decomposition never skips a stage.
    let stage_count = |stage: &str| {
        get(&format!(
            "sparta_server_stage_duration_nanoseconds_count{{stage=\"{stage}\"}}"
        ))
    };
    for stage in ["admission_wait", "queue_wait", "execute", "response_write"] {
        assert_eq!(
            stage_count(stage),
            8.0,
            "stage {stage} count out of lockstep"
        );
    }
    assert_eq!(get("sparta_server_e2e_duration_nanoseconds_count"), 8.0);

    // The invariant the decomposition promises: the summed stages
    // never exceed the end-to-end total (stages are disjoint
    // sub-intervals of each query's lifetime on one clock).
    let stage_sum: f64 = ["admission_wait", "queue_wait", "execute", "response_write"]
        .iter()
        .map(|stage| {
            get(&format!(
                "sparta_server_stage_duration_nanoseconds_sum{{stage=\"{stage}\"}}"
            ))
        })
        .sum();
    let e2e_sum = get("sparta_server_e2e_duration_nanoseconds_sum");
    assert!(
        stage_sum <= e2e_sum,
        "stage sums ({stage_sum}) must bound end-to-end ({e2e_sum})"
    );
    assert!(e2e_sum > 0.0, "real queries take nonzero time");

    // The executor snapshot rides along (the pool is instrumented).
    assert!(
        get("sparta_exec_jobs_run_total{executor=\"pool\"}") > 0.0,
        "pool metrics must be in the exposition"
    );
    handle.shutdown();
}

#[test]
fn readyz_tracks_lifecycle_and_debug_routes_serve() {
    let (handle, admin) = start_server();
    let (status, body) = http_get(admin, "/healthz").expect("healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = http_get(admin, "/readyz").expect("readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"));

    // Run one query so the flight-recorder rings hold real events.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client
        .query(&QueryRequest {
            k: 3,
            algorithm: "sparta".to_string(),
            terms: vec![1, 2],
        })
        .expect("answered");
    assert!(matches!(reply, Frame::Response { .. }));

    // The trace dump is well-formed Chrome trace JSON.
    let (status, body) = http_get(admin, "/debug/trace").expect("trace");
    assert_eq!(status, 200);
    sparta_obs::validate_trace_json(&body).expect("valid chrome trace");

    // The slow log serves (empty) JSON with its bounds.
    let (status, body) = http_get(admin, "/debug/slow").expect("slow");
    assert_eq!(status, 200);
    let doc = sparta_obs::json::parse(&body).expect("slow log is JSON");
    assert_eq!(doc.get("captured").and_then(Json::as_f64), Some(0.0));

    // Drain flips readiness without stopping service.
    handle.drain();
    let (status, body) = http_get(admin, "/readyz").expect("readyz after drain");
    assert_eq!((status, body.as_str()), (503, "not ready\n"));
    let (status, _) = http_get(admin, "/healthz").expect("healthz after drain");
    assert_eq!(status, 200, "drain must not kill liveness");
    // The data plane still answers during the drain window.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client
        .query(&QueryRequest {
            k: 3,
            algorithm: "sparta".to_string(),
            terms: vec![1, 2],
        })
        .expect("answered during drain");
    assert!(matches!(reply, Frame::Response { .. }));
    handle.shutdown();
}

#[test]
fn injected_stall_lands_in_slow_log_with_recorder_evidence() {
    let (index, _corpus) = build_index(base_seed());
    // A deterministic executor that stalls at step 3: `run` returns
    // with work still outstanding, the query completes with partial
    // results, and the recorder rings hold the steps that did run.
    let recorder = FlightRecorder::new(2, 256, ClockMode::Logical);
    let exec = DeterministicExecutor::new(base_seed())
        .with_parallelism(2)
        .with_faults(FaultPlan::none().stall_at(3))
        .with_recorder(Arc::clone(&recorder));
    let scheduler = BatchScheduler::with_executor(
        Arc::clone(&index),
        SearchConfig::exact(10),
        Arc::new(exec) as Arc<dyn Executor + Send + Sync>,
        Some(recorder),
        AdmissionConfig::new(2, 8),
        ServerMetrics::new(),
    )
    // Threshold 0: every completion is "slow", so the stalled query's
    // capture is deterministic.
    .with_slow_log(SlowLogConfig {
        threshold_ns: 0,
        capacity: 8,
    });
    let handle = serve_with_admin("127.0.0.1:0", "127.0.0.1:0", scheduler).expect("bind loopback");
    let admin = handle.admin_addr().expect("admin bound");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client
        .query(&QueryRequest {
            k: 5,
            algorithm: "sparta".to_string(),
            terms: vec![1, 2, 3],
        })
        .expect("stalled query still answers (partial results)");
    assert!(matches!(reply, Frame::Response { .. }), "got {reply:?}");

    // The capture lands just *after* the response write (the write is
    // part of the measured decomposition), so poll briefly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let doc = loop {
        let (status, body) = http_get(admin, "/debug/slow").expect("slow log answers");
        assert_eq!(status, 200);
        let doc = sparta_obs::json::parse(&body).expect("slow log is JSON");
        if doc.get("captured").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0 {
            break doc;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stalled query must be captured: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .expect("records array");
    let rec = records.last().expect("at least one record");
    assert_eq!(
        rec.get("kind").and_then(Json::as_str),
        Some("slow"),
        "completion-path capture"
    );
    assert_eq!(rec.get("algorithm").and_then(Json::as_str), Some("sparta"));
    assert_eq!(rec.get("k").and_then(Json::as_f64), Some(5.0));
    let dump = rec
        .get("recorder")
        .and_then(Json::as_str)
        .expect("recorder field present");
    assert!(
        !dump.is_empty(),
        "flight-recorder snapshot must be non-empty"
    );
    assert!(
        dump.contains("worker"),
        "dump shows per-worker rings: {dump}"
    );
    handle.shutdown();
}
