//! Admin-plane error paths: the HTTP/1.0 listener must answer typed
//! errors — never panic, never wedge a thread — for every malformed
//! input a port scanner or a confused client can throw at it.

use sparta_core::SearchConfig;
use sparta_obs::ServerMetrics;
use sparta_server::admission::AdmissionConfig;
use sparta_server::scheduler::BatchScheduler;
use sparta_server::{http_get, serve_with_admin, ServerHandle, MAX_REQUEST_BYTES};
use sparta_testkit::{base_seed, build_index};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn start_server() -> (ServerHandle, SocketAddr) {
    let (index, _corpus) = build_index(base_seed());
    let scheduler = BatchScheduler::new(
        Arc::clone(&index),
        SearchConfig::exact(10),
        2,
        AdmissionConfig::new(2, 8),
        ServerMetrics::new(),
    );
    let handle = serve_with_admin("127.0.0.1:0", "127.0.0.1:0", scheduler).expect("bind loopback");
    let admin = handle.admin_addr().expect("admin listener bound");
    (handle, admin)
}

/// Sends raw bytes and returns the full raw response.
fn send_raw(admin: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(admin).expect("connect admin");
    stream.write_all(payload).expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn malformed_request_line_gets_400() {
    let (handle, admin) = start_server();
    for payload in [
        "GARBAGE\r\n",
        "GET /metrics\r\n",          // no version
        "GET metrics HTTP/1.0\r\n",  // relative path
        "GET /x HTTP/1.0 extra\r\n", // trailing tokens
        "\r\n",                      // empty line
    ] {
        let resp = send_raw(admin, payload.as_bytes());
        assert!(
            resp.starts_with("HTTP/1.0 400 "),
            "payload {payload:?} got {resp:?}"
        );
    }
    // The listener survived all of it.
    let (status, _) = http_get(admin, "/healthz").expect("healthz answers");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn unknown_path_gets_404_and_wrong_method_405() {
    let (handle, admin) = start_server();
    let (status, body) = http_get(admin, "/nope").expect("answered");
    assert_eq!(status, 404);
    assert!(body.contains("/nope"), "404 names the path: {body:?}");
    let resp = send_raw(admin, b"POST /metrics HTTP/1.0\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.0 405 "), "got {resp:?}");
    handle.shutdown();
}

#[test]
fn oversized_request_gets_431() {
    let (handle, admin) = start_server();
    // A request line that never ends: more than the head cap with no
    // newline anywhere.
    let huge = vec![b'A'; MAX_REQUEST_BYTES * 2];
    let resp = send_raw(admin, &huge);
    assert!(resp.starts_with("HTTP/1.0 431 "), "got {resp:?}");
    // Still serving.
    let (status, _) = http_get(admin, "/healthz").expect("healthz answers");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn truncated_request_at_every_byte_never_wedges() {
    let (handle, admin) = start_server();
    let request = b"GET /healthz HTTP/1.0\r\n\r\n";
    // Send every strict prefix, then hang up. The handler must treat
    // each as a dead client and move on (same style as the data-plane
    // protocol truncation test).
    for cut in 0..request.len() {
        let mut stream = TcpStream::connect(admin).expect("connect");
        stream.write_all(&request[..cut]).expect("write prefix");
        drop(stream); // EOF before a complete request
    }
    // After all that abuse, a whole request still works.
    let (status, body) = http_get(admin, "/healthz").expect("healthz answers");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    handle.shutdown();
}

#[test]
fn client_hangup_mid_response_is_survived() {
    let (handle, admin) = start_server();
    // Ask for the biggest response (/metrics) and vanish immediately
    // without reading it; the handler's failed write must be absorbed.
    for _ in 0..8 {
        let mut stream = TcpStream::connect(admin).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("write");
        drop(stream); // gone before the response lands
    }
    let (status, body) = http_get(admin, "/metrics").expect("metrics answers");
    assert_eq!(status, 200);
    assert!(body.contains("sparta_server_admission_attempts_total"));
    handle.shutdown();
}

#[test]
fn shutdown_joins_with_idle_admin_connection() {
    let (handle, admin) = start_server();
    // An admin connection that never sends a byte must not block
    // shutdown (the head reader polls the stop flag).
    let _idle = TcpStream::connect(admin).expect("connect");
    let t0 = std::time::Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not hang on idle admin connections"
    );
}
