//! Protocol conformance: every frame round-trips bit-exactly over an
//! in-memory transport, and no input — truncated, oversized, or
//! garbage — can make the decoder panic.

use sparta_server::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ProtocolError, QueryRequest, TraceSummary, WireHit,
    MAX_PAYLOAD,
};
use std::io::Cursor;

fn request(k: u32, algorithm: &str, terms: Vec<u32>) -> Frame {
    Frame::Request(QueryRequest {
        k,
        algorithm: algorithm.to_string(),
        terms,
    })
}

fn response(tag: u64, hits: Vec<WireHit>) -> Frame {
    Frame::Response {
        query_tag: tag,
        hits,
        summary: TraceSummary {
            elapsed_ns: 123_456,
            postings_scanned: 9_999,
            heap_updates: 321,
            cleaner_passes: 7,
        },
    }
}

fn all_frame_kinds() -> Vec<Frame> {
    vec![
        request(10, "sparta", vec![1, 2, 3]),
        request(1, "pbmw", vec![]),
        request(u32::MAX, "x", vec![u32::MAX; 100]),
        response(0, vec![]),
        response(
            u64::MAX,
            vec![
                WireHit { doc: 0, score: 0 },
                WireHit {
                    doc: u32::MAX,
                    score: u64::MAX,
                },
            ],
        ),
        Frame::Error {
            code: ErrorCode::Shed,
            message: "overloaded".to_string(),
        },
        Frame::Error {
            code: ErrorCode::BadRequest,
            message: String::new(),
        },
        Frame::Error {
            code: ErrorCode::UnknownAlgorithm,
            message: "no such algorithm \u{1F50D}".to_string(),
        },
        Frame::Error {
            code: ErrorCode::Internal,
            message: "x".repeat(1000),
        },
    ]
}

#[test]
fn every_frame_kind_round_trips() {
    for frame in all_frame_kinds() {
        let bytes = frame.encode();
        let mut cursor = Cursor::new(bytes);
        let back = read_frame(&mut cursor).expect("well-formed frame decodes");
        assert_eq!(back, frame, "round trip must be lossless");
        // And the payload decoder agrees with the stream reader.
        let payload = frame.encode_payload();
        assert_eq!(Frame::decode_payload(&payload).unwrap(), frame);
    }
}

#[test]
fn frames_round_trip_back_to_back_on_one_stream() {
    let frames = all_frame_kinds();
    let mut wire = Vec::new();
    for f in &frames {
        write_frame(&mut wire, f).unwrap();
    }
    let mut cursor = Cursor::new(wire);
    for f in &frames {
        assert_eq!(&read_frame(&mut cursor).unwrap(), f);
    }
    assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Closed));
}

#[test]
fn empty_stream_reports_closed_not_truncated() {
    let mut cursor = Cursor::new(Vec::<u8>::new());
    assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Closed));
}

#[test]
fn truncation_at_every_byte_is_an_error_never_a_panic() {
    for frame in all_frame_kinds() {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            let err = read_frame(&mut cursor).expect_err("cut frame cannot decode");
            match err {
                ProtocolError::Closed => assert_eq!(cut, 0, "only a clean EOF is Closed"),
                ProtocolError::Truncated => assert!(cut > 0),
                other => panic!("cut at {cut}: expected Closed/Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    let mut wire = ((MAX_PAYLOAD + 1) as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 16]); // far less than the declared length
    let mut cursor = Cursor::new(wire);
    assert_eq!(
        read_frame(&mut cursor),
        Err(ProtocolError::Oversized((MAX_PAYLOAD + 1) as u32))
    );
}

#[test]
fn unknown_tag_is_rejected() {
    for tag in [0x00u8, 0x04, 0x7F, 0xFF] {
        let err = Frame::decode_payload(&[tag, 1, 2, 3]).unwrap_err();
        assert_eq!(err, ProtocolError::UnknownTag(tag), "tag {tag:#04x}");
    }
}

#[test]
fn malformed_payloads_are_rejected() {
    // Empty payload.
    assert!(matches!(
        Frame::decode_payload(&[]),
        Err(ProtocolError::Malformed(_))
    ));
    // Request whose declared term count exceeds the payload.
    let mut p = request(5, "sparta", vec![1, 2]).encode_payload();
    let cut = p.len() - 4; // drop the last term's bytes
    p.truncate(cut);
    assert!(matches!(
        Frame::decode_payload(&p),
        Err(ProtocolError::Malformed(_))
    ));
    // Trailing garbage after a valid frame body.
    let mut p = request(5, "sparta", vec![1, 2]).encode_payload();
    p.push(0xAB);
    assert_eq!(
        Frame::decode_payload(&p),
        Err(ProtocolError::Malformed("trailing bytes after frame"))
    );
    // Algorithm name that is not UTF-8.
    let mut p = vec![0x01];
    p.extend_from_slice(&5u32.to_le_bytes());
    p.push(2); // name length
    p.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
    p.extend_from_slice(&0u16.to_le_bytes());
    assert_eq!(
        Frame::decode_payload(&p),
        Err(ProtocolError::Malformed("algorithm name not UTF-8"))
    );
    // Error frame with an unknown code.
    let p = [0x03u8, 99, 0, 0];
    assert_eq!(
        Frame::decode_payload(&p),
        Err(ProtocolError::Malformed("unknown error code"))
    );
}

/// Seeded garbage sweep: random payloads of random lengths must decode
/// to `Ok` or `Err`, never panic, and the prefix reader must never
/// over-read. Deterministic under `SPARTA_TEST_SEED`.
#[test]
fn garbage_never_panics() {
    let mut seed = sparta_testkit::base_seed();
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for round in 0..2000 {
        let len = (next() % 256) as usize;
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            payload.push(next() as u8);
        }
        // Bias some rounds toward almost-valid frames: force a real tag.
        if round % 3 == 0 && !payload.is_empty() {
            payload[0] = (round % 3 + 1) as u8;
        }
        let _ = Frame::decode_payload(&payload);
        // The same bytes with a length prefix through the stream path.
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        let mut cursor = Cursor::new(wire);
        let _ = read_frame(&mut cursor);
    }
}
