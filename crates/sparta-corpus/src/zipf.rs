//! Zipf-distributed sampling over term ranks.
//!
//! Web-corpus vocabularies are famously Zipfian: the term of rank r
//! appears with frequency ∝ 1/rˢ. The synthetic corpus generator uses
//! this to assign every vocabulary term a "global frequency rate"
//! F(tᵢ), which the paper's ClueWebX10 recipe then feeds into a
//! geometric per-document occurrence model (§5.1).
//!
//! [`Zipf`] implements the rejection-inversion sampler of Hörmann &
//! Derflinger ("Rejection-inversion to generate variates from monotone
//! discrete distributions", 1996) — O(1) per sample with no setup
//! tables, the same algorithm used by `rand_distr::Zipf`.

use rand::Rng;

/// Zipf distribution over `1..=n` with exponent `s > 0`.
///
/// ```
/// use sparta_corpus::zipf::Zipf;
/// use rand::SeedableRng;
/// let zipf = Zipf::new(1_000, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let r = zipf.sample(&mut rng);
/// assert!((1..=1_000).contains(&r));
/// assert!(zipf.pmf(1) > zipf.pmf(2));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme
    // (Hörmann & Derflinger 1996, as in the `zipf`/`rand_distr` crates).
    h_x1: f64,
    h_n: f64,
    shift: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let mut z = Self {
            n,
            s,
            h_x1: 0.0,
            h_n: 0.0,
            shift: 0.0,
        };
        z.h_x1 = z.h_integral(1.5) - 1.0;
        z.h_n = z.h_integral(n as f64 + 0.5);
        z.shift = 2.0 - z.h_integral_inv(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// Support size n.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent s.
    pub fn s(&self) -> f64 {
        self.s
    }

    // H(x) = ((x^(1-q)) - 1) / (1 - q), or ln(x) at q = 1.
    fn h_integral(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    fn h_integral_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + (1.0 - self.s) * x).powf(1.0 / (1.0 - self.s))
        }
    }

    fn h(&self, x: f64) -> f64 {
        x.powf(-self.s)
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.shift || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64;
            }
        }
    }

    /// The unnormalized weight of rank `r`, i.e. `r^-s`.
    pub fn weight(&self, r: u64) -> f64 {
        (r as f64).powf(-self.s)
    }

    /// The normalization constant Hₙ,ₛ = Σ_{r=1..n} r^-s, computed
    /// exactly for small n and via the Euler–Maclaurin approximation
    /// for large n (relative error < 1e-6 for n > 1000).
    pub fn harmonic(&self) -> f64 {
        if self.n <= 10_000 {
            (1..=self.n).map(|r| self.weight(r)).sum()
        } else {
            let exact: f64 = (1..=10_000u64).map(|r| self.weight(r)).sum();
            let a = 10_000.5f64;
            let b = self.n as f64 + 0.5;
            let tail = if (self.s - 1.0).abs() < 1e-9 {
                (b / a).ln()
            } else {
                (b.powf(1.0 - self.s) - a.powf(1.0 - self.s)) / (1.0 - self.s)
            };
            exact + tail
        }
    }

    /// Probability of rank `r` under the normalized distribution.
    pub fn pmf(&self, r: u64) -> f64 {
        self.weight(r) / self.harmonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_support() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        const N: u32 = 100_000;
        for _ in 0..N {
            let r = z.sample(&mut rng);
            if r <= 4 {
                counts[(r - 1) as usize] += 1;
            }
        }
        // Empirical frequencies must be monotone decreasing and close
        // to the theoretical pmf.
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        let p1 = f64::from(counts[0]) / f64::from(N);
        let want = z.pmf(1);
        assert!(
            (p1 - want).abs() < 0.01,
            "empirical {p1:.4} vs theoretical {want:.4}"
        );
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.9);
        let total: f64 = (1..=500).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_approximation_matches_exact() {
        // Compare the Euler–Maclaurin tail against brute force on a
        // size just above the exact cutoff.
        let z = Zipf::new(50_000, 1.0);
        let brute: f64 = (1..=50_000u64).map(|r| z.weight(r)).sum();
        let approx = z.harmonic();
        assert!(
            ((brute - approx) / brute).abs() < 1e-5,
            "brute {brute} vs approx {approx}"
        );
    }

    #[test]
    fn degenerate_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 1);
        assert!((z.pmf(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
