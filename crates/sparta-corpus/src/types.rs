//! Shared vocabulary of identifier and statistics types.

/// Document identifier. The paper's corpora reach 500M documents; `u32`
/// covers 4.29B and keeps postings at 8 bytes.
pub type DocId = u32;

/// Term (feature) identifier into the corpus vocabulary.
pub type TermId = u32;

/// A document represented as a bag of words: `(term, term frequency)`
/// pairs with distinct terms. "The order is immaterial for our document
/// scoring function" (§5.1), so a bag is all the indexer ever needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocBag {
    /// The document's id.
    pub id: DocId,
    /// Distinct `(term, tf)` pairs, `tf >= 1`.
    pub terms: Vec<(TermId, u32)>,
}

impl DocBag {
    /// Total token count of the document (sum of term frequencies).
    pub fn len_tokens(&self) -> u64 {
        self.terms.iter().map(|&(_, tf)| u64::from(tf)).sum()
    }
}

/// A query: a list of term ids (a bag of words after textual analysis,
/// §6: "we consider the query as a bag of words given after textual
/// analysis").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// Query terms. Duplicates are allowed in principle but the
    /// generators never produce them.
    pub terms: Vec<TermId>,
}

impl Query {
    /// Builds a query from term ids.
    pub fn new(terms: Vec<TermId>) -> Self {
        Self { terms }
    }

    /// Number of terms m.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Global corpus statistics needed by scoring functions.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Total number of documents N.
    pub num_docs: u64,
    /// Average document length (in tokens).
    pub avg_doc_len: f64,
    /// Document frequency per term (number of documents containing it).
    pub doc_freq: Vec<u32>,
    /// Per-document length in tokens, indexed by `DocId`.
    pub doc_len: Vec<u32>,
}

impl CorpusStats {
    /// Document frequency of `term`, 0 for unknown terms.
    pub fn df(&self, term: TermId) -> u32 {
        self.doc_freq.get(term as usize).copied().unwrap_or(0)
    }

    /// Length in tokens of document `doc`, 0 for unknown docs.
    pub fn dl(&self, doc: DocId) -> u32 {
        self.doc_len.get(doc as usize).copied().unwrap_or(0)
    }

    /// Vocabulary size (number of known terms).
    pub fn vocab_size(&self) -> usize {
        self.doc_freq.len()
    }

    /// Recomputes `avg_doc_len` from `doc_len`; builders call this after
    /// streaming in documents.
    pub fn finalize(&mut self) {
        self.num_docs = self.doc_len.len() as u64;
        let total: u64 = self.doc_len.iter().map(|&l| u64::from(l)).sum();
        self.avg_doc_len = if self.num_docs == 0 {
            0.0
        } else {
            total as f64 / self.num_docs as f64
        };
    }
}

impl Default for CorpusStats {
    fn default() -> Self {
        Self {
            num_docs: 0,
            avg_doc_len: 0.0,
            doc_freq: Vec::new(),
            doc_len: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_bag_token_count() {
        let d = DocBag {
            id: 3,
            terms: vec![(0, 2), (5, 1), (9, 4)],
        };
        assert_eq!(d.len_tokens(), 7);
    }

    #[test]
    fn stats_finalize() {
        let mut s = CorpusStats {
            doc_len: vec![10, 20, 30],
            doc_freq: vec![1, 2],
            ..Default::default()
        };
        s.finalize();
        assert_eq!(s.num_docs, 3);
        assert!((s.avg_doc_len - 20.0).abs() < 1e-9);
        assert_eq!(s.df(1), 2);
        assert_eq!(s.df(99), 0);
        assert_eq!(s.dl(2), 30);
        assert_eq!(s.dl(99), 0);
    }

    #[test]
    fn query_len() {
        let q = Query::new(vec![1, 2, 3]);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(Query::new(vec![]).is_empty());
    }
}
