//! Synthetic ClueWeb-like corpus generation.
//!
//! The paper's ClueWebX10 recipe (§5.1): "Each document is a bag of
//! words drawn from the original ClueWeb dictionary … so that the
//! number of occurrences of a term tᵢ with an original global frequency
//! rate of F(tᵢ) is drawn from a geometric distribution with a stopping
//! probability of 1 − F(tᵢ). This process preserves the term frequency
//! distribution."
//!
//! We implement exactly this process, with F derived from a Zipf
//! rank-frequency law (the empirical shape of web vocabularies). The
//! model is document-independent per term, which permits a crucial
//! refactoring: instead of looping documents × vocabulary, we generate
//! **per-term posting lists directly** — for term t,
//! `df(t) ~ Binomial(N, F(t))` documents contain it (since
//! `P(occurrences ≥ 1) = F(t)` under the geometric model), and each
//! occurrence count is `1 + Geometric(F(t))`. This is distributionally
//! identical to the paper's per-document recipe and lets a 10×-scaled
//! corpus stream straight into the index writer without ever
//! materializing documents.
//!
//! Generation is two-phase and deterministic: each term's postings are
//! produced by an RNG seeded from `(corpus seed, term)`, so phase A can
//! stream over all terms once to accumulate document lengths (needed by
//! the scorer) and phase B can regenerate identical postings on demand.

use crate::sampling;
use crate::types::{CorpusStats, DocBag, DocId, TermId};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the generative corpus model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusModel {
    /// Number of documents N.
    pub num_docs: u64,
    /// Vocabulary size V.
    pub vocab_size: u32,
    /// Zipf exponent of the rank-frequency law (web text ≈ 1.0).
    pub zipf_exponent: f64,
    /// Cap on any term's global frequency rate F(t) (stop-word ceiling).
    pub max_rate: f64,
    /// Target average document length in tokens; scales the F curve.
    pub target_avg_doc_len: f64,
    /// Master RNG seed; everything is a pure function of it.
    pub seed: u64,
}

impl CorpusModel {
    /// A ClueWeb09B-like model scaled to `num_docs` documents.
    ///
    /// The real dataset has 50M documents; this machine cannot hold
    /// that, so benchmarks use a scaled `num_docs` while preserving the
    /// vocabulary shape (Zipf s = 1.0) and average document length
    /// (≈ 380 tokens for ClueWeb09B after HTML stripping; we use a more
    /// conservative 250 to keep generation fast). The vocabulary is
    /// scaled with the corpus (Heaps' law, V ≈ 30·N^0.5) so that
    /// posting-list length *relative to corpus size* matches the real
    /// data's regime.
    pub fn clueweb_sim(num_docs: u64, seed: u64) -> Self {
        let vocab = ((num_docs as f64).sqrt() * 30.0).ceil() as u32;
        Self {
            num_docs,
            vocab_size: vocab.clamp(1_000, 2_000_000),
            zipf_exponent: 1.0,
            max_rate: 0.25,
            target_avg_doc_len: 250.0,
            seed,
        }
    }

    /// The paper's ClueWebX10 scale-up: same dictionary and term
    /// frequency distribution, 10× the documents (§5.1).
    pub fn x10(&self) -> Self {
        Self {
            num_docs: self.num_docs * 10,
            // Same dictionary: the scale-up draws from the *original*
            // ClueWeb dictionary, so vocab_size is unchanged.
            seed: self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            ..*self
        }
    }

    /// A tiny model for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            num_docs: 2_000,
            vocab_size: 500,
            zipf_exponent: 1.0,
            max_rate: 0.3,
            target_avg_doc_len: 60.0,
            seed,
        }
    }
}

/// A generated synthetic corpus: term rates plus phase-A statistics.
///
/// Posting lists are *not* stored; [`SynthCorpus::term_postings`]
/// regenerates any term's postings deterministically, so arbitrarily
/// large corpora can be streamed into an index writer with O(N)
/// transient memory (the document-length array).
pub struct SynthCorpus {
    model: CorpusModel,
    /// Global frequency rate F(t) per term.
    rates: Vec<f64>,
    stats: CorpusStats,
}

impl SynthCorpus {
    /// Runs phase A: derives per-term rates from the Zipf law, scales
    /// them to the target average document length, and streams over all
    /// terms once to accumulate exact document lengths and document
    /// frequencies.
    pub fn build(model: CorpusModel) -> Self {
        assert!(model.num_docs > 0 && model.vocab_size > 0);
        assert!(model.num_docs <= u64::from(u32::MAX), "DocId is u32");
        let rates = Self::derive_rates(&model);
        let mut doc_len = vec![0u32; model.num_docs as usize];
        let mut doc_freq = vec![0u32; model.vocab_size as usize];
        let mut scratch = Vec::new();
        for t in 0..model.vocab_size {
            Self::gen_term_into(&model, &rates, t, &mut scratch);
            doc_freq[t as usize] = scratch.len() as u32;
            for &(d, tf) in &scratch {
                doc_len[d as usize] = doc_len[d as usize].saturating_add(tf);
            }
        }
        let mut stats = CorpusStats {
            doc_freq,
            doc_len,
            ..Default::default()
        };
        stats.finalize();
        Self {
            model,
            rates,
            stats,
        }
    }

    fn derive_rates(model: &CorpusModel) -> Vec<f64> {
        let zipf = Zipf::new(u64::from(model.vocab_size), model.zipf_exponent);
        // Unscaled weights w_r = r^-s; expected tokens per document for
        // rate F is F/(1-F) + F ≈ F·(2-F)/(1-F); we scale c so that
        // Σ E[tokens] = target_avg_doc_len, iterating because of the
        // max_rate cap and the nonlinearity.
        let weights: Vec<f64> = (1..=u64::from(model.vocab_size))
            .map(|r| zipf.weight(r))
            .collect();
        let expected_tokens = |c: f64| -> f64 {
            weights
                .iter()
                .map(|&w| {
                    let f = (c * w).min(model.max_rate);
                    // present with prob f; tf = 1 + Geometric(f) whose
                    // mean is f/(1-f); E[tokens] = f·(1 + f/(1-f)).
                    f * (1.0 + f / (1.0 - f))
                })
                .sum()
        };
        // Bisection on c.
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        while expected_tokens(hi) < model.target_avg_doc_len {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if expected_tokens(mid) < model.target_avg_doc_len {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c = 0.5 * (lo + hi);
        weights
            .iter()
            .map(|&w| (c * w).min(model.max_rate))
            .collect()
    }

    fn term_rng(model: &CorpusModel, term: TermId) -> StdRng {
        // SplitMix-style seed derivation keeps term streams independent.
        let mut z = model
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(term) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    fn gen_term_into(
        model: &CorpusModel,
        rates: &[f64],
        term: TermId,
        out: &mut Vec<(DocId, u32)>,
    ) {
        out.clear();
        let f = rates[term as usize];
        if f <= 0.0 {
            return;
        }
        let mut rng = Self::term_rng(model, term);
        let df = sampling::binomial(&mut rng, model.num_docs, f);
        let docs = sampling::distinct_sorted(&mut rng, model.num_docs, df);
        out.reserve(docs.len());
        for d in docs {
            let tf = 1 + sampling::geometric_extra(&mut rng, f);
            out.push((d as DocId, tf));
        }
    }

    /// The model this corpus was generated from.
    pub fn model(&self) -> &CorpusModel {
        &self.model
    }

    /// Global statistics (document lengths/frequencies, N, avgdl).
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Global frequency rate F(t) of a term.
    pub fn rate(&self, term: TermId) -> f64 {
        self.rates.get(term as usize).copied().unwrap_or(0.0)
    }

    /// Regenerates the raw (unscored) postings of `term`, sorted by
    /// document id: `(doc, tf)` pairs. Deterministic for a fixed model.
    pub fn term_postings(&self, term: TermId) -> Vec<(DocId, u32)> {
        let mut v = Vec::new();
        Self::gen_term_into(&self.model, &self.rates, term, &mut v);
        v
    }

    /// Streams every term's postings through `f` without retaining
    /// them, reusing one scratch buffer.
    pub fn for_each_term<F: FnMut(TermId, &[(DocId, u32)])>(&self, mut f: F) {
        let mut scratch = Vec::new();
        for t in 0..self.model.vocab_size {
            Self::gen_term_into(&self.model, &self.rates, t, &mut scratch);
            f(t, &scratch);
        }
    }

    /// Materializes the corpus as per-document bags. Memory is
    /// O(total postings) — only call this on small corpora (tests,
    /// examples); large corpora should stream via
    /// [`for_each_term`](Self::for_each_term).
    pub fn doc_bags(&self) -> Vec<DocBag> {
        let mut bags: Vec<DocBag> = (0..self.model.num_docs)
            .map(|id| DocBag {
                id: id as DocId,
                terms: Vec::new(),
            })
            .collect();
        self.for_each_term(|t, postings| {
            for &(d, tf) in postings {
                bags[d as usize].terms.push((t, tf));
            }
        });
        bags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_consistent_with_postings() {
        let c = SynthCorpus::build(CorpusModel::tiny(42));
        let stats = c.stats();
        assert_eq!(stats.num_docs, 2_000);
        // df in stats must equal regenerated posting list length.
        for t in [0u32, 1, 10, 100, 499] {
            assert_eq!(stats.df(t) as usize, c.term_postings(t).len(), "term {t}");
        }
        // Doc lengths must equal sum of tfs over regenerated postings.
        let mut dl = vec![0u64; 2_000];
        c.for_each_term(|_, ps| {
            for &(d, tf) in ps {
                dl[d as usize] += u64::from(tf);
            }
        });
        for (d, &want) in dl.iter().enumerate() {
            assert_eq!(u64::from(stats.dl(d as DocId)), want, "doc {d}");
        }
    }

    #[test]
    fn regeneration_is_deterministic() {
        let c = SynthCorpus::build(CorpusModel::tiny(7));
        assert_eq!(c.term_postings(3), c.term_postings(3));
        let c2 = SynthCorpus::build(CorpusModel::tiny(7));
        assert_eq!(c.term_postings(3), c2.term_postings(3));
        let c3 = SynthCorpus::build(CorpusModel::tiny(8));
        // Different seed ⇒ (almost surely) different postings for a
        // reasonably frequent term.
        assert_ne!(c.term_postings(0), c3.term_postings(0));
    }

    #[test]
    fn postings_sorted_distinct_docs() {
        let c = SynthCorpus::build(CorpusModel::tiny(11));
        c.for_each_term(|t, ps| {
            assert!(
                ps.windows(2).all(|w| w[0].0 < w[1].0),
                "term {t} not sorted/distinct"
            );
            assert!(ps.iter().all(|&(d, tf)| u64::from(d) < 2_000 && tf >= 1));
        });
    }

    #[test]
    fn avg_doc_len_near_target() {
        let c = SynthCorpus::build(CorpusModel::tiny(1));
        let got = c.stats().avg_doc_len;
        let want = c.model().target_avg_doc_len;
        assert!(
            (got - want).abs() / want < 0.15,
            "avg doc len {got} vs target {want}"
        );
    }

    #[test]
    fn rates_follow_zipf_shape() {
        let c = SynthCorpus::build(CorpusModel::tiny(1));
        // Rates decrease with rank (after the cap region).
        let r: Vec<f64> = (0..500u32).map(|t| c.rate(t)).collect();
        assert!(r.windows(2).all(|w| w[0] >= w[1]), "rates must be monotone");
        assert!(r[0] <= c.model().max_rate + 1e-12);
        // Head terms are much more frequent than tail terms.
        assert!(r[0] > 10.0 * r[499]);
    }

    #[test]
    fn x10_preserves_dictionary_and_rates() {
        let base = CorpusModel::tiny(5);
        let big = base.x10();
        assert_eq!(big.num_docs, base.num_docs * 10);
        assert_eq!(big.vocab_size, base.vocab_size);
        let c_small = SynthCorpus::build(base);
        let c_big = SynthCorpus::build(big);
        // Same frequency model ⇒ same rates; df scales ~10×.
        for t in [0u32, 5, 50] {
            assert!((c_small.rate(t) - c_big.rate(t)).abs() < 1e-12);
            let small_df = c_small.stats().df(t).max(1) as f64;
            let big_df = c_big.stats().df(t) as f64;
            let ratio = big_df / small_df;
            assert!(
                (5.0..20.0).contains(&ratio),
                "term {t}: df ratio {ratio} not ≈10"
            );
        }
    }

    #[test]
    fn doc_bags_round_trip() {
        let c = SynthCorpus::build(CorpusModel::tiny(3));
        let bags = c.doc_bags();
        assert_eq!(bags.len(), 2_000);
        // Token counts per doc must match stats.
        for b in bags.iter().take(50) {
            assert_eq!(b.len_tokens(), u64::from(c.stats().dl(b.id)));
        }
    }
}
