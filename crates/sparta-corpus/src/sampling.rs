//! Small discrete samplers used by the corpus generator.
//!
//! `rand` (without `rand_distr`) ships only uniform primitives; the
//! generator needs geometric, Poisson and binomial draws. These are
//! textbook implementations chosen for the regimes the corpus model
//! actually hits: term rates are tiny for all but the head of the
//! Zipf vocabulary, so the binomial sampler dispatches to a Poisson
//! approximation for rare terms and a normal approximation for the
//! heavy head, falling back to exact Bernoulli summation only for
//! small corpora where it is cheap.

use rand::Rng;

/// Number of extra occurrences beyond the first: samples `G` with
/// `P(G = j) = (1 - p) · pʲ` where `p` is the *continuation*
/// probability. This is the paper's per-document term-occurrence model
/// conditioned on the term being present (§5.1: occurrences are "drawn
/// from a geometric distribution with a stopping probability of
/// 1 − F(tᵢ)").
pub fn geometric_extra<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u32 {
    debug_assert!((0.0..1.0).contains(&p));
    if p <= 0.0 {
        return 0;
    }
    // Inversion: G = floor(ln U / ln p).
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let g = (u.ln() / p.ln()).floor();
    // Cap defensively; tf beyond 255 carries no ranking signal and a
    // pathological p ≈ 1 must not produce unbounded tf.
    g.min(255.0) as u32
}

/// Poisson sample via Knuth's product-of-uniforms method (mean < 30)
/// or a rounded normal approximation (mean ≥ 30).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    debug_assert!(mean >= 0.0);
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut prod: f64 = rng.gen();
        while prod > limit {
            k += 1;
            prod *= rng.gen::<f64>();
        }
        k
    } else {
        let z = normal_unit(rng);
        let v = mean + z * mean.sqrt();
        v.round().max(0.0) as u64
    }
}

/// Binomial(n, p) sample.
///
/// Dispatch: exact Bernoulli summation for small `n`, Poisson
/// approximation when `p` is tiny, otherwise normal approximation —
/// each in the regime where its error is negligible for corpus
/// synthesis purposes.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n <= 64 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else if p < 0.01 && mean < 1e6 {
        poisson(rng, mean).min(n)
    } else {
        let var = mean * (1.0 - p);
        let z = normal_unit(rng);
        let v = mean + z * var.sqrt();
        (v.round().max(0.0) as u64).min(n)
    }
}

/// Standard normal via Box–Muller.
pub fn normal_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `k` distinct values from `0..n` (Floyd's algorithm for
/// sparse draws, Bernoulli scan for dense ones). The result is sorted.
pub fn distinct_sorted<R: Rng + ?Sized>(rng: &mut R, n: u64, k: u64) -> Vec<u64> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    if k * 8 <= n {
        // Floyd's algorithm: O(k) expected, great when k << n.
        let mut set = std::collections::HashSet::with_capacity(k as usize);
        for j in (n - k)..n {
            let t = rng.gen_range(0..=j);
            if !set.insert(t) {
                set.insert(j);
            }
        }
        let mut v: Vec<u64> = set.into_iter().collect();
        v.sort_unstable();
        v
    } else {
        // Dense: sequential selection sampling (Knuth algorithm S),
        // exact and already sorted.
        let mut v = Vec::with_capacity(k as usize);
        let mut remaining = k;
        for i in 0..n {
            let left = n - i;
            if rng.gen_range(0..left) < remaining {
                v.push(i);
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometric_mean_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = 0.4;
        let n = 200_000;
        let total: u64 = (0..n)
            .map(|_| u64::from(geometric_extra(&mut rng, p)))
            .sum();
        let mean = total as f64 / n as f64;
        let want = p / (1.0 - p);
        assert!((mean - want).abs() < 0.02, "mean {mean} want {want}");
    }

    #[test]
    fn geometric_zero_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(geometric_extra(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(3);
        for mean in [0.5, 5.0, 100.0] {
            let n = 100_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let got = total as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean.max(1.0) * 0.05,
                "mean {got} want {mean}"
            );
        }
    }

    #[test]
    fn binomial_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        for (n, p) in [(50u64, 0.5), (10_000, 0.001), (10_000, 0.3)] {
            let trials = 20_000;
            let mut total = 0u64;
            for _ in 0..trials {
                let b = binomial(&mut rng, n, p);
                assert!(b <= n);
                total += b;
            }
            let got = total as f64 / trials as f64;
            let want = n as f64 * p;
            assert!(
                (got - want).abs() < want.max(1.0) * 0.05,
                "n={n} p={p}: mean {got} want {want}"
            );
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn distinct_sorted_is_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(6);
        for (n, k) in [(100u64, 5u64), (100, 90), (1000, 1000), (10, 0)] {
            let v = distinct_sorted(&mut rng, n, k);
            assert_eq!(v.len() as u64, k.min(n));
            assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn distinct_sorted_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = vec![0u32; 100];
        for _ in 0..2000 {
            for x in distinct_sorted(&mut rng, 100, 10) {
                hits[x as usize] += 1;
            }
        }
        // Each position expects 200 hits; allow generous slack.
        assert!(hits.iter().all(|&h| (100..320).contains(&h)), "{hits:?}");
    }
}
