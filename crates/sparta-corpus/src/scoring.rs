//! Document scoring functions.
//!
//! The paper scores documents "using a standard tf-idf score function
//! with document length normalization" (§5.1, citing Baeza-Yates &
//! Ribeiro-Neto) and stores term scores "in the posting lists as
//! integers, scaled by 10⁶ and rounded" (§5.2). The overall document
//! score is the plain sum of its per-term scores (§2):
//! `score(D, q) = Σᵢ ts(D, tᵢ)`.

use crate::types::{CorpusStats, DocId, TermId};

/// Integer scale factor applied to floating-point term scores (§5.2).
pub const SCORE_SCALE: f64 = 1_000_000.0;

/// A per-term document scoring function producing the integer term
/// scores `ts(D, tᵢ)` that are stored in posting lists.
pub trait Scorer: Send + Sync {
    /// Integer term score of a document for one term.
    ///
    /// * `tf` — frequency of the term in the document (≥ 1),
    /// * `doc` — document id (used for length lookup),
    /// * `term` — term id (used for document-frequency lookup).
    fn term_score(&self, tf: u32, doc: DocId, term: TermId, stats: &CorpusStats) -> u32;

    /// Human-readable scorer name for logs and experiment records.
    fn name(&self) -> &'static str;
}

/// Classic tf-idf with cosine-style document length normalization:
///
/// ```text
/// ts(D, t) = round( SCALE · (1 + ln tf) · ln(1 + N / df(t)) / sqrt(dl(D) / avgdl) )
/// ```
///
/// The `(1 + ln tf)` dampening, idf and `sqrt`-of-length pivot are the
/// standard components of the Lucene-era tf-idf family the paper's
/// preprocessing pipeline produces.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfIdfScorer;

impl Scorer for TfIdfScorer {
    fn term_score(&self, tf: u32, doc: DocId, term: TermId, stats: &CorpusStats) -> u32 {
        debug_assert!(tf >= 1, "a posting implies at least one occurrence");
        let df = f64::from(stats.df(term)).max(1.0);
        let n = stats.num_docs as f64;
        let dl = f64::from(stats.dl(doc)).max(1.0);
        let avgdl = stats.avg_doc_len.max(1.0);
        let tf_part = 1.0 + f64::from(tf).ln();
        let idf = (1.0 + n / df).ln();
        let norm = (dl / avgdl).sqrt();
        let score = SCORE_SCALE * tf_part * idf / norm;
        // Clamp into u32; real scores are ~1e6–1e8, far below the limit.
        score.round().clamp(1.0, f64::from(u32::MAX)) as u32
    }

    fn name(&self) -> &'static str {
        "tfidf"
    }
}

/// BM25 (Robertson/Sparck-Jones) with the usual k₁/b parameters —
/// provided as an alternative ranking function so downstream users are
/// not locked into tf-idf; the algorithms are score-function agnostic.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Scorer {
    /// Term-frequency saturation (typical 1.2).
    pub k1: f64,
    /// Length normalization strength (typical 0.75).
    pub b: f64,
}

impl Default for Bm25Scorer {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

impl Scorer for Bm25Scorer {
    fn term_score(&self, tf: u32, doc: DocId, term: TermId, stats: &CorpusStats) -> u32 {
        let df = f64::from(stats.df(term)).max(1.0);
        let n = stats.num_docs as f64;
        let dl = f64::from(stats.dl(doc)).max(1.0);
        let avgdl = stats.avg_doc_len.max(1.0);
        let tf = f64::from(tf);
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        let tf_part = tf * (self.k1 + 1.0) / (tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl));
        let score = SCORE_SCALE * idf * tf_part;
        score.round().clamp(1.0, f64::from(u32::MAX)) as u32
    }

    fn name(&self) -> &'static str {
        "bm25"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CorpusStats {
        let mut s = CorpusStats {
            doc_freq: vec![100, 2, 50],
            doc_len: vec![100, 400, 25],
            ..Default::default()
        };
        s.num_docs = 1000; // pretend there are more docs than we track lengths for
        s.avg_doc_len = 100.0;
        s
    }

    #[test]
    fn rarer_terms_score_higher() {
        let s = stats();
        let sc = TfIdfScorer;
        let common = sc.term_score(1, 0, 0, &s); // df=100
        let rare = sc.term_score(1, 0, 1, &s); // df=2
        assert!(rare > common, "idf must favour rare terms");
    }

    #[test]
    fn higher_tf_scores_higher() {
        let s = stats();
        let sc = TfIdfScorer;
        assert!(sc.term_score(10, 0, 0, &s) > sc.term_score(1, 0, 0, &s));
    }

    #[test]
    fn longer_docs_are_normalized_down() {
        let s = stats();
        let sc = TfIdfScorer;
        let short = sc.term_score(1, 2, 0, &s); // dl=25
        let long = sc.term_score(1, 1, 0, &s); // dl=400
        assert!(short > long, "length normalization must penalize long docs");
    }

    #[test]
    fn scores_are_positive_integers() {
        let s = stats();
        for sc in [&TfIdfScorer as &dyn Scorer, &Bm25Scorer::default()] {
            for tf in [1, 3, 100] {
                for (doc, term) in [(0u32, 0u32), (1, 1), (2, 2)] {
                    assert!(sc.term_score(tf, doc, term, &s) >= 1);
                }
            }
        }
    }

    #[test]
    fn bm25_saturates_in_tf() {
        let s = stats();
        let sc = Bm25Scorer::default();
        let d1 = sc.term_score(2, 0, 0, &s) - sc.term_score(1, 0, 0, &s);
        let d2 = sc.term_score(20, 0, 0, &s) - sc.term_score(19, 0, 0, &s);
        assert!(d2 < d1, "marginal gain of tf must shrink");
    }

    #[test]
    fn unknown_term_and_doc_do_not_panic() {
        let s = stats();
        // df() and dl() return 0 for out-of-range ids; the scorer must
        // degrade gracefully (df clamped to 1, dl clamped to 1).
        let v = TfIdfScorer.term_score(1, 9999, 9999, &s);
        assert!(v >= 1);
    }
}
