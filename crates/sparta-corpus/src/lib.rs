//! Corpus modelling, scoring and query generation for Sparta.
//!
//! The paper evaluates on TREC ClueWeb09B (50M web documents), a 10×
//! synthetic scale-up of it ("ClueWebX10"), and queries sampled from
//! the AOL search log (§5.1). None of those assets ships with this
//! repository, so this crate builds the closest synthetic equivalents:
//!
//! * [`synth`] — a generative corpus model with a Zipf-distributed
//!   vocabulary. It implements the paper's own scale-up recipe ("each
//!   document is a bag of words … the number of occurrences of a term
//!   tᵢ with an original global frequency rate of F(tᵢ) is drawn from
//!   a geometric distribution with a stopping probability of 1−F(tᵢ)")
//!   and can generate corpora of any size with the same term-frequency
//!   shape.
//! * [`scoring`] — the tf-idf document scoring function with document
//!   length normalization [Baeza-Yates & Ribeiro-Neto 1999], with term
//!   scores scaled to integers by 10⁶ as in §5.2 ("Using integer
//!   arithmetic instead of floating-point significantly speeds up
//!   document evaluation").
//! * [`querylog`] — an AOL-like query sampler (100 queries per length
//!   1–12) and the voice-query length distribution of Guy [SIGIR'16]
//!   (mean 4.2, σ ≈ 2.96, >5% of queries with ≥10 terms) used for the
//!   Table 4 production mix.
//! * [`tokenizer`] — a minimal text analysis chain (lowercasing,
//!   alphanumeric tokenization, stop-word removal) standing in for the
//!   Lucene preprocessing the paper uses, so real text can be indexed
//!   in examples and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod querylog;
pub mod sampling;
pub mod scoring;
pub mod synth;
pub mod tokenizer;
pub mod types;
pub mod zipf;

pub use querylog::{QueryLog, VoiceLengthDistribution};
pub use scoring::{Bm25Scorer, Scorer, TfIdfScorer, SCORE_SCALE};
pub use synth::{CorpusModel, SynthCorpus};
pub use tokenizer::Tokenizer;
pub use types::{CorpusStats, DocBag, DocId, Query, TermId};
pub use zipf::Zipf;
