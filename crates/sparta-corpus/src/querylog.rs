//! Query workload generation.
//!
//! The paper draws its latency/recall workloads from the AOL search
//! log: "For each number of terms from 1 to 12, we independently
//! sample 100 queries of this length uniformly at random" (§5.1); and
//! its throughput workload (Table 4) from the voice-query length
//! distribution of Guy [SIGIR'16]: "the average query length is 4.2
//! with a standard deviation of 2.96. More than 5% of the queries have
//! 10 or more terms" (§5.3).
//!
//! Without the AOL log we sample query terms from the corpus
//! vocabulary itself, weighted by a sub-linear power of document
//! frequency (`df^0.7`). This mimics real query logs, whose terms are
//! skewed toward common words but less sharply than the document text
//! distribution, and guarantees every query term actually has a
//! posting list.

use crate::sampling::normal_unit;
use crate::types::{CorpusStats, Query, TermId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Discrete query-length distribution fit to the voice-search
/// statistics of Guy [SIGIR'16] (mean 4.2, σ 2.96, P(len ≥ 10) > 5%).
///
/// Implemented as a rounded log-normal: a log-normal with matching
/// mean/σ (μ = 1.2335, σ = 0.6351) rounded to the nearest integer ≥ 1.
/// The moment match is verified by a statistical test in this module.
#[derive(Debug, Clone, Copy)]
pub struct VoiceLengthDistribution {
    mu: f64,
    sigma: f64,
    /// Lengths are clamped to this maximum (the benchmark pools have
    /// queries up to 12 terms, like the paper's AOL sample).
    pub max_len: usize,
}

impl VoiceLengthDistribution {
    /// The distribution from the paper's citation, clamped at `max_len`.
    pub fn new(max_len: usize) -> Self {
        // Derivation: cv² = (2.96/4.2)² = 0.4967,
        // σ² = ln(1+cv²) = 0.4033, μ = ln(4.2) − σ²/2 = 1.2335.
        Self {
            mu: 1.2335,
            sigma: 0.4033f64.sqrt(),
            max_len,
        }
    }

    /// Samples a query length in `1..=max_len`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let z = normal_unit(rng);
        let x = (self.mu + self.sigma * z).exp();
        (x.round() as usize).clamp(1, self.max_len)
    }
}

/// A pool of generated queries, grouped by length, mirroring the
/// paper's AOL sample (100 queries per length 1–12 = 1200 queries).
#[derive(Debug, Clone)]
pub struct QueryLog {
    /// `by_length[m - 1]` holds the queries with exactly `m` terms.
    by_length: Vec<Vec<Query>>,
}

impl QueryLog {
    /// Generates `per_length` queries for every length `1..=max_len`.
    ///
    /// Terms are drawn without replacement within a query, with
    /// probability ∝ `df(t)^0.7` over terms with `df ≥ min_df`.
    pub fn generate(stats: &CorpusStats, per_length: usize, max_len: usize, seed: u64) -> Self {
        let min_df = 2u32;
        let candidates: Vec<TermId> = (0..stats.vocab_size() as TermId)
            .filter(|&t| stats.df(t) >= min_df)
            .collect();
        assert!(
            candidates.len() >= max_len,
            "vocabulary too small for {max_len}-term queries"
        );
        // Cumulative weights for binary-search sampling.
        let mut cum = Vec::with_capacity(candidates.len());
        let mut total = 0.0f64;
        for &t in &candidates {
            total += f64::from(stats.df(t)).powf(0.7);
            cum.push(total);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_length = Vec::with_capacity(max_len);
        for m in 1..=max_len {
            let mut queries = Vec::with_capacity(per_length);
            for _ in 0..per_length {
                let mut terms: Vec<TermId> = Vec::with_capacity(m);
                while terms.len() < m {
                    let x = rng.gen::<f64>() * total;
                    let idx = cum.partition_point(|&c| c < x).min(candidates.len() - 1);
                    let t = candidates[idx];
                    if !terms.contains(&t) {
                        terms.push(t);
                    }
                }
                queries.push(Query::new(terms));
            }
            by_length.push(queries);
        }
        Self { by_length }
    }

    /// Maximum query length available.
    pub fn max_len(&self) -> usize {
        self.by_length.len()
    }

    /// The queries of exactly `m` terms.
    ///
    /// # Panics
    /// Panics if `m` is 0 or exceeds [`max_len`](Self::max_len).
    pub fn of_length(&self, m: usize) -> &[Query] {
        &self.by_length[m - 1]
    }

    /// All queries, flattened.
    pub fn all(&self) -> impl Iterator<Item = &Query> {
        self.by_length.iter().flatten()
    }

    /// Generates the Table 4 production mix: `n` queries whose lengths
    /// follow [`VoiceLengthDistribution`], each chosen uniformly among
    /// this log's queries of that length (§5.3: "we first sample a
    /// query length ℓ … then select a query uniformly at random among
    /// all the length-ℓ queries").
    pub fn voice_mix(&self, n: usize, seed: u64) -> Vec<Query> {
        let dist = VoiceLengthDistribution::new(self.max_len());
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = dist.sample(&mut rng);
                let pool = self.of_length(len);
                pool[rng.gen_range(0..pool.len())].clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{CorpusModel, SynthCorpus};

    fn stats() -> CorpusStats {
        SynthCorpus::build(CorpusModel::tiny(99)).stats().clone()
    }

    #[test]
    fn voice_distribution_matches_cited_moments() {
        let d = VoiceLengthDistribution::new(30);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<usize> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<usize>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let long = samples.iter().filter(|&&x| x >= 10).count() as f64 / n as f64;
        assert!((mean - 4.2).abs() < 0.25, "mean {mean}, want ≈4.2");
        assert!(
            (var.sqrt() - 2.96).abs() < 0.45,
            "sd {}, want ≈2.96",
            var.sqrt()
        );
        assert!(long > 0.05, "P(len ≥ 10) = {long}, want > 5%");
    }

    #[test]
    fn degenerate_max_len_one() {
        let d = VoiceLengthDistribution::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn lengths_clamped_to_max() {
        let d = VoiceLengthDistribution::new(12);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let l = d.sample(&mut rng);
            assert!((1..=12).contains(&l));
        }
    }

    #[test]
    fn generates_requested_shape() {
        let s = stats();
        let log = QueryLog::generate(&s, 10, 12, 3);
        assert_eq!(log.max_len(), 12);
        for m in 1..=12 {
            let qs = log.of_length(m);
            assert_eq!(qs.len(), 10);
            for q in qs {
                assert_eq!(q.len(), m);
                // No duplicate terms within a query.
                let mut t = q.terms.clone();
                t.sort_unstable();
                t.dedup();
                assert_eq!(t.len(), m, "duplicate terms in {q:?}");
                // Every term has at least one posting.
                assert!(q.terms.iter().all(|&t| s.df(t) >= 2));
            }
        }
        assert_eq!(log.all().count(), 120);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = stats();
        let a = QueryLog::generate(&s, 5, 6, 42);
        let b = QueryLog::generate(&s, 5, 6, 42);
        for m in 1..=6 {
            assert_eq!(a.of_length(m), b.of_length(m));
        }
    }

    #[test]
    fn voice_mix_draws_from_pools() {
        let s = stats();
        let log = QueryLog::generate(&s, 10, 12, 3);
        let mix = log.voice_mix(500, 7);
        assert_eq!(mix.len(), 500);
        let mean = mix.iter().map(|q| q.len()).sum::<usize>() as f64 / 500.0;
        assert!((2.5..6.0).contains(&mean), "mix mean length {mean}");
        for q in &mix {
            assert!(log.of_length(q.len()).contains(q));
        }
    }

    #[test]
    fn common_terms_are_preferred() {
        let s = stats();
        let log = QueryLog::generate(&s, 100, 3, 5);
        // Average df of sampled terms should exceed the average df of
        // the candidate pool (weighting by df^0.7 biases upward).
        let pool_mean: f64 = {
            let c: Vec<u32> = (0..s.vocab_size() as u32)
                .map(|t| s.df(t))
                .filter(|&d| d >= 2)
                .collect();
            c.iter().map(|&d| f64::from(d)).sum::<f64>() / c.len() as f64
        };
        let sampled: Vec<u32> = log
            .all()
            .flat_map(|q| q.terms.iter().map(|&t| s.df(t)))
            .collect();
        let sampled_mean =
            sampled.iter().map(|&d| f64::from(d)).sum::<f64>() / sampled.len() as f64;
        assert!(
            sampled_mean > pool_mean,
            "sampled mean df {sampled_mean} ≤ pool mean {pool_mean}"
        );
    }
}
