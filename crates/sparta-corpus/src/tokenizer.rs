//! Minimal text analysis chain.
//!
//! The paper delegates "text tokenization, posting list maintenance,
//! and term statistics retrieval" to Lucene (§5.1). This module is the
//! from-scratch stand-in: lowercasing, alphanumeric tokenization, a
//! small English stop-word list, and a vocabulary that interns tokens
//! to [`TermId`]s. It exists so the examples and tests can index real
//! text; the large-scale experiments use the synthetic generator.

use crate::types::{CorpusStats, DocBag, DocId, Query, TermId};
use std::collections::HashMap;

/// English stop words removed by the analyzer (Lucene's classic list).
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with",
];

/// Tokenizer + vocabulary. Feed documents through
/// [`Tokenizer::add_document`]; it returns the interned [`DocBag`] and
/// accumulates corpus statistics.
pub struct Tokenizer {
    vocab: HashMap<String, TermId>,
    terms: Vec<String>,
    stats: CorpusStats,
    stop: std::collections::HashSet<&'static str>,
}

impl Tokenizer {
    /// Creates an empty analyzer with the default stop-word list.
    pub fn new() -> Self {
        Self {
            vocab: HashMap::new(),
            terms: Vec::new(),
            stats: CorpusStats::default(),
            stop: STOP_WORDS.iter().copied().collect(),
        }
    }

    /// Splits `text` into lowercase alphanumeric tokens, dropping stop
    /// words and single-character tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| t.len() > 1)
            .map(|t| t.to_lowercase())
            .filter(|t| !self.stop.contains(t.as_str()))
            .collect()
    }

    /// Interns a token, creating a new term id if needed.
    pub fn intern(&mut self, token: &str) -> TermId {
        if let Some(&id) = self.vocab.get(token) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.vocab.insert(token.to_string(), id);
        self.terms.push(token.to_string());
        self.stats.doc_freq.push(0);
        id
    }

    /// Looks up a token without interning.
    pub fn term_id(&self, token: &str) -> Option<TermId> {
        self.vocab.get(token).copied()
    }

    /// The string for a term id.
    pub fn term_str(&self, id: TermId) -> Option<&str> {
        self.terms.get(id as usize).map(|s| s.as_str())
    }

    /// Number of distinct terms seen.
    pub fn vocab_size(&self) -> usize {
        self.terms.len()
    }

    /// Analyzes a document: tokenizes, interns, counts term
    /// frequencies, and updates document-length / document-frequency
    /// statistics. Documents must be added in id order starting at 0.
    pub fn add_document(&mut self, text: &str) -> DocBag {
        let id = self.stats.doc_len.len() as DocId;
        let tokens = self.tokenize(text);
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        let mut len = 0u32;
        for tok in &tokens {
            let t = self.intern(tok);
            *tf.entry(t).or_insert(0) += 1;
            len += 1;
        }
        for &t in tf.keys() {
            self.stats.doc_freq[t as usize] += 1;
        }
        self.stats.doc_len.push(len);
        let mut terms: Vec<(TermId, u32)> = tf.into_iter().collect();
        terms.sort_unstable_by_key(|&(t, _)| t);
        DocBag { id, terms }
    }

    /// Finalizes and returns the accumulated statistics.
    pub fn into_stats(mut self) -> CorpusStats {
        self.stats.finalize();
        self.stats
    }

    /// A snapshot of the statistics so far (finalized copy).
    pub fn stats(&self) -> CorpusStats {
        let mut s = self.stats.clone();
        s.finalize();
        s
    }

    /// Parses a free-text query against the current vocabulary,
    /// dropping unknown terms.
    pub fn query(&self, text: &str) -> Query {
        let terms = self
            .tokenize(text)
            .iter()
            .filter_map(|t| self.term_id(t))
            .collect();
        Query::new(terms)
    }
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_strips() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("The Quick-Brown FOX, jumped! 42 a"),
            vec!["quick", "brown", "fox", "jumped", "42"]
        );
    }

    #[test]
    fn stop_words_removed() {
        let t = Tokenizer::new();
        assert!(t.tokenize("the and of").is_empty());
    }

    #[test]
    fn add_document_counts_tf_and_df() {
        let mut t = Tokenizer::new();
        let d0 = t.add_document("rust rust parallel");
        let d1 = t.add_document("parallel search");
        assert_eq!(d0.id, 0);
        assert_eq!(d1.id, 1);
        let rust = t.term_id("rust").unwrap();
        let parallel = t.term_id("parallel").unwrap();
        assert_eq!(
            d0.terms.iter().find(|&&(id, _)| id == rust).unwrap().1,
            2,
            "tf of 'rust' in d0"
        );
        let stats = t.into_stats();
        assert_eq!(stats.df(rust), 1);
        assert_eq!(stats.df(parallel), 2);
        assert_eq!(stats.dl(0), 3);
        assert_eq!(stats.dl(1), 2);
        assert!((stats.avg_doc_len - 2.5).abs() < 1e-9);
    }

    #[test]
    fn query_drops_unknown_terms() {
        let mut t = Tokenizer::new();
        t.add_document("hello world");
        let q = t.query("hello unseen world");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn unicode_tokens_are_preserved() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("Café-naïve Über résumé"),
            vec!["café", "naïve", "über", "résumé"]
        );
    }

    #[test]
    fn empty_and_symbol_only_text() {
        let mut t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("!!! --- ???").is_empty());
        let bag = t.add_document("€€€ !!!");
        assert!(bag.terms.is_empty());
        assert_eq!(t.stats().dl(0), 0);
    }

    #[test]
    fn single_char_tokens_dropped() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("a b c xy"), vec!["xy"]);
    }

    #[test]
    fn intern_is_stable() {
        let mut t = Tokenizer::new();
        let a = t.intern("abc");
        let b = t.intern("abc");
        assert_eq!(a, b);
        assert_eq!(t.term_str(a), Some("abc"));
        assert_eq!(t.vocab_size(), 1);
    }
}
