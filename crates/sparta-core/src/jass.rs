//! JASS (Lin & Trotman, ICTIR'15): sequential score-at-a-time
//! ("anytime") retrieval over impact-ordered posting lists.
//!
//! JASS "performs very little processing per-posting" (§6): it merges
//! the query's posting lists in globally decreasing score order,
//! accumulating each document's partial score in a big accumulator
//! table, and simply stops after a budgeted number of postings ("the
//! algorithm stops after scanning a predefined fraction p of
//! postings", §5.2.1; p = 1 is exact). The top-k is extracted from the
//! accumulators at the end.

use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_exec::Executor;
use sparta_index::Index;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Sequential JASS.
#[derive(Debug, Default, Clone, Copy)]
pub struct Jass;

/// Posting budget for fraction `p` over lists of total length `total`.
pub(crate) fn posting_budget(total: u64, p: f64) -> u64 {
    ((total as f64) * p).ceil() as u64
}

impl Algorithm for Jass {
    fn name(&self) -> &'static str {
        "jass"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        _exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let trace = TraceSink::new(cfg.trace);
        let mut cursors: Vec<_> = query.terms.iter().map(|&t| index.score_cursor(t)).collect();
        let total: u64 = cursors.iter().map(|c| c.len()).sum();
        let budget = posting_budget(total, cfg.jass_p);

        // Heads of the m lists; always consume the highest-scoring
        // head next (global score order).
        let mut heads: Vec<Option<sparta_index::Posting>> =
            cursors.iter_mut().map(|c| c.next()).collect();
        let mut acc: HashMap<DocId, u64> = HashMap::new();
        let mut work = WorkStats::default();

        while work.postings_scanned < budget {
            // Pick the head with the maximum score (m ≤ 12: linear scan).
            let Some((i, p)) = heads
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.map(|p| (i, p)))
                .max_by_key(|&(_, p)| p.score)
            else {
                break; // all lists exhausted
            };
            heads[i] = cursors[i].next();
            work.postings_scanned += 1;
            let total_score = acc
                .entry(p.doc)
                .and_modify(|s| *s += u64::from(p.score))
                .or_insert(u64::from(p.score));
            trace.record(p.doc, *total_score);
        }
        work.docmap_peak = acc.len() as u64;

        // Extract the top-k from the accumulator table.
        let mut heap = BoundedTopK::new(cfg.k.max(1));
        for (&d, &s) in &acc {
            heap.offer(s, d);
        }
        work.heap_updates = heap.len() as u64;
        let hits = finalize_hits(
            heap.into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: trace.into_events(),
            spans: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    fn pseudo_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    .map(|d| {
                        let x = d
                            .wrapping_mul(2654435761)
                            .wrapping_add(t * 41 + seed)
                            .wrapping_mul(2246822519);
                        Posting::new(d, x % 5_000 + 1)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    #[test]
    fn exact_jass_matches_oracle() {
        let ix = pseudo_index(3000, 3, 1);
        let q = Query::new(vec![0, 1, 2]);
        let oracle = Oracle::compute(ix.as_ref(), &q, 10);
        let r = Jass.search(
            &ix,
            &q,
            &SearchConfig::exact(10),
            &DedicatedExecutor::new(1),
        );
        assert_eq!(oracle.recall(&r.docs()), 1.0);
        for h in &r.hits {
            assert_eq!(h.score, oracle.score(h.doc), "p=1 scores are exact");
        }
        // Exact JASS scans everything — the inefficiency the paper
        // notes ("its exact variant is inefficient", §6).
        let total: u64 = (0..3u32).map(|t| ix.doc_freq(t)).sum();
        assert_eq!(r.work.postings_scanned, total);
    }

    #[test]
    fn traversal_is_globally_score_ordered() {
        // With p = tiny, only the highest-impact postings are seen.
        let t0 = vec![Posting::new(0, 100), Posting::new(1, 1)];
        let t1 = vec![Posting::new(2, 50), Posting::new(3, 2)];
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(vec![t0, t1], 5));
        let q = Query::new(vec![0, 1]);
        let cfg = SearchConfig::exact(4).with_jass_p(0.5); // budget = 2 of 4
        let r = Jass.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        // The two highest-impact postings are (0,100) and (2,50).
        assert_eq!(r.docs(), vec![0, 2]);
    }

    #[test]
    fn fraction_p_trades_recall_for_postings() {
        let ix = pseudo_index(20_000, 3, 2);
        let q = Query::new(vec![0, 1, 2]);
        let oracle = Oracle::compute(ix.as_ref(), &q, 100);
        let approx = Jass.search(
            &ix,
            &q,
            &SearchConfig::exact(100).with_jass_p(0.05),
            &DedicatedExecutor::new(1),
        );
        assert_eq!(approx.work.postings_scanned, 3000, "5% of 60000");
        let r = oracle.recall(&approx.docs());
        assert!(r > 0.1, "some recall achieved: {r}");
    }

    #[test]
    fn accumulator_table_is_large() {
        // JASS "maintains a huge in-memory document map" (§6): its
        // accumulator count is the number of distinct docs seen.
        let ix = pseudo_index(5000, 3, 3);
        let q = Query::new(vec![0, 1, 2]);
        let r = Jass.search(
            &ix,
            &q,
            &SearchConfig::exact(10),
            &DedicatedExecutor::new(1),
        );
        assert_eq!(r.work.docmap_peak, 5000);
    }
}
