//! pRA — parallel Random-Access TA (§5.2.2).
//!
//! "Our implementation of pRA maintains its results in a shared heap
//! … the algorithm's multiple worker threads may encounter postings
//! of the same document independently, and consequently score that
//! document and try to insert it into the heap multiple times. The
//! implementation allows only the first to take effect. Since RA's
//! stopping detection is lightweight, we do not dedicate a task to it.
//! Instead, all workers check the UBStop condition, monitor the time
//! elapsed since the last heap update and notify each other if they
//! decide to stop."

use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::shared_heap::SharedHeap;
use crate::sparta::{open_cursor, SharedUb};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::{ShardedCounter, StripedMap};
use sparta_corpus::types::{DocId, Query};
use sparta_exec::{Executor, JobQueue};
use sparta_index::{Index, ScoreCursor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The pRA baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct PRa;

struct State {
    cfg: SearchConfig,
    terms: Vec<u32>,
    ub: SharedUb,
    heap: SharedHeap,
    /// First-wins dedup: a doc is fully scored by whichever worker
    /// claims it first.
    seen: StripedMap<DocId, ()>,
    done: AtomicBool,
    trace: TraceSink,
    postings: ShardedCounter,
    randoms: ShardedCounter,
    index: Arc<dyn Index>,
}

impl State {
    #[inline]
    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// All workers run the stopping check (no dedicated task).
    fn check_stop(&self) {
        let ub_stop = self.ub.ub_stop(self.heap.theta());
        let timed_out = self
            .cfg
            .delta
            .is_some_and(|d| self.heap.since_last_update() >= d);
        if ub_stop || timed_out {
            self.done.store(true, Ordering::Release);
        }
    }
}

fn process_term(
    state: Arc<State>,
    queue: Arc<JobQueue>,
    i: usize,
    mut cursor: Box<dyn ScoreCursor>,
) {
    if state.is_done() {
        return;
    }
    let ra = state
        .index
        .random_access()
        .expect("pRA requires a secondary index");
    let mut exhausted = false;
    for _ in 0..state.cfg.seg_size {
        if state.is_done() {
            return;
        }
        let Some(p) = cursor.next() else {
            exhausted = true;
            break;
        };
        state.postings.incr();
        // RA updates UB per posting (stopping detection is the cheap
        // part of RA; the expensive part is the random access).
        state.ub.set(i, p.score);
        // First-wins claim of the document: `insert` returns the
        // prior value, so exactly one worker sees `None` per doc.
        if state.seen.insert(p.doc, ()).is_none() {
            // Fresh claim: compute the full score via random access.
            let mut full = u64::from(p.score);
            for (j, &t) in state.terms.iter().enumerate() {
                if j != i {
                    full += u64::from(ra.term_score(t, p.doc));
                    state.randoms.incr();
                }
            }
            state.heap.offer(full, p.doc, &state.trace);
        }
        state.check_stop();
    }
    if exhausted {
        state.ub.exhaust(i);
        state.check_stop();
    } else if !state.is_done() {
        let q = Arc::clone(&queue);
        queue.push(Box::new(move || process_term(state, q, i, cursor)));
    }
}

impl Algorithm for PRa {
    fn name(&self) -> &'static str {
        "pra"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        if query.terms.is_empty() {
            return TopKResult {
                hits: Vec::new(),
                elapsed: start.elapsed(),
                work: WorkStats::default(),
                trace: cfg.trace.then(Vec::new),
                spans: None,
            };
        }
        let state = Arc::new(State {
            cfg: *cfg,
            terms: query.terms.clone(),
            ub: SharedUb::new(query.terms.len()),
            heap: SharedHeap::new(cfg.k),
            seen: StripedMap::new(),
            done: AtomicBool::new(false),
            trace: TraceSink::new(cfg.trace),
            postings: ShardedCounter::new(),
            randoms: ShardedCounter::new(),
            index: Arc::clone(index),
        });
        let queue = JobQueue::new();
        for (i, &t) in query.terms.iter().enumerate() {
            let cursor = open_cursor(index, t);
            let st = Arc::clone(&state);
            let q = Arc::clone(&queue);
            queue.push(Box::new(move || process_term(st, q, i, cursor)));
        }
        exec.run(Arc::clone(&queue));

        let hits = finalize_hits(
            state
                .heap
                .sorted()
                .into_iter()
                .map(|(score, doc)| SearchHit { doc, score })
                .collect(),
            cfg.k,
        );
        let work = WorkStats {
            postings_scanned: state.postings.get(),
            random_accesses: state.randoms.get(),
            heap_updates: state.heap.update_count(),
            docmap_peak: state.seen.len() as u64,
            cleaner_passes: 0,
            jobs_panicked: queue.panicked() as u64,
            jobs_recycled: queue.recycled() as u64,
            docmap_final: state.seen.len() as u64,
            timeout_stops: 0,
            ..WorkStats::default()
        };
        let state = Arc::into_inner(state).expect("all jobs drained");
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: state.trace.into_events(),
            spans: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    fn pseudo_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    .map(|d| {
                        let x = d
                            .wrapping_mul(2654435761)
                            .wrapping_add(t * 31 + seed)
                            .wrapping_mul(2246822519);
                        Posting::new(d, x % 7_000 + 1)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    #[test]
    fn exact_matches_oracle_with_full_scores() {
        for threads in [1, 4] {
            let ix = pseudo_index(3000, 3, 4);
            let q = Query::new(vec![0, 1, 2]);
            let cfg = SearchConfig::exact(10).with_seg_size(128);
            let oracle = Oracle::compute(ix.as_ref(), &q, 10);
            let r = PRa.search(&ix, &q, &cfg, &DedicatedExecutor::new(threads));
            assert_eq!(oracle.recall(&r.docs()), 1.0, "threads={threads}");
            for h in &r.hits {
                assert_eq!(h.score, oracle.score(h.doc), "pRA reports full scores");
            }
        }
    }

    #[test]
    fn performs_random_accesses() {
        let ix = pseudo_index(2000, 3, 8);
        let q = Query::new(vec![0, 1, 2]);
        let r = PRa.search(
            &ix,
            &q,
            &SearchConfig::exact(10).with_seg_size(64),
            &DedicatedExecutor::new(3),
        );
        assert!(r.work.random_accesses > 0);
        // Each distinct doc claimed costs exactly m-1 lookups.
        assert_eq!(r.work.random_accesses % 2, 0);
    }

    #[test]
    fn dedup_scores_each_doc_once() {
        let ix = pseudo_index(500, 4, 9);
        let q = Query::new(vec![0, 1, 2, 3]);
        // Exhaustive (k = all docs): every doc appears in all 4 lists,
        // so claims = 500 and lookups = 500 × 3.
        let cfg = SearchConfig::exact(500).with_seg_size(32);
        let r = PRa.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        assert_eq!(r.work.random_accesses, 500 * 3);
        assert_eq!(r.hits.len(), 500);
    }
}
