//! Search results and work accounting.

use crate::trace::TraceEvent;
use sparta_corpus::types::DocId;
use sparta_obs::SpanEvent;
use std::time::Duration;

/// One retrieved document.
///
/// For full-scoring algorithms (RA, BMW, JASS at completion) `score`
/// is the exact document score; for NRA-family algorithms it is the
/// *lower bound* the heap was ordered by (§3.2) — correct as a rank
/// key at termination, but possibly below the true score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchHit {
    /// Document id.
    pub doc: DocId,
    /// Score (or lower bound) the algorithm ranked the document by.
    pub score: u64,
}

/// Work performed during one search — the scheduling-independent
/// metrics used alongside wall-clock latency (this reproduction runs
/// on fewer cores than the paper's 12, so work-based metrics carry the
/// algorithmic comparison; see DESIGN.md §3.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Posting-list entries traversed (sequential accesses).
    pub postings_scanned: u64,
    /// Secondary-index lookups (RA family only).
    pub random_accesses: u64,
    /// Successful heap insertions/updates.
    pub heap_updates: u64,
    /// Peak size of the candidate document map (docMap / accumulator
    /// table); the paper's memory-footprint argument (§6) shows up here.
    pub docmap_peak: u64,
    /// Cleaner passes executed (Sparta only).
    pub cleaner_passes: u64,
    /// Jobs whose closure panicked; the panic was caught by the job
    /// queue and the query still completed (see `JobQueue::run_job`).
    /// Nonzero only under fault injection or when something is wrong.
    pub jobs_panicked: u64,
    /// Continuation steps that recycled their job box instead of
    /// allocating a fresh one (see `sparta_exec::CyclicJob`) — each is
    /// one avoided heap allocation on the traversal hot path.
    pub jobs_recycled: u64,
    /// Size of the candidate map when the search stopped. For an exact
    /// Sparta run this equals `hits.len()` — the Eq. 2 termination
    /// condition `|docMap| == |docHeap|` — which tests assert across
    /// schedules.
    pub docmap_final: u64,
    /// Number of times the search stopped due to the Δ time budget
    /// rather than its exactness condition (0 or 1; approximate
    /// variants only).
    pub timeout_stops: u64,
    /// Block-max skip decisions taken by doc-order traversal (BMW
    /// family): each is one aligned block group jumped over without
    /// scoring. On the compressed backend a skipped block is also a
    /// block never decoded.
    pub blocks_skipped: u64,
    /// Compressed posting blocks decoded while serving this query
    /// (compressed backend only; folded in from the index's
    /// [`sparta_index::IoStats`] by the measurement layer).
    pub blocks_decoded: u64,
    /// Compressed bytes moved through the block decoder — the
    /// bytes-moved companion to `postings_scanned` (compressed backend
    /// only).
    pub compressed_bytes: u64,
}

impl WorkStats {
    /// Folds another query's work into this one: counters add
    /// (saturating, so fault-injection storms cannot overflow) and
    /// `docmap_peak` takes the maximum. Both operations are
    /// associative and commutative, so aggregating a batch of queries
    /// gives the same totals in any grouping or order.
    pub fn merge(&mut self, other: &WorkStats) {
        self.postings_scanned = self.postings_scanned.saturating_add(other.postings_scanned);
        self.random_accesses = self.random_accesses.saturating_add(other.random_accesses);
        self.heap_updates = self.heap_updates.saturating_add(other.heap_updates);
        self.docmap_peak = self.docmap_peak.max(other.docmap_peak);
        self.cleaner_passes = self.cleaner_passes.saturating_add(other.cleaner_passes);
        self.jobs_panicked = self.jobs_panicked.saturating_add(other.jobs_panicked);
        self.jobs_recycled = self.jobs_recycled.saturating_add(other.jobs_recycled);
        self.docmap_final = self.docmap_final.saturating_add(other.docmap_final);
        self.timeout_stops = self.timeout_stops.saturating_add(other.timeout_stops);
        self.blocks_skipped = self.blocks_skipped.saturating_add(other.blocks_skipped);
        self.blocks_decoded = self.blocks_decoded.saturating_add(other.blocks_decoded);
        self.compressed_bytes = self.compressed_bytes.saturating_add(other.compressed_bytes);
    }
}

impl std::fmt::Display for WorkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "postings={} random={} heap={} docmap_peak={} cleaner={} \
             panicked={} recycled={} docmap_final={} timeouts={} \
             blk_skip={} blk_dec={} cbytes={}",
            self.postings_scanned,
            self.random_accesses,
            self.heap_updates,
            self.docmap_peak,
            self.cleaner_passes,
            self.jobs_panicked,
            self.jobs_recycled,
            self.docmap_final,
            self.timeout_stops,
            self.blocks_skipped,
            self.blocks_decoded,
            self.compressed_bytes,
        )
    }
}

/// The outcome of one top-k search.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Hits in rank order (descending score, ties by descending doc).
    pub hits: Vec<SearchHit>,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
    /// Work counters.
    pub work: WorkStats,
    /// Heap trace, when requested via
    /// [`SearchConfig::trace`](crate::SearchConfig).
    pub trace: Option<Vec<TraceEvent>>,
    /// Phase spans (plan / term processing / cleaner / heap merge …),
    /// when requested via [`SearchConfig::spans`](crate::SearchConfig).
    pub spans: Option<Vec<SpanEvent>>,
}

impl TopKResult {
    /// The returned document ids in rank order.
    pub fn docs(&self) -> Vec<DocId> {
        self.hits.iter().map(|h| h.doc).collect()
    }

    /// The returned scores in rank order.
    pub fn scores(&self) -> Vec<u64> {
        self.hits.iter().map(|h| h.score).collect()
    }
}

/// Sorts hits into canonical rank order (descending score, ties by
/// descending doc id) and truncates to `k`.
pub fn finalize_hits(mut hits: Vec<SearchHit>, k: usize) -> Vec<SearchHit> {
    hits.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(b.doc.cmp(&a.doc)));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_orders_and_truncates() {
        let hits = vec![
            SearchHit { doc: 1, score: 10 },
            SearchHit { doc: 2, score: 30 },
            SearchHit { doc: 3, score: 30 },
            SearchHit { doc: 4, score: 5 },
        ];
        let out = finalize_hits(hits, 3);
        assert_eq!(
            out.iter().map(|h| h.doc).collect::<Vec<_>>(),
            vec![3, 2, 1],
            "score desc, tie by doc desc"
        );
    }

    #[test]
    fn accessors() {
        let r = TopKResult {
            hits: vec![SearchHit { doc: 7, score: 9 }],
            elapsed: Duration::from_millis(1),
            work: WorkStats::default(),
            trace: None,
            spans: None,
        };
        assert_eq!(r.docs(), vec![7]);
        assert_eq!(r.scores(), vec![9]);
    }

    fn stats(seed: u64) -> WorkStats {
        WorkStats {
            postings_scanned: seed,
            random_accesses: seed.wrapping_mul(3),
            heap_updates: seed.wrapping_mul(5) % 97,
            docmap_peak: seed % 13,
            cleaner_passes: seed % 7,
            jobs_panicked: seed % 3,
            jobs_recycled: seed % 19,
            docmap_final: seed % 11,
            timeout_stops: seed % 2,
            blocks_skipped: seed % 23,
            blocks_decoded: seed % 29,
            compressed_bytes: seed.wrapping_mul(7) % 1013,
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (stats(17), stats(404), stats(9001));
        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        // b ⊕ a == a ⊕ b
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
    }

    #[test]
    fn merge_saturates_and_maxes_peak() {
        let mut a = WorkStats {
            postings_scanned: u64::MAX - 1,
            docmap_peak: 10,
            ..Default::default()
        };
        let b = WorkStats {
            postings_scanned: 5,
            docmap_peak: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.postings_scanned, u64::MAX);
        assert_eq!(a.docmap_peak, 10, "peak is a max, not a sum");
    }

    #[test]
    fn workstats_display_names_every_counter() {
        let s = stats(42);
        let text = s.to_string();
        for key in [
            "postings=",
            "random=",
            "heap=",
            "docmap_peak=",
            "cleaner=",
            "panicked=",
            "recycled=",
            "docmap_final=",
            "timeouts=",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
