//! Search results and work accounting.

use crate::trace::TraceEvent;
use sparta_corpus::types::DocId;
use std::time::Duration;

/// One retrieved document.
///
/// For full-scoring algorithms (RA, BMW, JASS at completion) `score`
/// is the exact document score; for NRA-family algorithms it is the
/// *lower bound* the heap was ordered by (§3.2) — correct as a rank
/// key at termination, but possibly below the true score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchHit {
    /// Document id.
    pub doc: DocId,
    /// Score (or lower bound) the algorithm ranked the document by.
    pub score: u64,
}

/// Work performed during one search — the scheduling-independent
/// metrics used alongside wall-clock latency (this reproduction runs
/// on fewer cores than the paper's 12, so work-based metrics carry the
/// algorithmic comparison; see DESIGN.md §3.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Posting-list entries traversed (sequential accesses).
    pub postings_scanned: u64,
    /// Secondary-index lookups (RA family only).
    pub random_accesses: u64,
    /// Successful heap insertions/updates.
    pub heap_updates: u64,
    /// Peak size of the candidate document map (docMap / accumulator
    /// table); the paper's memory-footprint argument (§6) shows up here.
    pub docmap_peak: u64,
    /// Cleaner passes executed (Sparta only).
    pub cleaner_passes: u64,
    /// Jobs whose closure panicked; the panic was caught by the job
    /// queue and the query still completed (see `JobQueue::run_job`).
    /// Nonzero only under fault injection or when something is wrong.
    pub jobs_panicked: u64,
    /// Size of the candidate map when the search stopped. For an exact
    /// Sparta run this equals `hits.len()` — the Eq. 2 termination
    /// condition `|docMap| == |docHeap|` — which tests assert across
    /// schedules.
    pub docmap_final: u64,
    /// Number of times the search stopped due to the Δ time budget
    /// rather than its exactness condition (0 or 1; approximate
    /// variants only).
    pub timeout_stops: u64,
}

/// The outcome of one top-k search.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Hits in rank order (descending score, ties by descending doc).
    pub hits: Vec<SearchHit>,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
    /// Work counters.
    pub work: WorkStats,
    /// Heap trace, when requested via
    /// [`SearchConfig::trace`](crate::SearchConfig).
    pub trace: Option<Vec<TraceEvent>>,
}

impl TopKResult {
    /// The returned document ids in rank order.
    pub fn docs(&self) -> Vec<DocId> {
        self.hits.iter().map(|h| h.doc).collect()
    }

    /// The returned scores in rank order.
    pub fn scores(&self) -> Vec<u64> {
        self.hits.iter().map(|h| h.score).collect()
    }
}

/// Sorts hits into canonical rank order (descending score, ties by
/// descending doc id) and truncates to `k`.
pub fn finalize_hits(mut hits: Vec<SearchHit>, k: usize) -> Vec<SearchHit> {
    hits.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(b.doc.cmp(&a.doc)));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_orders_and_truncates() {
        let hits = vec![
            SearchHit { doc: 1, score: 10 },
            SearchHit { doc: 2, score: 30 },
            SearchHit { doc: 3, score: 30 },
            SearchHit { doc: 4, score: 5 },
        ];
        let out = finalize_hits(hits, 3);
        assert_eq!(
            out.iter().map(|h| h.doc).collect::<Vec<_>>(),
            vec![3, 2, 1],
            "score desc, tie by doc desc"
        );
    }

    #[test]
    fn accessors() {
        let r = TopKResult {
            hits: vec![SearchHit { doc: 7, score: 9 }],
            elapsed: Duration::from_millis(1),
            work: WorkStats::default(),
            trace: None,
        };
        assert_eq!(r.docs(), vec![7]);
        assert_eq!(r.scores(), vec![9]);
    }
}
