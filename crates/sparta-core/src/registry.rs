//! Name-indexed registry of all implemented algorithms, used by the
//! benchmark harness and the `repro` binary.

use crate::docorder::{MaxScore, PBmw, SeqBmw, Wand};
use crate::jass::Jass;
use crate::pjass::PJass;
use crate::pnra::PNra;
use crate::pra::PRa;
use crate::snra::SNra;
use crate::sparta::Sparta;
use crate::ta::{SeqNra, SeqRa};
use crate::Algorithm;
use std::sync::Arc;

/// All algorithms, parallel and sequential.
pub fn all_algorithms() -> Vec<Arc<dyn Algorithm>> {
    vec![
        Arc::new(Sparta),
        Arc::new(PRa),
        Arc::new(PNra),
        Arc::new(SNra),
        Arc::new(PBmw),
        Arc::new(PJass),
        Arc::new(SeqNra),
        Arc::new(SeqRa),
        Arc::new(SeqBmw),
        Arc::new(Wand),
        Arc::new(MaxScore),
        Arc::new(Jass),
    ]
}

/// The six algorithms of the paper's case study (§5.2), in the order
/// of Table 2.
pub fn case_study_algorithms() -> Vec<Arc<dyn Algorithm>> {
    vec![
        Arc::new(Sparta),
        Arc::new(PNra),
        Arc::new(SNra),
        Arc::new(PRa),
        Arc::new(PBmw),
        Arc::new(PJass),
    ]
}

/// Looks an algorithm up by its [`Algorithm::name`].
pub fn algorithm_by_name(name: &str) -> Option<Arc<dyn Algorithm>> {
    all_algorithms().into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let algos = all_algorithms();
        let mut names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate algorithm names");
    }

    #[test]
    fn lookup_by_name() {
        assert!(algorithm_by_name("sparta").is_some());
        assert!(algorithm_by_name("pbmw").is_some());
        assert!(algorithm_by_name("nope").is_none());
    }

    #[test]
    fn case_study_has_six() {
        assert_eq!(case_study_algorithms().len(), 6);
    }
}
