//! pNRA — the naïve shared-state parallelization of NRA (§5.2.2).
//!
//! "pNRA is a naïve shared-state parallelization of NRA that does not
//! employ Sparta's optimizations. Namely, it uses a shared document
//! map, which it does not clean, and it updates the term upper bounds
//! upon every document evaluation. As in Sparta, a dedicated task
//! checks the stopping condition."
//!
//! This is the paper's "what not to do" baseline: the shared map is
//! rebuilt by nobody, every posting invalidates the `UB` cache line,
//! and the stopping-condition task must scan the entire (huge) map to
//! evaluate Equation 2.

use crate::config::SearchConfig;
use crate::result::{TopKResult, WorkStats};
use crate::sparta::{open_cursor, DocType, SharedUb, SpartaHeap};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::{ShardedCounter, StripedMap};
use sparta_corpus::types::{DocId, Query};
use sparta_exec::{CyclicJob, Executor, Job, JobQueue};
use sparta_index::{Index, ScoreCursor};
use sparta_obs::{Phase, QueryTrace};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The pNRA baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct PNra;

struct State {
    m: usize,
    cfg: SearchConfig,
    ub: SharedUb,
    heap: SpartaHeap,
    doc_map: StripedMap<DocId, Arc<DocType>>,
    done: AtomicBool,
    trace: TraceSink,
    spans: QueryTrace,
    postings: ShardedCounter,
    docmap_peak: AtomicU64,
}

impl State {
    #[inline]
    fn ub_stop(&self) -> bool {
        self.ub.ub_stop(self.heap.theta())
    }

    #[inline]
    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// One term's traversal as a recycled [`CyclicJob`] — each step is a
/// segment; the same box re-enqueues until the list exhausts.
struct SegmentJob {
    state: Arc<State>,
    i: usize,
    cursor: Box<dyn ScoreCursor>,
}

impl CyclicJob for SegmentJob {
    fn run_step(&mut self) -> bool {
        let state = &self.state;
        let i = self.i;
        if state.is_done() {
            return false;
        }
        let _seg_span = state.spans.span(Phase::TermProcess);
        let mut exhausted = false;
        for _ in 0..state.cfg.seg_size {
            if state.is_done() {
                return false;
            }
            let Some(p) = self.cursor.next() else {
                exhausted = true;
                break;
            };
            state.postings.incr();
            // Naïve: UB updated on *every* posting — the cache-miss
            // storm Sparta's segment-lazy updates avoid (§4.3).
            state.ub.set(i, p.score);
            let d = state
                .doc_map
                .get_or_try_insert_with(p.doc, !state.ub_stop(), || {
                    Arc::new(DocType::new(p.doc, state.m))
                });
            if let Some(d) = d {
                d.set_score(i, p.score);
                if d.current_sum() > state.heap.theta() {
                    state.heap.update(&d, &state.trace);
                }
            }
        }
        if exhausted {
            state.ub.exhaust(i);
            false
        } else {
            !state.is_done()
        }
    }
}

/// The dedicated stopping-condition task: evaluates Eq. 1 and Eq. 2
/// over the whole (never-pruned) map, plus the Δ timeout. A recycled
/// [`CyclicJob`]: one step per check.
struct StopChecker {
    state: Arc<State>,
    queue: Arc<JobQueue>,
}

impl CyclicJob for StopChecker {
    fn run_step(&mut self) -> bool {
        let state = &self.state;
        if state.is_done() {
            return false;
        }
        let _check_span = state.spans.span(Phase::StopCheck);
        state
            .docmap_peak
            .fetch_max(state.doc_map.len() as u64, Ordering::Relaxed);
        let timed_out = state
            .cfg
            .delta
            .is_some_and(|d| state.heap.since_last_update() >= d);
        // Starvation guard: if this checker is the only outstanding
        // job, all traversal jobs are gone (exhausted or lost to a
        // fault); no further updates can arrive, so spinning is futile.
        // See the same guard in Sparta's cleaner.
        let mut stop = timed_out || self.queue.outstanding() <= 1;
        if !stop && state.ub_stop() {
            // Equation 2: every traversed non-heap candidate has
            // UB(D) ≤ Θ. Without cleaning, this is a full scan.
            let theta = state.heap.theta();
            let members = state.heap.members_snapshot();
            let mut ok = true;
            state.doc_map.for_each(|id, d| {
                if ok && !members.contains(id) && d.ub(&state.ub) > theta {
                    ok = false;
                }
            });
            stop = ok;
        }
        if stop {
            state.done.store(true, Ordering::Release);
            false
        } else {
            true
        }
    }
}

impl Algorithm for PNra {
    fn name(&self) -> &'static str {
        "pnra"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let m = query.terms.len();
        if m == 0 {
            return TopKResult {
                hits: Vec::new(),
                elapsed: start.elapsed(),
                work: WorkStats::default(),
                trace: cfg.trace.then(Vec::new),
                spans: cfg.spans.then(Vec::new),
            };
        }
        let state = Arc::new(State {
            m,
            cfg: *cfg,
            ub: SharedUb::new(m),
            heap: SpartaHeap::new(cfg.k),
            doc_map: StripedMap::new(),
            done: AtomicBool::new(false),
            trace: TraceSink::with_clock(cfg.trace, cfg.clock),
            spans: QueryTrace::new(cfg.spans, cfg.clock),
            postings: ShardedCounter::new(),
            docmap_peak: AtomicU64::new(0),
        });
        let queue = JobQueue::new();
        {
            let _plan = state.spans.span(Phase::Plan);
            for (i, &t) in query.terms.iter().enumerate() {
                let cursor = open_cursor(index, t);
                queue.push(Job::cyclic(SegmentJob {
                    state: Arc::clone(&state),
                    i,
                    cursor,
                }));
            }
            queue.push(Job::cyclic(StopChecker {
                state: Arc::clone(&state),
                queue: Arc::clone(&queue),
            }));
        }
        exec.run(Arc::clone(&queue));

        let merge = state.spans.span(Phase::HeapMerge);
        let mut hits = state.heap.sorted_hits();
        hits.truncate(cfg.k);
        drop(merge);
        let work = WorkStats {
            postings_scanned: state.postings.get(),
            random_accesses: 0,
            heap_updates: state.heap.update_count(),
            docmap_peak: state
                .docmap_peak
                .load(Ordering::Relaxed)
                .max(state.doc_map.len() as u64),
            cleaner_passes: 0,
            jobs_panicked: queue.panicked() as u64,
            jobs_recycled: queue.recycled() as u64,
            docmap_final: state.doc_map.len() as u64,
            timeout_stops: 0,
            ..WorkStats::default()
        };
        let state = Arc::into_inner(state).expect("all jobs drained");
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: state.trace.into_events(),
            spans: state.spans.into_spans(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    fn pseudo_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    .map(|d| {
                        let x = d
                            .wrapping_mul(2654435761)
                            .wrapping_add(t * 131 + seed)
                            .wrapping_mul(2246822519);
                        Posting::new(d, x % 9_000 + 1)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    #[test]
    fn exact_matches_oracle() {
        for threads in [1, 4] {
            let ix = pseudo_index(3000, 3, 5);
            let q = Query::new(vec![0, 1, 2]);
            let cfg = SearchConfig::exact(10).with_seg_size(128);
            let oracle = Oracle::compute(ix.as_ref(), &q, 10);
            let r = PNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(threads));
            assert_eq!(oracle.recall(&r.docs()), 1.0, "threads={threads}");
        }
    }

    #[test]
    fn docmap_never_shrinks() {
        // pNRA's map only grows: its peak equals its final size and
        // far exceeds k (Sparta's cleaner would have pruned it to k;
        // exact peak comparisons across the two algorithms depend on
        // scheduling, so only the growth property is asserted).
        let ix = pseudo_index(5000, 4, 6);
        let q = Query::new(vec![0, 1, 2, 3]);
        let cfg = SearchConfig::exact(10).with_seg_size(128).with_phi(512);
        let naive = PNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        assert!(
            naive.work.docmap_peak > 50 * 10,
            "pNRA peak {} suspiciously small",
            naive.work.docmap_peak
        );
    }

    #[test]
    fn fewer_matches_than_k() {
        let t0 = vec![Posting::new(2, 8), Posting::new(9, 3)];
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(vec![t0], 16));
        let q = Query::new(vec![0]);
        let r = PNra.search(&ix, &q, &SearchConfig::exact(4), &DedicatedExecutor::new(2));
        assert_eq!(r.docs(), vec![2, 9]);
    }
}
