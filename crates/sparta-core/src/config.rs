//! Search configuration and the paper's variant parameterization.

use sparta_obs::ClockMode;
use std::time::Duration;

/// Parameters of one top-k search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Result-set size k. The paper uses k = 1000 (§5.1).
    pub k: usize,
    /// Δ-stopping for the TA family: stop once the heap has not
    /// changed for this long (§4: "stopping after the heap does not
    /// change for some Δ time"). `None` = exact (Δ = ∞).
    pub delta: Option<Duration>,
    /// Posting-list segment size for Sparta/pRA/pNRA/pJASS job
    /// granularity (§4.2). "In case m threads are available, a large
    /// segment size can be used."
    pub seg_size: usize,
    /// Sparta's Φ: `docMap` size below which workers clone term-local
    /// maps ("in our implementation, Φ = 10K entries", §4.3).
    pub phi: usize,
    /// pBMW's pruning relaxation factor f ≥ 1 (f = 1 ⇒ exact; the
    /// paper uses f = 5 for high recall, f = 10 for low, §5.3).
    pub bmw_f: f64,
    /// pJASS's traversed-postings fraction p ∈ (0, 1] (p = 1 ⇒ exact;
    /// the paper uses p = 0.02 high / p = 0.005 low, §5.3).
    pub jass_p: f64,
    /// Record a heap trace for recall-dynamics analysis (Fig. 3f/3g).
    pub trace: bool,
    /// Probabilistic-pruning factor γ ∈ (0, 1] for Sparta's cleaner —
    /// the extension the paper leaves as future work (§6, after
    /// Theobald et al.'s probabilistic TA): unknown term contributions
    /// are *estimated* as `γ·UB[i]` instead of bounded by `UB[i]`
    /// when deciding whether a candidate can still reach the top-k.
    /// `γ = 1` is the paper's safe rule; smaller γ prunes candidates
    /// that are unlikely (rather than unable) to qualify, trading
    /// recall for convergence speed. `None` ⇒ safe.
    pub prune_gamma: Option<f64>,
    /// Record phase spans (plan, term processing, cleaner passes, heap
    /// merge) into [`TopKResult::spans`](crate::TopKResult). Disabled
    /// spans cost one branch per instrumentation site.
    pub spans: bool,
    /// Clock the trace/span sinks stamp events with. The wall clock is
    /// the default; the logical clock makes traces bit-identical under
    /// the deterministic executor.
    pub clock: ClockMode,
    /// Per-query tag stamped onto the job queue a search creates
    /// (0 = untagged). The query server derives one config per request
    /// from a shared template and tags it with the request id, so a
    /// queue multiplexed through the shared pool stays attributable.
    pub query_tag: u64,
}

impl SearchConfig {
    /// Exact configuration with the paper's defaults.
    pub fn exact(k: usize) -> Self {
        Self {
            k,
            delta: None,
            seg_size: 1024,
            phi: 10_000,
            bmw_f: 1.0,
            jass_p: 1.0,
            trace: false,
            prune_gamma: None,
            spans: false,
            clock: ClockMode::Wall,
            query_tag: 0,
        }
    }

    /// Applies a named variant's parameters (§5.3).
    pub fn with_variant(mut self, v: Variant) -> Self {
        match v {
            Variant::Exact => {
                self.delta = None;
                self.bmw_f = 1.0;
                self.jass_p = 1.0;
            }
            Variant::High => {
                self.delta = Some(Duration::from_millis(10));
                self.bmw_f = 5.0;
                self.jass_p = 0.02;
            }
            Variant::Low => {
                self.delta = Some(Duration::from_millis(2));
                self.bmw_f = 10.0;
                self.jass_p = 0.005;
            }
        }
        self
    }

    /// Builder: sets Δ.
    pub fn with_delta(mut self, delta: Option<Duration>) -> Self {
        self.delta = delta;
        self
    }

    /// Builder: sets the segment size.
    pub fn with_seg_size(mut self, seg_size: usize) -> Self {
        assert!(seg_size >= 1);
        self.seg_size = seg_size;
        self
    }

    /// Builder: sets Φ.
    pub fn with_phi(mut self, phi: usize) -> Self {
        self.phi = phi;
        self
    }

    /// Builder: sets pBMW's f.
    pub fn with_bmw_f(mut self, f: f64) -> Self {
        assert!(f >= 1.0);
        self.bmw_f = f;
        self
    }

    /// Builder: sets pJASS's p.
    pub fn with_jass_p(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0);
        self.jass_p = p;
        self
    }

    /// Builder: enables heap tracing.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder: enables phase-span recording.
    pub fn with_spans(mut self, spans: bool) -> Self {
        self.spans = spans;
        self
    }

    /// Builder: sets the trace/span clock.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Builder: sets k. A long-lived service holds one template config
    /// and derives each request's config from it (`template.with_k(…)`),
    /// so per-request reuse never mutates shared state.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.k = k;
        self
    }

    /// Builder: sets the per-query tag stamped onto the search's job
    /// queue (see [`SearchConfig::query_tag`]).
    pub fn with_query_tag(mut self, tag: u64) -> Self {
        self.query_tag = tag;
        self
    }

    /// Builder: sets Sparta's probabilistic-pruning factor γ.
    ///
    /// # Panics
    /// Panics unless `0 < γ <= 1`.
    pub fn with_prune_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "γ must be in (0, 1]");
        self.prune_gamma = Some(gamma);
        self
    }

    /// Whether this is an exact (safe) configuration for the TA family.
    pub fn is_exact(&self) -> bool {
        self.delta.is_none()
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::exact(1000)
    }
}

/// The paper's three evaluation variants per algorithm (§5.3):
/// `A-exact`, `A-high` (recall ≥ 96%), `A-low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Safe/exact evaluation.
    Exact,
    /// High-recall approximation (Δ = 10ms / f = 5 / p = 0.02).
    High,
    /// Low-recall approximation (f = 10 / p = 0.005).
    Low,
}

impl Variant {
    /// Suffix used in experiment labels ("sparta-high" etc.).
    pub fn suffix(&self) -> &'static str {
        match self {
            Variant::Exact => "exact",
            Variant::High => "high",
            Variant::Low => "low",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_defaults_match_paper() {
        let c = SearchConfig::exact(1000);
        assert_eq!(c.k, 1000);
        assert!(c.is_exact());
        assert_eq!(c.phi, 10_000);
        assert_eq!(c.bmw_f, 1.0);
        assert_eq!(c.jass_p, 1.0);
    }

    #[test]
    fn variants_set_paper_parameters() {
        let h = SearchConfig::exact(10).with_variant(Variant::High);
        assert_eq!(h.delta, Some(Duration::from_millis(10)));
        assert_eq!(h.bmw_f, 5.0);
        assert_eq!(h.jass_p, 0.02);
        let l = SearchConfig::exact(10).with_variant(Variant::Low);
        assert_eq!(l.bmw_f, 10.0);
        assert_eq!(l.jass_p, 0.005);
        let e = h.with_variant(Variant::Exact);
        assert!(e.is_exact());
    }

    #[test]
    fn template_reuse_derives_per_query_configs() {
        let template = SearchConfig::exact(1000).with_seg_size(512).with_phi(4096);
        let a = template.with_k(10).with_query_tag(7);
        let b = template.with_k(100).with_query_tag(8);
        assert_eq!(a.k, 10);
        assert_eq!(a.query_tag, 7);
        assert_eq!(b.k, 100);
        assert_eq!(b.query_tag, 8);
        // The template itself is untouched (Copy semantics).
        assert_eq!(template.k, 1000);
        assert_eq!(template.query_tag, 0);
        assert_eq!(a.seg_size, template.seg_size);
        assert_eq!(a.phi, template.phi);
    }

    #[test]
    #[should_panic]
    fn invalid_k_rejected() {
        let _ = SearchConfig::exact(10).with_k(0);
    }

    #[test]
    #[should_panic]
    fn invalid_jass_p_rejected() {
        let _ = SearchConfig::exact(10).with_jass_p(0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_bmw_f_rejected() {
        let _ = SearchConfig::exact(10).with_bmw_f(0.5);
    }
}
