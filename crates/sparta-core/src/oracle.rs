//! Exhaustive ground truth for recall measurement.
//!
//! Recall is "the fraction of L included in A" where L is the exact
//! top-k list (§2). The oracle computes L by brute force: it
//! accumulates every posting of every query term into a dense
//! per-document score table and selects the top k. O(N + Σ df(tᵢ))
//! time, O(N) space — far too slow to serve queries, exactly right
//! for verifying the algorithms that do.

use crate::result::{finalize_hits, SearchHit};
use sparta_collections::BoundedTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_index::Index;

/// Ground truth for one query: full scores of all matching documents
/// plus the exact top-k.
pub struct Oracle {
    k: usize,
    /// Dense accumulator: full score per document id.
    scores: Vec<u64>,
    topk: Vec<SearchHit>,
}

impl Oracle {
    /// Computes ground truth by exhaustively scoring `query` against
    /// `index`.
    pub fn compute(index: &dyn Index, query: &Query, k: usize) -> Self {
        let mut scores = vec![0u64; index.num_docs() as usize];
        for &t in &query.terms {
            let mut c = index.doc_cursor(t);
            while let Some(d) = c.doc() {
                scores[d as usize] += u64::from(c.score());
                c.advance();
            }
        }
        let mut heap = BoundedTopK::new(k.max(1));
        for (d, &s) in scores.iter().enumerate() {
            if s > 0 {
                heap.offer(s, d as DocId);
            }
        }
        let topk = finalize_hits(
            heap.into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            k,
        );
        Self { k, scores, topk }
    }

    /// The exact top-k, in rank order.
    pub fn topk(&self) -> &[SearchHit] {
        &self.topk
    }

    /// k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The true full score of a document (0 if it matches no term).
    pub fn score(&self, doc: DocId) -> u64 {
        self.scores.get(doc as usize).copied().unwrap_or(0)
    }

    /// The k-th best score (the exact threshold); 0 when fewer than k
    /// documents match.
    pub fn kth_score(&self) -> u64 {
        if self.topk.len() == self.k {
            self.topk.last().map_or(0, |h| h.score)
        } else {
            0
        }
    }

    /// Tie-aware recall of a result set: the fraction of `k` covered
    /// by returned documents whose *true* score is at least the k-th
    /// best true score. Tie-awareness matters with integer scores —
    /// any document tied at the boundary is as good as the one the
    /// oracle happened to keep.
    pub fn recall(&self, docs: &[DocId]) -> f64 {
        if self.topk.is_empty() {
            return 1.0;
        }
        let kth = self.topk.last().map_or(0, |h| h.score);
        let denom = self.topk.len() as f64;
        let mut seen = std::collections::HashSet::new();
        let good = docs
            .iter()
            .filter(|&&d| seen.insert(d) && self.score(d) >= kth && self.score(d) > 0)
            .count() as f64;
        (good / denom).min(1.0)
    }

    /// Strict set recall: |A ∩ L| / |L| (ignores ties). Provided for
    /// comparison with the tie-aware measure.
    pub fn strict_recall(&self, docs: &[DocId]) -> f64 {
        if self.topk.is_empty() {
            return 1.0;
        }
        let truth: std::collections::HashSet<DocId> = self.topk.iter().map(|h| h.doc).collect();
        let hit = docs.iter().filter(|d| truth.contains(d)).count();
        hit as f64 / truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparta_index::{InMemoryIndex, Posting};
    use std::sync::Arc;

    fn index() -> Arc<InMemoryIndex> {
        // doc scores for query {0,1}:
        //   doc0: 10+5=15, doc1: 20, doc2: 7+7=14, doc3: 1
        let t0 = vec![Posting::new(0, 10), Posting::new(1, 20), Posting::new(2, 7)];
        let t1 = vec![Posting::new(0, 5), Posting::new(2, 7), Posting::new(3, 1)];
        Arc::new(InMemoryIndex::from_term_postings(vec![t0, t1], 10))
    }

    #[test]
    fn computes_exact_topk() {
        let ix = index();
        let o = Oracle::compute(ix.as_ref(), &Query::new(vec![0, 1]), 2);
        assert_eq!(
            o.topk(),
            &[
                SearchHit { doc: 1, score: 20 },
                SearchHit { doc: 0, score: 15 }
            ]
        );
        assert_eq!(o.kth_score(), 15);
        assert_eq!(o.score(2), 14);
        assert_eq!(o.score(9), 0);
    }

    #[test]
    fn recall_measures_overlap() {
        let ix = index();
        let o = Oracle::compute(ix.as_ref(), &Query::new(vec![0, 1]), 2);
        assert_eq!(o.recall(&[1, 0]), 1.0);
        assert_eq!(o.recall(&[1, 2]), 0.5);
        assert_eq!(o.recall(&[3, 2]), 0.0);
        assert_eq!(o.strict_recall(&[1, 2]), 0.5);
    }

    #[test]
    fn recall_is_tie_aware() {
        // Two docs tied at the k-th score: either counts.
        let t0 = vec![
            Posting::new(0, 10),
            Posting::new(1, 10),
            Posting::new(2, 30),
        ];
        let ix = InMemoryIndex::from_term_postings(vec![t0], 5);
        let o = Oracle::compute(&ix, &Query::new(vec![0]), 2);
        // Truth keeps {2, one of 0/1}; both {2,0} and {2,1} are perfect.
        assert_eq!(o.recall(&[2, 0]), 1.0);
        assert_eq!(o.recall(&[2, 1]), 1.0);
        // Strict recall disagrees on one of them — that is why the
        // tie-aware measure exists.
        let strict_sum = o.strict_recall(&[2, 0]) + o.strict_recall(&[2, 1]);
        assert_eq!(strict_sum, 1.5);
    }

    #[test]
    fn duplicate_docs_counted_once() {
        let ix = index();
        let o = Oracle::compute(ix.as_ref(), &Query::new(vec![0, 1]), 2);
        assert_eq!(o.recall(&[1, 1]), 0.5);
    }

    #[test]
    fn fewer_matches_than_k() {
        let ix = index();
        let o = Oracle::compute(ix.as_ref(), &Query::new(vec![1]), 100);
        assert_eq!(o.topk().len(), 3, "only 3 docs match term 1");
        assert_eq!(o.kth_score(), 0);
        assert_eq!(o.recall(&[0, 2, 3]), 1.0);
    }
}
