//! Sparta's shared document heap with lazy lower-bound refresh.
//!
//! "Updates of docHeap and Θ are protected by a shared lock, which
//! serializes all updates. To avoid races around evaluating a
//! DocType's lower bound and inserting it into docHeap, we update the
//! lower bound in a lazy manner while holding the global lock on
//! docHeap: Every thread that adds a document to the heap updates the
//! lower bounds of all heap documents" (§4.3, Alg. 1 lines 26–38).

use super::doc_slab::{DocHandle, DocSlab};
use super::doc_type::DocType;
use crate::result::SearchHit;
use crate::trace::TraceSink;
use parking_lot::Mutex;
use sparta_collections::{FastBuildHasher, FastHashSet};
use sparta_corpus::types::DocId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A heap's view of its document records. The heap only needs four
/// operations on a record, so it is generic over *where* records live:
/// refcounted `Arc<DocType>` ([`ArcDocs`], the baseline algorithms) or
/// inline slab records addressed by `Copy` handles (`Arc<DocSlab>`,
/// Sparta's per-query arena).
pub trait DocStore {
    /// The per-record reference the heap stores.
    type Handle: Clone + Send + Sync;

    /// The record's document id.
    fn doc_id_of(&self, h: &Self::Handle) -> DocId;

    /// Σ of the known term scores (the record's lower bound, fresh).
    fn sum_of(&self, h: &Self::Handle) -> u64;

    /// The lazily cached LB (valid under the heap lock).
    fn lb_of(&self, h: &Self::Handle) -> u64;

    /// Stores the recomputed LB (heap lock held).
    fn set_lb_of(&self, h: &Self::Handle, lb: u64);
}

/// [`DocStore`] over free-standing refcounted records — the handle
/// carries the record; the store itself is a zero-sized token.
#[derive(Debug, Default, Clone, Copy)]
pub struct ArcDocs;

impl DocStore for ArcDocs {
    type Handle = Arc<DocType>;

    #[inline]
    fn doc_id_of(&self, h: &Arc<DocType>) -> DocId {
        h.id
    }

    #[inline]
    fn sum_of(&self, h: &Arc<DocType>) -> u64 {
        h.current_sum()
    }

    #[inline]
    fn lb_of(&self, h: &Arc<DocType>) -> u64 {
        h.lb()
    }

    #[inline]
    fn set_lb_of(&self, h: &Arc<DocType>, lb: u64) {
        h.set_lb(lb);
    }
}

impl DocStore for Arc<DocSlab> {
    type Handle = DocHandle;

    #[inline]
    fn doc_id_of(&self, h: &DocHandle) -> DocId {
        self.id(*h)
    }

    #[inline]
    fn sum_of(&self, h: &DocHandle) -> u64 {
        DocSlab::current_sum(self, *h)
    }

    #[inline]
    fn lb_of(&self, h: &DocHandle) -> u64 {
        DocSlab::lb(self, *h)
    }

    #[inline]
    fn set_lb_of(&self, h: &DocHandle, lb: u64) {
        DocSlab::set_lb(self, *h, lb);
    }
}

struct Inner<H> {
    docs: Vec<H>,
    members: FastHashSet<DocId>,
}

/// The shared `docHeap` of Algorithm 1, generic over the record store
/// (defaults to [`ArcDocs`] so existing `SpartaHeap` usage reads
/// unchanged).
pub struct SpartaHeap<S: DocStore = ArcDocs> {
    store: S,
    k: usize,
    inner: Mutex<Inner<S::Handle>>,
    theta: AtomicU64,
    len: AtomicUsize,
    upd_nanos: AtomicU64,
    updates: AtomicU64,
    start: Instant,
}

impl SpartaHeap<ArcDocs> {
    /// Creates an empty heap of capacity `k` over [`ArcDocs`];
    /// `heapUpdTime` is initialized to "now" (Table 1).
    pub fn new(k: usize) -> Self {
        Self::with_store(ArcDocs, k)
    }
}

impl<S: DocStore> SpartaHeap<S> {
    /// Creates an empty heap of capacity `k` whose records live in
    /// `store`.
    pub fn with_store(store: S, k: usize) -> Self {
        assert!(k >= 1);
        Self {
            store,
            k,
            inner: Mutex::new(Inner {
                docs: Vec::with_capacity(k + 1),
                members: FastHashSet::with_capacity_and_hasher(k + 1, FastBuildHasher),
            }),
            theta: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            upd_nanos: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            // lint: allow(wall-clock): baseline instant for the upd_nanos heap-update timing stat
            start: Instant::now(),
        }
    }

    /// Θ — the k-th lowest LB once the heap is full, else 0 (lock-free
    /// read; workers poll this on every posting).
    #[inline]
    pub fn theta(&self) -> u64 {
        self.theta.load(Ordering::Acquire)
    }

    /// Current member count (lock-free; used by the cleaner's
    /// `|docMap| = |docHeap|` stopping check).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// UPDATE_HEAP(D) (Alg. 1 lines 26–38). Returns whether the heap
    /// changed. The caller pre-filters with
    /// `D.current_sum() > theta()` (line 23).
    pub fn update(&self, d: &S::Handle, trace: &TraceSink) -> bool {
        let id = self.store.doc_id_of(d);
        let mut inner = self.inner.lock();
        if inner.members.contains(&id) {
            // Line 28: only documents not already present are
            // (re)inserted; members' LBs refresh on the next insert.
            return false;
        }
        inner.members.insert(id);
        inner.docs.push(d.clone());
        // Lines 30–32: lazily refresh every member's LB under the lock.
        for doc in &inner.docs {
            self.store.set_lb_of(doc, self.store.sum_of(doc));
        }
        // Lines 33–34: evict the lowest-scored doc beyond capacity.
        if inner.docs.len() > self.k {
            let (mi, _) = inner
                .docs
                .iter()
                .enumerate()
                .min_by_key(|(_, doc)| (self.store.lb_of(doc), self.store.doc_id_of(doc)))
                .expect("non-empty");
            let evicted = inner.docs.swap_remove(mi);
            let eid = self.store.doc_id_of(&evicted);
            inner.members.remove(&eid);
        }
        // Lines 35–36: Θ becomes the k-th lowest LB once full.
        if inner.docs.len() == self.k {
            let min = inner
                .docs
                .iter()
                .map(|doc| self.store.lb_of(doc))
                .min()
                .unwrap_or(0);
            self.theta.store(min, Ordering::Release);
        }
        self.len.store(inner.docs.len(), Ordering::Release);
        drop(inner);
        // Line 37: heapUpdTime ← current time.
        self.upd_nanos
            .store(self.start.elapsed().as_nanos() as u64, Ordering::Release);
        self.updates.fetch_add(1, Ordering::Relaxed);
        trace.record(id, self.store.lb_of(d));
        true
    }

    /// Whether `doc` is currently in the heap.
    pub fn contains(&self, doc: DocId) -> bool {
        self.inner.lock().members.contains(&doc)
    }

    /// Snapshot of the member ids (one lock acquisition; used by the
    /// cleaner per pass rather than per document).
    pub fn members_snapshot(&self) -> FastHashSet<DocId> {
        self.inner.lock().members.clone()
    }

    /// Time since the last heap change (since creation if none).
    pub fn since_last_update(&self) -> Duration {
        let last = Duration::from_nanos(self.upd_nanos.load(Ordering::Acquire));
        self.start.elapsed().saturating_sub(last)
    }

    /// Successful updates so far.
    pub fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Final results in rank order by LB (refreshing LBs one last
    /// time under the lock).
    pub fn sorted_hits(&self) -> Vec<SearchHit> {
        let inner = self.inner.lock();
        let mut hits: Vec<SearchHit> = inner
            .docs
            .iter()
            .map(|d| SearchHit {
                doc: self.store.doc_id_of(d),
                score: self.store.sum_of(d),
            })
            .collect();
        drop(inner);
        hits.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(b.doc.cmp(&a.doc)));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: DocId, m: usize, scores: &[(usize, u32)]) -> Arc<DocType> {
        let d = Arc::new(DocType::new(id, m));
        for &(i, s) in scores {
            d.set_score(i, s);
        }
        d
    }

    #[test]
    fn fills_then_thresholds() {
        let h = SpartaHeap::new(2);
        let t = TraceSink::new(false);
        assert_eq!(h.theta(), 0);
        assert!(h.update(&doc(1, 2, &[(0, 10)]), &t));
        assert_eq!(h.theta(), 0, "not full yet");
        assert!(h.update(&doc(2, 2, &[(0, 30)]), &t));
        assert_eq!(h.theta(), 10);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn eviction_keeps_best_lbs() {
        let h = SpartaHeap::new(2);
        let t = TraceSink::new(false);
        h.update(&doc(1, 1, &[(0, 10)]), &t);
        h.update(&doc(2, 1, &[(0, 30)]), &t);
        h.update(&doc(3, 1, &[(0, 20)]), &t);
        let hits = h.sorted_hits();
        assert_eq!(
            hits.iter().map(|x| x.doc).collect::<Vec<_>>(),
            vec![2, 3],
            "doc 1 evicted"
        );
        assert!(!h.contains(1));
        assert_eq!(h.theta(), 20);
    }

    #[test]
    fn lazy_lb_refresh_on_insert() {
        let h = SpartaHeap::new(2);
        let t = TraceSink::new(false);
        let d1 = doc(1, 2, &[(0, 10)]);
        h.update(&d1, &t);
        // d1's score grows after insertion (another term arrives)…
        d1.set_score(1, 100);
        // …but Θ/LB only refresh on the next insert (lazy).
        h.update(&doc(2, 2, &[(0, 5)]), &t);
        assert_eq!(d1.lb(), 110, "refreshed under the lock");
        assert_eq!(h.theta(), 5);
        // A third doc must evict doc 2, not the improved doc 1.
        h.update(&doc(3, 2, &[(0, 50)]), &t);
        assert!(h.contains(1) && h.contains(3) && !h.contains(2));
    }

    #[test]
    fn reinsert_after_eviction() {
        let h = SpartaHeap::new(1);
        let t = TraceSink::new(false);
        let d1 = doc(1, 2, &[(0, 10)]);
        h.update(&d1, &t);
        h.update(&doc(2, 2, &[(0, 20)]), &t);
        assert!(!h.contains(1));
        d1.set_score(1, 100);
        assert!(h.update(&d1, &t), "evicted doc re-enters when it grows");
        assert!(h.contains(1) && !h.contains(2));
    }

    #[test]
    fn member_update_is_noop() {
        let h = SpartaHeap::new(2);
        let t = TraceSink::new(true);
        let d1 = doc(1, 1, &[(0, 10)]);
        assert!(h.update(&d1, &t));
        assert!(!h.update(&d1, &t), "already a member");
        assert_eq!(h.update_count(), 1);
        assert_eq!(t.into_events().unwrap().len(), 1);
    }

    #[test]
    fn concurrent_updates_preserve_topk() {
        let h = Arc::new(SpartaHeap::new(16));
        let t = Arc::new(TraceSink::new(false));
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let h = Arc::clone(&h);
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let id = w * 500 + i;
                        let d = doc(id, 1, &[(0, (id * 7919) % 1000 + 1)]);
                        if d.current_sum() > h.theta() {
                            h.update(&d, &t);
                        }
                    }
                });
            }
        });
        let hits = h.sorted_hits();
        assert_eq!(hits.len(), 16);
        let mut want: Vec<u64> = (0..2000u32)
            .map(|id| u64::from((id * 7919) % 1000 + 1))
            .collect();
        want.sort_unstable_by(|a, b| b.cmp(a));
        let got: Vec<u64> = hits.iter().map(|h| h.score).collect();
        assert_eq!(got, want[..16].to_vec());
    }
}
