//! A per-query arena of document records with inline score slots.
//!
//! The `Arc<DocType>` representation costs two heap allocations per
//! admitted document (the `Arc` control block + record, and the inner
//! `Box<[AtomicU32]>` of scores) plus a pointer chase per score access,
//! and retires those allocations one by one when the cleaner prunes.
//! [`DocSlab`] replaces it for Sparta's per-query candidate set: all
//! records live inline in large blocks, each record is one contiguous
//! stride of `3 + m` words —
//!
//! ```text
//! ┌────────┬───────────┬────────┬──────────┬───┬────────────┐
//! │   id   │ sum (Σsᵢ) │   lb   │ score[0] │ … │ score[m-1] │
//! └────────┴───────────┴────────┴──────────┴───┴────────────┘
//! ```
//!
//! — and lookups hand out [`DocHandle`], a `Copy` 4-byte index, instead
//! of an 8-byte refcounted pointer. Records are never freed
//! individually: the slab drops wholesale with the query (pruned
//! records merely become unreachable from `docMap`), so admission is a
//! wait-free `fetch_add` bump and the whole query performs **at most
//! one allocation per slab block** — the acceptance criterion asserted
//! by the slab-accounting test via [`DocSlab::blocks_allocated`].
//!
//! Blocks grow geometrically (`BASE_CAP << block_index`), so a query
//! admitting N documents touches O(log N) blocks, and block addresses
//! are stable once published (a `OnceLock` per slot), so handles can be
//! dereferenced without any lock while other workers admit documents.

use super::doc_type::SharedUb;
use sparta_corpus::types::DocId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Records in block 0; block b holds `BASE_CAP << b`.
const BASE_CAP: usize = 256;
/// Enough blocks to cover every representable `DocHandle` index
/// (cumulative capacity `BASE_CAP · (2^NUM_BLOCKS − 1)` > `u32::MAX`).
const NUM_BLOCKS: usize = 25;

/// Words preceding the score slots: id, running sum, lazy LB.
const HDR: usize = 3;

/// A `Copy` reference to one record in a [`DocSlab`] — what Sparta's
/// `docMap` and `termMap` store instead of `Arc<DocType>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DocHandle(u32);

/// A grow-only arena of `⟨id, sum, LB, score[m]⟩` records.
///
/// Concurrency contract (mirrors `DocType`, §4.3): `score[i]` is
/// written only by the worker owning term i; `sum` is maintained by
/// commuting `fetch_add` deltas; `lb` is only meaningful under the
/// heap lock. Any thread may read anything.
pub struct DocSlab {
    m: usize,
    /// Words per record: `HDR + m`.
    stride: usize,
    /// Records allocated so far (bump pointer).
    len: AtomicUsize,
    blocks: Box<[OnceLock<Box<[AtomicU64]>>]>,
    /// Blocks actually allocated — the slab's entire allocation count
    /// (excluding the fixed-size slab struct itself).
    blocks_allocated: AtomicUsize,
}

impl DocSlab {
    /// Creates an empty slab for records with `m` score slots.
    pub fn new(m: usize) -> Self {
        Self {
            m,
            stride: HDR + m,
            len: AtomicUsize::new(0),
            blocks: (0..NUM_BLOCKS).map(|_| OnceLock::new()).collect(),
            blocks_allocated: AtomicUsize::new(0),
        }
    }

    /// Number of score slots per record.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// Records allocated so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no record has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks allocated so far — the slab's total heap-allocation
    /// count, asserted to be O(log len) by the accounting test.
    pub fn blocks_allocated(&self) -> usize {
        self.blocks_allocated.load(Ordering::Acquire)
    }

    /// Splits a record index into (block, word offset within block).
    #[inline]
    fn locate(&self, idx: usize) -> (usize, usize) {
        // Block b spans indices [BASE_CAP·(2^b − 1), BASE_CAP·(2^(b+1) − 1)).
        let n = idx / BASE_CAP + 1;
        let b = (usize::BITS - 1 - n.leading_zeros()) as usize;
        let start = ((1usize << b) - 1) * BASE_CAP;
        (b, (idx - start) * self.stride)
    }

    #[inline]
    fn block(&self, b: usize) -> &[AtomicU64] {
        self.blocks[b].get_or_init(|| {
            self.blocks_allocated.fetch_add(1, Ordering::AcqRel);
            let words = (BASE_CAP << b) * self.stride;
            (0..words).map(|_| AtomicU64::new(0)).collect()
        })
    }

    /// Admits a new record for `id` with zeroed scores. Wait-free bump
    /// except when the admission is the first to touch a block.
    pub fn alloc(&self, id: DocId) -> DocHandle {
        let idx = self.len.fetch_add(1, Ordering::AcqRel);
        assert!(idx <= u32::MAX as usize, "DocSlab overflow");
        let (b, off) = self.locate(idx);
        // Relaxed is enough: the handle is only published to other
        // threads through the docMap stripe lock (or the heap lock),
        // which orders this store before any reader's load.
        self.block(b)[off].store(u64::from(id), Ordering::Relaxed);
        DocHandle(idx as u32)
    }

    #[inline]
    fn record(&self, h: DocHandle) -> (&[AtomicU64], usize) {
        let (b, off) = self.locate(h.0 as usize);
        let block = self.blocks[b].get().expect("handle into unallocated block");
        (block, off)
    }

    /// The record's document id.
    #[inline]
    pub fn id(&self, h: DocHandle) -> DocId {
        let (block, off) = self.record(h);
        // ordering: the id word is written once in alloc() before the (model: doc_slab_publish)
        // handle is published through the docMap stripe lock (or the
        // heap lock); that lock's release/acquire pair orders the store
        // before any reader holding a handle, so Relaxed suffices here
        // even though the sibling score/sum words use Acquire.
        block[off].load(Ordering::Relaxed) as DocId
    }

    /// Sets term i's score (owner thread only) and folds the delta into
    /// the running sum, exactly like `DocType::set_score`.
    #[inline]
    pub fn set_score(&self, h: DocHandle, i: usize, score: u32) {
        debug_assert!(i < self.m);
        let (block, off) = self.record(h);
        let old = block[off + HDR + i].swap(u64::from(score), Ordering::AcqRel);
        let delta = u64::from(score).wrapping_sub(old);
        block[off + 1].fetch_add(delta, Ordering::AcqRel);
    }

    /// Term i's score so far (0 = not yet seen).
    #[inline]
    pub fn score(&self, h: DocHandle, i: usize) -> u32 {
        debug_assert!(i < self.m);
        let (block, off) = self.record(h);
        block[off + HDR + i].load(Ordering::Acquire) as u32
    }

    /// Sum of the known term scores — one load of the running sum.
    #[inline]
    pub fn current_sum(&self, h: DocHandle) -> u64 {
        let (block, off) = self.record(h);
        block[off + 1].load(Ordering::Acquire)
    }

    /// The lazily cached LB (valid under the heap lock).
    #[inline]
    pub fn lb(&self, h: DocHandle) -> u64 {
        let (block, off) = self.record(h);
        block[off + 2].load(Ordering::Acquire)
    }

    /// Stores the recomputed LB (heap lock held).
    #[inline]
    pub fn set_lb(&self, h: DocHandle, lb: u64) {
        let (block, off) = self.record(h);
        block[off + 2].store(lb, Ordering::Release);
    }

    /// Upper bound `UB(D) = Σᵢ (score[i] > 0 ? score[i] : UB[i])`
    /// (Table 1), γ-scaled for the probabilistic-pruning extension
    /// (γ = 1 gives the safe bound). Mirrors `DocType::ub_scaled`.
    pub fn ub_scaled(&self, h: DocHandle, ub: &SharedUb, gamma: f64) -> u64 {
        let (block, off) = self.record(h);
        (0..self.m)
            .map(|i| {
                let v = block[off + HDR + i].load(Ordering::Acquire);
                if v > 0 {
                    v
                } else if gamma >= 1.0 {
                    ub.get(i)
                } else {
                    (ub.get(i) as f64 * gamma) as u64
                }
            })
            .sum()
    }

    /// Safe upper bound (γ = 1).
    pub fn ub(&self, h: DocHandle, ub: &SharedUb) -> u64 {
        self.ub_scaled(h, ub, 1.0)
    }
}

impl std::fmt::Debug for DocSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocSlab")
            .field("m", &self.m)
            .field("len", &self.len())
            .field("blocks_allocated", &self.blocks_allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_roundtrip_matches_doc_type_semantics() {
        let slab = DocSlab::new(3);
        let h = slab.alloc(57);
        assert_eq!(slab.id(h), 57);
        assert_eq!(slab.current_sum(h), 0);
        slab.set_score(h, 0, 11);
        slab.set_score(h, 2, 41);
        assert_eq!(slab.score(h, 0), 11);
        assert_eq!(slab.score(h, 1), 0);
        assert_eq!(slab.current_sum(h), 52);
        slab.set_lb(h, 52);
        assert_eq!(slab.lb(h), 52);
        // Downward revision subtracts cleanly via the wrapping delta.
        slab.set_score(h, 0, 1);
        assert_eq!(slab.current_sum(h), 42);
    }

    #[test]
    fn figure_1_ub_matches_doc_type() {
        let ub = SharedUb::new(3);
        ub.set(0, 38);
        ub.set(1, 32);
        ub.set(2, 41);
        let slab = DocSlab::new(3);
        let h = slab.alloc(57);
        slab.set_score(h, 1, 40);
        slab.set_score(h, 2, 41);
        assert_eq!(slab.ub(h, &ub), 38 + 40 + 41);
        // γ-scaled: the one unknown term is discounted.
        assert_eq!(slab.ub_scaled(h, &ub, 0.5), 19 + 40 + 41);
    }

    #[test]
    fn geometric_blocks_cover_many_records() {
        let slab = DocSlab::new(2);
        let n = 10_000usize;
        let handles: Vec<DocHandle> = (0..n).map(|i| slab.alloc(i as DocId)).collect();
        assert_eq!(slab.len(), n);
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(slab.id(h) as usize, i, "stable address for record {i}");
        }
        // 10_000 records with BASE_CAP=256 fit in blocks 0..=5
        // (256·(2^6−1) = 16_128 ≥ 10_000): O(log n) allocations.
        assert!(
            slab.blocks_allocated() <= 6,
            "blocks = {}",
            slab.blocks_allocated()
        );
    }

    #[test]
    fn locate_block_boundaries() {
        let slab = DocSlab::new(1);
        // First index of each block: BASE_CAP·(2^b − 1).
        for b in 0..5usize {
            let first = ((1usize << b) - 1) * BASE_CAP;
            assert_eq!(slab.locate(first), (b, 0), "first index of block {b}");
            if b > 0 {
                let last_prev = first - 1;
                let (pb, poff) = slab.locate(last_prev);
                assert_eq!(pb, b - 1, "last index of block {}", b - 1);
                assert_eq!(poff / slab.stride, (BASE_CAP << (b - 1)) - 1);
            }
        }
    }

    #[test]
    fn concurrent_admission_and_owner_writes() {
        let slab = Arc::new(DocSlab::new(4));
        // 4 workers admit disjoint documents and each writes its own
        // term slot of every record it can see — the §4.3 contract.
        let handles: Arc<parking_lot::Mutex<Vec<DocHandle>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let slab = Arc::clone(&slab);
                let handles = Arc::clone(&handles);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let h = slab.alloc(w * 500 + i);
                        slab.set_score(h, w as usize, w + 1);
                        handles.lock().push(h);
                    }
                });
            }
        });
        assert_eq!(slab.len(), 2000);
        let handles = handles.lock();
        let mut ids: Vec<DocId> = handles.iter().map(|&h| slab.id(h)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2000, "no two handles share a record");
        let total: u64 = handles.iter().map(|&h| slab.current_sum(h)).sum();
        assert_eq!(total, 500 * (1 + 2 + 3 + 4));
    }
}
