//! Sparta — Scalable PARallel Threshold Algorithm (Algorithm 1).
//!
//! Sparta parallelizes NRA across the query's m posting lists with
//! three locality/synchronization optimizations (§4):
//!
//! 1. **Segmented traversal with lazy UB updates** — posting lists are
//!    traversed in segments allocated through a job queue; the shared
//!    `UB[i]` is written once per segment, not per posting.
//! 2. **A cleaner task** — once `UBStop` (Eq. 1) first holds, no new
//!    document can enter the top-k, so the shared `docMap` stops
//!    growing; a background task repeatedly rebuilds it without dead
//!    candidates (`UB(D) ≤ Θ`) and publishes the pruned map with a
//!    single pointer swing. It also detects termination: Eq. 2 holds
//!    exactly when `|docMap| = |docHeap|`, and the Δ-timeout implements
//!    the approximate variant.
//! 3. **Term-local map replicas** — when `|docMap|` drops below Φ, the
//!    worker owning a posting list copies the entries still missing its
//!    term's score into a thread-local `termMap` that fits in cache,
//!    eliminating shared-map reads entirely.
//!
//! Deviation from the pseudocode, documented: Algorithm 1's *main
//! thread* waits for `UBStop` and then enqueues CLEANER (lines 4–5).
//! We have no dedicated main thread per query (the same code must run
//! on a shared pool in throughput mode), so the first worker that
//! observes `UBStop` enqueues the cleaner instead — same trigger, same
//! once-only semantics. Likewise, the cleaner prunes on every pass
//! rather than only while `|docMap| > Φ`; pruning below Φ is required
//! for the exact variant's `|docMap| = |docHeap|` condition to become
//! true, and is exactly what shrinks `termMap`-eligible copies.

pub mod doc_slab;
pub mod doc_type;
pub mod heap;

pub use doc_slab::{DocHandle, DocSlab};
pub use doc_type::{DocType, SharedUb};
pub use heap::{ArcDocs, DocStore, SpartaHeap};

use crate::config::SearchConfig;
use crate::result::{TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::{FastBuildHasher, FastHashMap, ShardedCounter, StripedMap, SwapCell};
use sparta_corpus::types::{DocId, Query, TermId};
use sparta_exec::{CyclicJob, Executor, Job, JobQueue};
use sparta_index::{Index, ScoreCursor};
use sparta_obs::{Phase, QueryTrace};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The Sparta algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sparta;

/// Resolves `SPARTA_DEBUG_CLEANER` once per process. The lookup used
/// to run on every cleaner pass — an environment-map probe (with its
/// internal lock on some platforms) in the middle of the hot loop.
fn debug_cleaner_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("SPARTA_DEBUG_CLEANER").is_some())
}

/// Shared per-query state (Table 1).
struct State {
    cfg: SearchConfig,
    ub: SharedUb,
    /// Per-query record arena; `doc_map`, `termMap`s, and the heap all
    /// refer into it by [`DocHandle`]. Dropped wholesale with the query.
    slab: Arc<DocSlab>,
    heap: SpartaHeap<Arc<DocSlab>>,
    doc_map: SwapCell<StripedMap<DocId, DocHandle>>,
    done: AtomicBool,
    cleaner_scheduled: AtomicBool,
    debug_cleaner: bool,
    trace: TraceSink,
    spans: QueryTrace,
    postings: ShardedCounter,
    docmap_peak: AtomicU64,
    cleaner_passes: AtomicU64,
    timeout_stops: AtomicU64,
}

impl State {
    fn new(m: usize, cfg: SearchConfig) -> Self {
        let slab = Arc::new(DocSlab::new(m));
        Self {
            cfg,
            ub: SharedUb::new(m),
            heap: SpartaHeap::with_store(Arc::clone(&slab), cfg.k),
            slab,
            doc_map: SwapCell::new(StripedMap::new()),
            done: AtomicBool::new(false),
            cleaner_scheduled: AtomicBool::new(false),
            debug_cleaner: debug_cleaner_enabled(),
            trace: TraceSink::with_clock(cfg.trace, cfg.clock),
            spans: QueryTrace::new(cfg.spans, cfg.clock),
            postings: ShardedCounter::new(),
            docmap_peak: AtomicU64::new(0),
            cleaner_passes: AtomicU64::new(0),
            timeout_stops: AtomicU64::new(0),
        }
    }

    #[inline]
    fn ub_stop(&self) -> bool {
        self.ub.ub_stop(self.heap.theta())
    }

    #[inline]
    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Enqueues the cleaner the first time `UBStop` is observed
    /// (Alg. 1 lines 4–5, worker-triggered; see module docs).
    fn maybe_schedule_cleaner(self: &Arc<Self>, queue: &Arc<JobQueue>) {
        if self.ub_stop() && !self.cleaner_scheduled.swap(true, Ordering::AcqRel) {
            queue.push(Job::cyclic(CleanerJob {
                state: Arc::clone(self),
                queue: Arc::clone(queue),
            }));
        }
    }
}

/// A worker's thread-local replica of `docMap` restricted to one term
/// (§4.3). Owned by whichever job currently processes the term, kept
/// in the job's recycled box across segments — "every posting list is
/// accessed by at most one worker at any given time, [so] no
/// synchronization is required".
type TermMap = FastHashMap<DocId, DocHandle>;

/// PROCESSTERM(i) (Alg. 1 lines 8–25) as a recycled [`CyclicJob`]:
/// each step traverses one segment of term i's posting list; returning
/// `true` re-enqueues this same box for the next segment (line 25), so
/// steady-state traversal allocates no job boxes and the cursor /
/// `termMap` state never moves between heap objects.
struct SegmentJob {
    state: Arc<State>,
    queue: Arc<JobQueue>,
    i: usize,
    cursor: Box<dyn ScoreCursor>,
    term_map: Option<TermMap>,
}

impl CyclicJob for SegmentJob {
    fn run_step(&mut self) -> bool {
        let state = &self.state;
        let i = self.i;
        if state.is_done() {
            return false;
        }
        let seg_span = state.spans.span(Phase::TermProcess);
        // Lines 9–12: once the shrinking docMap is small, build the
        // local replica of the entries still missing this term's score.
        if self.term_map.is_none() && state.ub_stop() {
            let map = state.doc_map.load();
            if map.len() < state.cfg.phi {
                let mut local = TermMap::with_capacity_and_hasher(map.len(), FastBuildHasher);
                map.for_each(|id, h| {
                    if state.slab.score(*h, i) == 0 {
                        local.insert(*id, *h);
                    }
                });
                self.term_map = Some(local);
            }
        }
        // Workers not yet on a local map take one snapshot per segment;
        // before UBStop the map is never swapped (single instance), and
        // after UBStop a stale snapshot can only contain already-dead
        // entries, so updating through it is harmless.
        let snapshot = if self.term_map.is_none() {
            Some(state.doc_map.load())
        } else {
            None
        };

        let mut last_score: Option<u32> = None;
        let mut exhausted = false;
        for _ in 0..state.cfg.seg_size {
            if state.is_done() {
                return false; // line 14
            }
            let Some(p) = self.cursor.next() else {
                exhausted = true;
                break;
            };
            state.postings.incr();
            last_score = Some(p.score);
            // Lines 16–21: locate (or admit) the document's record.
            // Admission is a slab bump: the record lives inline in the
            // arena and the map stores the 4-byte handle.
            let d = match (&self.term_map, &snapshot) {
                (Some(local), _) => local.get(&p.doc).copied(),
                (None, Some(map)) => {
                    map.get_or_try_insert_with(p.doc, !state.ub_stop(), || state.slab.alloc(p.doc))
                }
                _ => unreachable!("exactly one of term_map/snapshot is set"),
            };
            if let Some(h) = d {
                state.slab.set_score(h, i, p.score); // line 22
                if state.slab.current_sum(h) > state.heap.theta() {
                    state.heap.update(&h, &state.trace); // line 23
                }
            }
        }
        // Line 24: publish the term's upper bound once per segment.
        if let Some(s) = last_score {
            state.ub.set(i, s);
        }
        if exhausted {
            // Nothing untraversed remains: the bound drops to zero (the
            // pseudocode leaves list exhaustion implicit).
            state.ub.exhaust(i);
        }
        // Observe the map size every segment regardless of which branch
        // served the lookups — a single worker that jumps straight to a
        // termMap must still report the peak it admitted into the map.
        state
            .docmap_peak
            .fetch_max(state.doc_map.load().len() as u64, Ordering::Relaxed);
        state.maybe_schedule_cleaner(&self.queue);
        drop(seg_span);
        // Line 25: recycle this box as the next segment of the list.
        !exhausted && !state.is_done()
    }
}

/// CLEANER (Alg. 1 lines 39–48) as a recycled [`CyclicJob`]: each step
/// is one pass; returning `true` re-enqueues the same box (line 48).
struct CleanerJob {
    state: Arc<State>,
    queue: Arc<JobQueue>,
}

impl CyclicJob for CleanerJob {
    fn run_step(&mut self) -> bool {
        let state = &self.state;
        if state.is_done() {
            return false;
        }
        let pass_span = state.spans.span(Phase::Cleaner);
        state.cleaner_passes.fetch_add(1, Ordering::Relaxed);
        let cur = state.doc_map.load();
        let theta = state.heap.theta();
        let members = state.heap.members_snapshot();
        state
            .docmap_peak
            .fetch_max(cur.len() as u64, Ordering::Relaxed);
        // Lines 41–45: rebuild into tmpDocMap, keeping entries whose
        // upper bound still exceeds Θ, plus all heap members (whose
        // bounds may equal Θ), then swing the global pointer. With the
        // probabilistic extension (γ < 1), "upper bound" becomes the
        // γ-scaled estimate — candidates merely *unlikely* to reach Θ
        // are dropped too. Pruning removes only the handle; the record
        // stays in the slab until the query drops (no per-record free).
        //
        // `stragglers` counts retained non-members: the pseudocode's
        // `|docMap| = |docHeap|` stopping test assumes docHeap ⊆ docMap
        // and is exactly `stragglers == 0` then. We check stragglers
        // directly because with γ < 1 a pruned candidate can later
        // re-grow and re-enter the heap through a worker's termMap,
        // breaking the ⊆ invariant (a size-equality check would then
        // never fire and the query would degrade to a full scan).
        let gamma = state.cfg.prune_gamma.unwrap_or(1.0);
        let tmp: StripedMap<DocId, DocHandle> = StripedMap::new();
        let mut stragglers = 0usize;
        cur.for_each(|id, h| {
            let member = members.contains(id);
            if member || state.slab.ub_scaled(*h, &state.ub, gamma) > theta {
                if !member {
                    stragglers += 1;
                }
                tmp.insert(*id, *h);
            }
        });
        if tmp.len() < cur.len() {
            state.doc_map.swap(Arc::new(tmp));
        }
        // Line 46: stopping conditions — Eq. 2 (no candidate outside
        // the heap can still qualify), or the Δ timeout (exact: Δ = ∞).
        if state.debug_cleaner {
            eprintln!(
                "cleaner: map={} heap={} stragglers={stragglers} theta={} ubsum={}",
                state.doc_map.load().len(),
                state.heap.len(),
                state.heap.theta(),
                state.ub.sum()
            );
        }
        let eq2 = stragglers == 0;
        let timed_out = state
            .cfg
            .delta
            .is_some_and(|d| state.heap.since_last_update() >= d);
        // Starvation guard (found by the deterministic fault-injection
        // harness): if the cleaner is the only outstanding job, every
        // traversal job is gone — exhausted or lost to a fault — so no
        // score update can ever arrive and re-enqueueing would loop
        // forever. In a fault-free run this fires only when Eq. 2
        // already holds (exhausted lists zero their UB, which prunes
        // every non-member), so it never changes exact results.
        let starved = self.queue.outstanding() <= 1;
        drop(pass_span);
        if eq2 || timed_out || starved {
            if timed_out && !eq2 {
                // The Δ budget (approximate variant) fired before Eq. 2.
                state.timeout_stops.fetch_add(1, Ordering::Relaxed);
            }
            state.done.store(true, Ordering::Release); // line 47
            false
        } else {
            true // line 48: recycle this box as the next pass
        }
    }
}

impl Algorithm for Sparta {
    fn name(&self) -> &'static str {
        "sparta"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let m = query.terms.len();
        if m == 0 {
            return TopKResult {
                hits: Vec::new(),
                elapsed: start.elapsed(),
                work: WorkStats::default(),
                trace: cfg.trace.then(Vec::new),
                spans: cfg.spans.then(Vec::new),
            };
        }
        let state = Arc::new(State::new(m, *cfg));
        let queue = JobQueue::tagged(cfg.query_tag);
        {
            let _plan = state.spans.span(Phase::Plan);
            for (i, &t) in query.terms.iter().enumerate() {
                let cursor = open_cursor(index, t);
                queue.push(Job::cyclic(SegmentJob {
                    state: Arc::clone(&state),
                    queue: Arc::clone(&queue),
                    i,
                    cursor,
                    term_map: None,
                }));
            }
        }
        exec.run(Arc::clone(&queue));

        let merge = state.spans.span(Phase::HeapMerge);
        let mut hits = state.heap.sorted_hits();
        hits.truncate(cfg.k);
        // Re-record every final member with its settled sum:
        // `SpartaHeap::update` traces *inserts* only, so a member whose
        // score kept growing after its last insert would replay with a
        // stale partial sum — at the trace's final sample a non-member
        // whose traced score exceeds that stale sum then displaces the
        // member from the reconstructed top-k, and an exact run's
        // recall curve ends below 1.0 (schedule-dependent under ≥2
        // traversal threads). Recording here keeps the hot insert path
        // unchanged and stamps these events after every worker event,
        // so the final replay sample sees the true sums.
        for h in &hits {
            state.trace.record(h.doc, h.score);
        }
        drop(merge);
        let docmap_final = state.doc_map.load().len() as u64;
        let work = WorkStats {
            postings_scanned: state.postings.get(),
            random_accesses: 0,
            heap_updates: state.heap.update_count(),
            docmap_peak: state.docmap_peak.load(Ordering::Relaxed).max(docmap_final),
            cleaner_passes: state.cleaner_passes.load(Ordering::Relaxed),
            jobs_panicked: queue.panicked() as u64,
            jobs_recycled: queue.recycled() as u64,
            docmap_final,
            timeout_stops: state.timeout_stops.load(Ordering::Relaxed),
            ..WorkStats::default()
        };
        let state = Arc::into_inner(state).expect("all jobs drained");
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: state.trace.into_events(),
            spans: state.spans.into_spans(),
        }
    }
}

/// Opens an owning score cursor for `term`.
pub(crate) fn open_cursor(index: &Arc<dyn Index>, term: TermId) -> Box<dyn ScoreCursor> {
    Arc::clone(index).score_cursor_arc(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    fn pseudo_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    .map(|d| {
                        let x = d
                            .wrapping_mul(2654435761)
                            .wrapping_add(t * 97 + seed)
                            .wrapping_mul(2246822519);
                        Posting::new(d, x % 10_000 + 1)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    fn check_exact(n: u32, m: usize, k: usize, threads: usize, seed: u32) {
        let ix = pseudo_index(n, m, seed);
        let q = Query::new((0..m as u32).collect());
        let cfg = SearchConfig::exact(k).with_seg_size(64).with_phi(256);
        let oracle = Oracle::compute(ix.as_ref(), &q, k);
        let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(threads));
        assert_eq!(
            oracle.recall(&r.docs()),
            1.0,
            "n={n} m={m} k={k} t={threads}: got {:?}",
            r.docs()
        );
    }

    #[test]
    fn exact_single_thread() {
        check_exact(2000, 3, 10, 1, 1);
    }

    #[test]
    fn exact_multi_thread() {
        check_exact(2000, 3, 10, 3, 2);
    }

    #[test]
    fn exact_more_threads_than_terms() {
        check_exact(1000, 2, 5, 8, 3);
    }

    #[test]
    fn exact_many_terms() {
        check_exact(1500, 8, 20, 8, 4);
    }

    #[test]
    fn exact_k_larger_than_matches() {
        let t0 = vec![Posting::new(1, 10), Posting::new(5, 30)];
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(vec![t0], 10));
        let q = Query::new(vec![0]);
        let cfg = SearchConfig::exact(100);
        let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(2));
        assert_eq!(r.docs(), vec![5, 1]);
    }

    #[test]
    fn empty_query_returns_empty() {
        let ix = pseudo_index(100, 2, 0);
        let r = Sparta.search(
            &ix,
            &Query::new(vec![]),
            &SearchConfig::exact(10),
            &DedicatedExecutor::new(2),
        );
        assert!(r.hits.is_empty());
    }

    #[test]
    fn cleaner_shrinks_docmap() {
        let ix = pseudo_index(5000, 4, 7);
        let q = Query::new(vec![0, 1, 2, 3]);
        let cfg = SearchConfig::exact(10).with_seg_size(128).with_phi(512);
        let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        assert!(r.work.cleaner_passes > 0, "cleaner must have run");
        assert!(r.work.docmap_peak > 10, "docMap grew beyond k");
    }

    #[test]
    fn approximate_delta_stops_and_keeps_high_recall() {
        let ix = pseudo_index(20_000, 4, 9);
        let q = Query::new(vec![0, 1, 2, 3]);
        let exact = SearchConfig::exact(50).with_seg_size(256);
        let oracle = Oracle::compute(ix.as_ref(), &q, 50);
        // A Δ far above the query's runtime must not harm exactness…
        let generous = exact.with_delta(Some(std::time::Duration::from_secs(30)));
        let r = Sparta.search(&ix, &q, &generous, &DedicatedExecutor::new(4));
        assert_eq!(oracle.recall(&r.docs()), 1.0, "generous Δ stays exact");
        // …while a tiny Δ must terminate promptly with a full (if
        // imperfect) result set. Recall under a tiny Δ is timing
        // dependent, so only structural properties are asserted.
        let tiny = exact.with_delta(Some(std::time::Duration::from_micros(50)));
        let r = Sparta.search(&ix, &q, &tiny, &DedicatedExecutor::new(4));
        assert_eq!(r.hits.len(), 50, "still returns a full result set");
        assert!(
            r.hits.windows(2).all(|w| w[0].score >= w[1].score),
            "rank order preserved"
        );
    }

    #[test]
    fn work_stats_populated() {
        let ix = pseudo_index(3000, 3, 11);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(10).with_seg_size(64).with_phi(128);
        // Peak tracking must be branch-independent: a single worker
        // that jumps straight to termMaps used to under-report it.
        for threads in [1, 3] {
            let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(threads));
            assert!(r.work.postings_scanned > 0);
            assert!(r.work.heap_updates >= 10);
            assert_eq!(r.work.random_accesses, 0, "Sparta never random-accesses");
            assert!(
                r.work.docmap_peak >= r.work.docmap_final,
                "threads={threads}: peak {} < final {}",
                r.work.docmap_peak,
                r.work.docmap_final
            );
            assert!(
                r.work.docmap_peak > 10,
                "threads={threads}: peak {} never observed above k",
                r.work.docmap_peak
            );
            assert!(
                r.work.jobs_recycled > 0,
                "threads={threads}: segment continuations must recycle"
            );
        }
    }

    #[test]
    fn probabilistic_pruning_gamma_one_is_exact() {
        let ix = pseudo_index(4000, 4, 17);
        let q = Query::new(vec![0, 1, 2, 3]);
        let cfg = SearchConfig::exact(20).with_prune_gamma(1.0);
        let oracle = Oracle::compute(ix.as_ref(), &q, 20);
        let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        assert_eq!(oracle.recall(&r.docs()), 1.0, "γ = 1 must stay safe");
    }

    #[test]
    fn probabilistic_pruning_trades_work_for_recall() {
        let ix = pseudo_index(20_000, 4, 19);
        let q = Query::new(vec![0, 1, 2, 3]);
        let base = SearchConfig::exact(50).with_seg_size(256);
        let oracle = Oracle::compute(ix.as_ref(), &q, 50);
        // Single-threaded for a deterministic job schedule — posting
        // counts are only comparable under identical interleavings.
        let exact = Sparta.search(&ix, &q, &base, &DedicatedExecutor::new(1));
        let prob = Sparta.search(
            &ix,
            &q,
            &base.with_prune_gamma(0.9),
            &DedicatedExecutor::new(1),
        );
        assert_eq!(oracle.recall(&exact.docs()), 1.0);
        // γ = 0.9 prunes boundary candidates early: no more postings
        // than the safe run at a small recall cost. (On this uniform
        // synthetic index the recall-vs-γ curve is a cliff: boundary
        // candidates all have similar estimated bounds, so γ ≲ 0.7
        // drops the whole band at once — documented in EXPERIMENTS.md.)
        assert!(
            prob.work.postings_scanned <= exact.work.postings_scanned,
            "prob {} > exact {}",
            prob.work.postings_scanned,
            exact.work.postings_scanned
        );
        let rec = oracle.recall(&prob.docs());
        assert!(rec >= 0.9, "γ=0.9 recall collapsed to {rec}");
        assert_eq!(prob.hits.len(), 50);
    }

    #[test]
    #[should_panic(expected = "γ must be in (0, 1]")]
    fn invalid_gamma_rejected() {
        let _ = SearchConfig::exact(10).with_prune_gamma(1.5);
    }

    #[test]
    fn spans_cover_every_phase() {
        let ix = pseudo_index(5000, 4, 23);
        let q = Query::new(vec![0, 1, 2, 3]);
        let cfg = SearchConfig::exact(10)
            .with_seg_size(128)
            .with_phi(512)
            .with_spans(true);
        let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        let spans = r.spans.expect("spans enabled");
        let phases: std::collections::HashSet<Phase> = spans.iter().map(|s| s.phase).collect();
        for phase in [
            Phase::Plan,
            Phase::TermProcess,
            Phase::Cleaner,
            Phase::HeapMerge,
        ] {
            assert!(phases.contains(&phase), "missing {phase:?} span");
        }
        assert!(spans.iter().all(|s| s.end >= s.start));
        // Disabled by default: no spans vector at all.
        let r = Sparta.search(
            &ix,
            &q,
            &SearchConfig::exact(10),
            &DedicatedExecutor::new(2),
        );
        assert!(r.spans.is_none());
    }

    #[test]
    fn trace_events_cover_final_heap() {
        let ix = pseudo_index(2000, 3, 13);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(10).with_trace(true);
        let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(3));
        let trace = r.trace.expect("trace enabled");
        let traced: std::collections::HashSet<DocId> = trace.iter().map(|e| e.doc).collect();
        for h in &r.hits {
            assert!(traced.contains(&h.doc), "hit {} missing from trace", h.doc);
        }
    }
}
