//! Sparta's shared per-document record and upper-bound vector.

use sparta_corpus::types::DocId;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The paper's `DocType`: ⟨id, score[m], LB⟩ (Table 1).
///
/// `score[i]` is written **only** by the worker currently processing
/// term i ("at most one thread processes each term", §4.3), and read
/// by all; plain atomics with release/acquire ordering suffice — no
/// lock. `LB` is "updated in a lazy manner while holding the global
/// lock on docHeap" (§4.3), so it is only meaningful under that lock.
#[derive(Debug)]
pub struct DocType {
    /// Document id.
    pub id: DocId,
    scores: Box<[AtomicU32]>,
    /// Running Σᵢ score[i], maintained by [`set_score`](Self::set_score)
    /// so the per-posting `current_sum()` (Alg. 1 line 23) is one load
    /// instead of m. Safe without CAS loops because each score slot has
    /// exactly one writer (§4.3): the delta `new − old` each owner adds
    /// is exact for its own slot, and `fetch_add` makes the concurrent
    /// additions from different owners commute.
    sum: AtomicU64,
    lb: AtomicU64,
}

impl DocType {
    /// Creates a record for `id` with `m` zeroed term scores.
    pub fn new(id: DocId, m: usize) -> Self {
        Self {
            id,
            scores: (0..m).map(|_| AtomicU32::new(0)).collect(),
            sum: AtomicU64::new(0),
            lb: AtomicU64::new(0),
        }
    }

    /// Number of term slots.
    pub fn arity(&self) -> usize {
        self.scores.len()
    }

    /// Sets term i's score (owner thread only) and folds the delta into
    /// the running sum. Two's-complement wrapping makes the delta
    /// correct even when a score is revised downward.
    #[inline]
    pub fn set_score(&self, i: usize, score: u32) {
        // ordering: both RMWs are AcqRel so the running sum stays a (model: doc_slab_publish)
        // *publication point*: a thread that Acquire-loads `sum` in
        // current_sum() and observes this delta also observes the score
        // swap that produced it (release sequence through the two
        // RMWs). Relaxed here would let the Alg. 1 line 23 filter read
        // a sum whose constituent score is not yet visible.
        let old = self.scores[i].swap(score, Ordering::AcqRel);
        let delta = u64::from(score).wrapping_sub(u64::from(old));
        self.sum.fetch_add(delta, Ordering::AcqRel);
    }

    /// Term i's score so far (0 = not yet seen).
    #[inline]
    pub fn score(&self, i: usize) -> u32 {
        self.scores[i].load(Ordering::Acquire)
    }

    /// Sum of the known term scores — the document's lower bound
    /// (Alg. 1 line 23 / 31). One atomic load of the running sum.
    #[inline]
    pub fn current_sum(&self) -> u64 {
        self.sum.load(Ordering::Acquire)
    }

    /// The lazily cached LB (valid under the heap lock).
    #[inline]
    pub fn lb(&self) -> u64 {
        self.lb.load(Ordering::Acquire)
    }

    /// Stores the recomputed LB (heap lock held).
    #[inline]
    pub fn set_lb(&self, lb: u64) {
        self.lb.store(lb, Ordering::Release);
    }

    /// Upper bound `UB(D) = Σᵢ (score[i] > 0 ? score[i] : UB[i])`
    /// (Table 1).
    pub fn ub(&self, ub: &SharedUb) -> u64 {
        self.ub_scaled(ub, 1.0)
    }

    /// Probabilistically *estimated* bound: unknown term contributions
    /// count as `γ·UB[i]` (γ = 1 gives the safe bound). The basis of
    /// the probabilistic-pruning extension (§6 future work).
    pub fn ub_scaled(&self, ub: &SharedUb, gamma: f64) -> u64 {
        self.scores
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let v = s.load(Ordering::Acquire);
                if v > 0 {
                    u64::from(v)
                } else if gamma >= 1.0 {
                    ub.get(i)
                } else {
                    (ub.get(i) as f64 * gamma) as u64
                }
            })
            .sum()
    }
}

/// The shared `UB[m]` vector (Table 1, init ∞). Entry i is written
/// only by the worker owning term i — at the **end of each segment**,
/// not per posting, to keep other workers' cached copies valid longer
/// ("instead of updating UB after each document evaluation, the
/// workers update it at the end of a segment traversal", §4.3).
#[derive(Debug)]
pub struct SharedUb {
    ub: Box<[AtomicU64]>,
}

impl SharedUb {
    /// Creates bounds for `m` terms, all ∞ (`u32::MAX` suffices: no
    /// term score exceeds it).
    pub fn new(m: usize) -> Self {
        Self {
            ub: (0..m)
                .map(|_| AtomicU64::new(u64::from(u32::MAX)))
                .collect(),
        }
    }

    /// UB[i].
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.ub[i].load(Ordering::Acquire)
    }

    /// Sets UB[i] to the last traversed score (segment end).
    #[inline]
    pub fn set(&self, i: usize, score: u32) {
        self.ub[i].store(u64::from(score), Ordering::Release);
    }

    /// Marks term i exhausted: no untraversed postings remain.
    #[inline]
    pub fn exhaust(&self, i: usize) {
        self.ub[i].store(0, Ordering::Release);
    }

    /// Σᵢ UB[i].
    #[inline]
    pub fn sum(&self) -> u64 {
        self.ub.iter().map(|u| u.load(Ordering::Acquire)).sum()
    }

    /// Equation 1: Σᵢ UB[i] ≤ Θ.
    #[inline]
    pub fn ub_stop(&self, theta: u64) -> bool {
        self.sum() <= theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_type_scores_and_sum() {
        let d = DocType::new(7, 3);
        assert_eq!(d.arity(), 3);
        assert_eq!(d.current_sum(), 0);
        d.set_score(0, 11);
        d.set_score(2, 41);
        assert_eq!(d.score(0), 11);
        assert_eq!(d.score(1), 0);
        assert_eq!(d.current_sum(), 52);
        d.set_lb(52);
        assert_eq!(d.lb(), 52);
    }

    #[test]
    fn running_sum_tracks_revisions() {
        let d = DocType::new(3, 2);
        d.set_score(0, 50);
        assert_eq!(d.current_sum(), 50);
        // Downward revision: the wrapping delta must subtract cleanly.
        d.set_score(0, 20);
        assert_eq!(d.current_sum(), 20);
        d.set_score(1, 5);
        assert_eq!(d.current_sum(), 25);
    }

    #[test]
    fn figure_1_doc_ub() {
        // UB = [38, 32, 41]; D57 knows terms 2 and 3 (40, 41).
        let ub = SharedUb::new(3);
        ub.set(0, 38);
        ub.set(1, 32);
        ub.set(2, 41);
        let d = DocType::new(57, 3);
        d.set_score(1, 40);
        d.set_score(2, 41);
        assert_eq!(d.ub(&ub), 38 + 40 + 41);
    }

    #[test]
    fn shared_ub_starts_infinite_and_stops_on_exhaustion() {
        let ub = SharedUb::new(2);
        assert!(!ub.ub_stop(u64::from(u32::MAX)), "2·MAX > MAX");
        ub.set(0, 10);
        ub.exhaust(1);
        assert_eq!(ub.sum(), 10);
        assert!(ub.ub_stop(10));
        assert!(!ub.ub_stop(9));
    }

    #[test]
    fn scaled_ub_discounts_unknown_terms_only() {
        let ub = SharedUb::new(3);
        ub.set(0, 100);
        ub.set(1, 100);
        ub.set(2, 100);
        let d = DocType::new(1, 3);
        d.set_score(0, 40);
        // Known score counts fully; two unknowns at γ = 0.5.
        assert_eq!(d.ub_scaled(&ub, 0.5), 40 + 50 + 50);
        assert_eq!(d.ub_scaled(&ub, 1.0), d.ub(&ub));
        assert_eq!(d.ub(&ub), 240);
    }

    #[test]
    fn concurrent_owner_writes_are_visible() {
        use std::sync::Arc;
        let d = Arc::new(DocType::new(1, 4));
        std::thread::scope(|s| {
            for i in 0..4usize {
                let d = Arc::clone(&d);
                s.spawn(move || d.set_score(i, (i as u32 + 1) * 10));
            }
        });
        assert_eq!(d.current_sum(), 10 + 20 + 30 + 40);
    }
}
