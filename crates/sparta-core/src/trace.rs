//! Heap tracing for recall-dynamics analysis (Figures 3f/3g).
//!
//! "In order to understand how the top-k results get accrued by the
//! different algorithms, we zoom in on the dynamics of query recall
//! over the running time" (§5.3). Algorithms record an event whenever
//! a document enters (or improves within) their result heap; replaying
//! the events against the exact top-k reconstructs recall as a
//! function of elapsed time, uniformly across algorithm families
//! (global heaps, pBMW's thread-local heaps, pJASS's accumulators).

use parking_lot::Mutex;
use sparta_corpus::types::DocId;
use sparta_obs::{ClockMode, ObsClock};
use std::collections::HashMap;
use std::time::Duration;

/// One candidate event: at `at` (since query start), `doc`'s tracked
/// score became `score`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Time since query start.
    pub at: Duration,
    /// Document.
    pub doc: DocId,
    /// The document's score (or lower bound) at that moment.
    pub score: u64,
}

/// A concurrent event sink. Disabled sinks are free (one branch).
///
/// Timestamps come from an injectable [`ObsClock`]: the default is
/// wall-clock nanoseconds since the sink was created (comparable to
/// measured latencies), while [`ClockMode::Logical`] stamps events
/// with a monotone step counter, so a trace replayed under the
/// deterministic executor is bit-identical for a given seed.
pub struct TraceSink {
    clock: ObsClock,
    events: Option<Mutex<Vec<TraceEvent>>>,
}

impl TraceSink {
    /// Creates a wall-clock sink; `enabled = false` makes `record` a
    /// no-op.
    pub fn new(enabled: bool) -> Self {
        Self::with_clock(enabled, ClockMode::Wall)
    }

    /// Creates a sink recording against the given clock mode.
    pub fn with_clock(enabled: bool, mode: ClockMode) -> Self {
        Self {
            clock: ObsClock::new(mode),
            events: enabled.then(|| Mutex::new(Vec::new())),
        }
    }

    /// Whether events are being collected.
    pub fn enabled(&self) -> bool {
        self.events.is_some()
    }

    /// The clock events are stamped with.
    pub fn clock(&self) -> &ObsClock {
        &self.clock
    }

    /// Records `doc` reaching `score`.
    ///
    /// Every 256th event per sink also mirrors to the flight recorder
    /// as a `ScoreMark` (payload = doc id), giving `--emit-trace`
    /// timelines sparse heap-progress markers without flooding the
    /// fixed-capacity rings. The sampling is by in-sink ordinal, so a
    /// deterministic schedule marks the same documents every run.
    #[inline]
    pub fn record(&self, doc: DocId, score: u64) {
        if let Some(events) = &self.events {
            let at = self.clock.tick_duration();
            let mut guard = events.lock();
            guard.push(TraceEvent { at, doc, score });
            let n = guard.len();
            drop(guard);
            if n & 0xff == 1 {
                sparta_obs::recorder::record(sparta_obs::EventKind::ScoreMark, u64::from(doc));
            }
        }
    }

    /// Extracts the recorded events, sorted by time (under a logical
    /// clock ticks are unique, so the order is total and the sorted
    /// vector deterministic for a deterministic schedule).
    pub fn into_events(self) -> Option<Vec<TraceEvent>> {
        self.events.map(|m| {
            let mut v = m.into_inner();
            v.sort_by_key(|e| (e.at, e.doc, e.score));
            v
        })
    }
}

/// Replays a trace: at each sampling instant, reconstructs the top-k
/// candidate set implied by the events so far (best score per doc) and
/// reports `f(candidate_docs)` — typically a recall computation.
///
/// Returns `(t, f(set at t))` for each of `samples` evenly spaced
/// instants in `[0, horizon]`.
pub fn replay<F: FnMut(&[DocId]) -> f64>(
    events: &[TraceEvent],
    k: usize,
    horizon: Duration,
    samples: usize,
    mut f: F,
) -> Vec<(Duration, f64)> {
    assert!(samples >= 1);
    let mut out = Vec::with_capacity(samples);
    let mut best: HashMap<DocId, u64> = HashMap::new();
    let mut i = 0;
    for s in 1..=samples {
        let t = horizon.mul_f64(s as f64 / samples as f64);
        while i < events.len() && events[i].at <= t {
            let e = events[i];
            let slot = best.entry(e.doc).or_insert(0);
            *slot = (*slot).max(e.score);
            i += 1;
        }
        // Top-k of the candidate set by tracked score.
        let mut heap = sparta_collections::BoundedTopK::new(k.max(1));
        for (&d, &s) in &best {
            heap.offer(s, d);
        }
        let docs: Vec<DocId> = heap.sorted_entries().iter().map(|e| e.item).collect();
        out.push((t, f(&docs)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let s = TraceSink::new(false);
        s.record(1, 10);
        assert!(!s.enabled());
        assert!(s.into_events().is_none());
    }

    #[test]
    fn enabled_sink_collects_sorted() {
        let s = TraceSink::new(true);
        s.record(1, 10);
        s.record(2, 20);
        let ev = s.into_events().unwrap();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].at <= ev[1].at);
        assert_eq!(ev[0].doc, 1);
    }

    #[test]
    fn replay_builds_incremental_topk() {
        let events = vec![
            TraceEvent {
                at: Duration::from_millis(1),
                doc: 1,
                score: 10,
            },
            TraceEvent {
                at: Duration::from_millis(2),
                doc: 2,
                score: 30,
            },
            TraceEvent {
                at: Duration::from_millis(8),
                doc: 3,
                score: 20,
            },
            TraceEvent {
                at: Duration::from_millis(9),
                doc: 1,
                score: 50,
            },
        ];
        // f = fraction of {1, 2} present in the set.
        let truth = [1u32, 2];
        let curve = replay(&events, 2, Duration::from_millis(10), 2, |docs| {
            truth.iter().filter(|t| docs.contains(t)).count() as f64 / truth.len() as f64
        });
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].1, 1.0, "at 5ms both 1 and 2 are present");
        // At 10ms doc 1 improved to 50, top-2 = {1, 2} still.
        assert_eq!(curve[1].1, 1.0);
    }

    #[test]
    fn replay_respects_k() {
        let events = vec![
            TraceEvent {
                at: Duration::from_millis(1),
                doc: 1,
                score: 10,
            },
            TraceEvent {
                at: Duration::from_millis(1),
                doc: 2,
                score: 30,
            },
            TraceEvent {
                at: Duration::from_millis(1),
                doc: 3,
                score: 20,
            },
        ];
        let curve = replay(&events, 1, Duration::from_millis(2), 1, |docs| {
            assert_eq!(docs.len(), 1, "only top-1 kept");
            f64::from(u32::from(docs[0] == 2))
        });
        assert_eq!(curve[0].1, 1.0);
    }

    #[test]
    fn logical_clock_sink_replays_identically() {
        let run = || {
            let s = TraceSink::with_clock(true, ClockMode::Logical);
            for i in 0..10u32 {
                s.record(i, u64::from(i) * 3);
            }
            s.into_events().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "logical-clock traces must be bit-identical");
        assert_eq!(a[0].at, Duration::from_nanos(0));
        assert_eq!(a[9].at, Duration::from_nanos(9));
    }

    #[test]
    fn concurrent_recording() {
        let s = std::sync::Arc::new(TraceSink::new(true));
        std::thread::scope(|sc| {
            for t in 0..4u32 {
                let s = std::sync::Arc::clone(&s);
                sc.spawn(move || {
                    for i in 0..100 {
                        s.record(t * 1000 + i, u64::from(i));
                    }
                });
            }
        });
        let s = std::sync::Arc::into_inner(s).unwrap();
        assert_eq!(s.into_events().unwrap().len(), 400);
    }
}
