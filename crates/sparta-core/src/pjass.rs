//! pJASS (Mackenzie, Scholer & Culpepper, ADCS'17): parallel
//! score-at-a-time retrieval (§5.2.1).
//!
//! "It traverses all posting lists in parallel, in score order, and
//! accumulates the encountered scores per-document in docMap. Each
//! document is protected by a lock, and a thread that encounters a
//! document locks it, adds the partial score from the term it
//! traversed, and then unlocks it. The algorithm stops after scanning
//! a predefined fraction, p, of postings."
//!
//! We realize "per-document lock" as an atomic accumulator reached
//! through a striped map — the same granularity, without a parked
//! mutex per document. The map is intentionally never pruned (the
//! paper contrasts pJASS's "huge in-memory document map" with Sparta's
//! cleaning, §6).

use crate::config::SearchConfig;
use crate::jass::posting_budget;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::shared_heap::SharedHeap;
use crate::sparta::open_cursor;
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::{BoundedTopK, ShardedCounter, StripedMap};
use sparta_corpus::types::{DocId, Query};
use sparta_exec::{Executor, JobQueue};
use sparta_index::{Index, ScoreCursor};
use sparta_obs::{Phase, QueryTrace};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The pJASS baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct PJass;

struct State {
    cfg: SearchConfig,
    acc: StripedMap<DocId, Arc<AtomicU64>>,
    scanned: ShardedCounter,
    budget: u64,
    done: AtomicBool,
    trace: TraceSink,
    spans: QueryTrace,
    /// Trace-only instrumentation: a small heap fed by accumulator
    /// updates so recall dynamics can be replayed. pJASS itself builds
    /// its heap only at the end; this exists only when tracing.
    trace_heap: Option<SharedHeap>,
}

impl State {
    #[inline]
    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

fn process_term(state: Arc<State>, queue: Arc<JobQueue>, mut cursor: Box<dyn ScoreCursor>) {
    if state.is_done() {
        return;
    }
    let seg_span = state.spans.span(Phase::TermProcess);
    let mut exhausted = false;
    for _ in 0..state.cfg.seg_size {
        if state.is_done() {
            return;
        }
        let Some(p) = cursor.next() else {
            exhausted = true;
            break;
        };
        state.scanned.incr();
        let slot = state
            .acc
            .get_or_insert_with(p.doc, || Arc::new(AtomicU64::new(0)));
        let new_total = slot.fetch_add(u64::from(p.score), Ordering::AcqRel) + u64::from(p.score);
        if let Some(th) = &state.trace_heap {
            th.offer(new_total, p.doc, &state.trace);
        }
        if state.scanned.get() >= state.budget {
            state.done.store(true, Ordering::Release);
            return;
        }
    }
    drop(seg_span); // the guard borrows `state`, which the continuation moves
    if !exhausted && !state.is_done() {
        let q = Arc::clone(&queue);
        queue.push(Box::new(move || process_term(state, q, cursor)));
    }
}

impl Algorithm for PJass {
    fn name(&self) -> &'static str {
        "pjass"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let total: u64 = query.terms.iter().map(|&t| index.doc_freq(t)).sum();
        let state = Arc::new(State {
            cfg: *cfg,
            acc: StripedMap::new(),
            scanned: ShardedCounter::new(),
            budget: posting_budget(total, cfg.jass_p),
            done: AtomicBool::new(false),
            trace: TraceSink::with_clock(cfg.trace, cfg.clock),
            spans: QueryTrace::new(cfg.spans, cfg.clock),
            trace_heap: cfg.trace.then(|| SharedHeap::new(cfg.k.max(1))),
        });
        let queue = JobQueue::new();
        {
            let _plan = state.spans.span(Phase::Plan);
            for &t in &query.terms {
                let cursor = open_cursor(index, t);
                let st = Arc::clone(&state);
                let q = Arc::clone(&queue);
                queue.push(Box::new(move || process_term(st, q, cursor)));
            }
        }
        exec.run(Arc::clone(&queue));

        // Final selection over the accumulator table.
        let merge_span = state.spans.span(Phase::HeapMerge);
        let mut heap = BoundedTopK::new(cfg.k.max(1));
        state.acc.for_each(|&d, s| {
            heap.offer(s.load(Ordering::Acquire), d);
        });
        let hits = finalize_hits(
            heap.into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        drop(merge_span);
        let work = WorkStats {
            postings_scanned: state.scanned.get(),
            random_accesses: 0,
            heap_updates: hits.len() as u64,
            docmap_peak: state.acc.len() as u64,
            cleaner_passes: 0,
            jobs_panicked: queue.panicked() as u64,
            jobs_recycled: queue.recycled() as u64,
            docmap_final: state.acc.len() as u64,
            timeout_stops: 0,
            ..WorkStats::default()
        };
        let state = Arc::into_inner(state).expect("all jobs drained");
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: state.trace.into_events(),
            spans: state.spans.into_spans(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jass::Jass;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    fn pseudo_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    .map(|d| {
                        let x = d
                            .wrapping_mul(2654435761)
                            .wrapping_add(t * 53 + seed)
                            .wrapping_mul(2246822519);
                        Posting::new(d, x % 4_000 + 1)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    #[test]
    fn exact_pjass_matches_oracle() {
        for threads in [1usize, 4] {
            let ix = pseudo_index(3000, 3, 1);
            let q = Query::new(vec![0, 1, 2]);
            let oracle = Oracle::compute(ix.as_ref(), &q, 10);
            let r = PJass.search(
                &ix,
                &q,
                &SearchConfig::exact(10),
                &DedicatedExecutor::new(threads),
            );
            assert_eq!(oracle.recall(&r.docs()), 1.0, "threads={threads}");
        }
    }

    #[test]
    fn p_budget_is_respected() {
        let ix = pseudo_index(10_000, 3, 2);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(10).with_jass_p(0.1).with_seg_size(64);
        let r = PJass.search(&ix, &q, &cfg, &DedicatedExecutor::new(3));
        let budget = 3000;
        assert!(
            r.work.postings_scanned >= budget && r.work.postings_scanned < budget + 3 * 64,
            "scanned {} for budget {budget}",
            r.work.postings_scanned
        );
    }

    #[test]
    fn exact_matches_sequential_jass_scores() {
        let ix = pseudo_index(2000, 3, 3);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(20);
        let seq = Jass.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        let par = PJass.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        assert_eq!(seq.scores(), par.scores());
    }

    #[test]
    fn accumulators_never_pruned() {
        let ix = pseudo_index(4000, 3, 4);
        let q = Query::new(vec![0, 1, 2]);
        let r = PJass.search(
            &ix,
            &q,
            &SearchConfig::exact(10),
            &DedicatedExecutor::new(2),
        );
        assert_eq!(r.work.docmap_peak, 4000, "every doc accumulated");
    }

    #[test]
    fn trace_mode_records_events() {
        let ix = pseudo_index(1000, 2, 5);
        let q = Query::new(vec![0, 1]);
        let cfg = SearchConfig::exact(10).with_trace(true);
        let r = PJass.search(&ix, &q, &cfg, &DedicatedExecutor::new(2));
        assert!(r.trace.unwrap().len() >= 10);
    }
}
