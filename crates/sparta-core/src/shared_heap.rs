//! A thread-shared top-k heap with threshold and update-time tracking.
//!
//! Used by the parallel algorithms that keep *full* document scores in
//! a common heap (pRA: "maintains its results in a shared heap",
//! §5.2.2) and as the merge target for thread-local results. Updates
//! are serialized by one lock (the paper protects `docHeap` and Θ "by
//! a shared lock, which serializes all updates", §4.3); Θ and the last
//! update time are mirrored into atomics so readers on the hot path
//! never take the lock.

use crate::trace::TraceSink;
use parking_lot::Mutex;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::DocId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared top-k heap over `(score, doc)` with lock-free Θ reads.
pub struct SharedHeap {
    heap: Mutex<BoundedTopK<DocId>>,
    /// Mirror of the heap's threshold (0 until full).
    theta: AtomicU64,
    /// Nanoseconds (since `start`) of the last successful update.
    upd_nanos: AtomicU64,
    start: Instant,
    updates: AtomicU64,
}

impl SharedHeap {
    /// Creates an empty heap of capacity `k`, stamping "now" as the
    /// query start.
    pub fn new(k: usize) -> Self {
        Self {
            heap: Mutex::new(BoundedTopK::new(k)),
            theta: AtomicU64::new(0),
            upd_nanos: AtomicU64::new(0),
            // lint: allow(wall-clock): baseline instant for the upd_nanos heap-update timing stat
            start: Instant::now(),
            updates: AtomicU64::new(0),
        }
    }

    /// Current threshold Θ (lock-free).
    #[inline]
    pub fn theta(&self) -> u64 {
        self.theta.load(Ordering::Acquire)
    }

    /// Offers `(score, doc)`. Returns whether the heap changed.
    /// Records into `trace` on change.
    pub fn offer(&self, score: u64, doc: DocId, trace: &TraceSink) -> bool {
        if score <= self.theta() {
            return false; // cheap pre-filter, no lock
        }
        let mut heap = self.heap.lock();
        let changed = heap.offer(score, doc);
        if changed {
            self.theta.store(heap.threshold(), Ordering::Release);
            drop(heap);
            self.upd_nanos
                .store(self.start.elapsed().as_nanos() as u64, Ordering::Release);
            self.updates.fetch_add(1, Ordering::Relaxed);
            trace.record(doc, score);
        }
        changed
    }

    /// Time since the last successful update (since creation if none).
    pub fn since_last_update(&self) -> Duration {
        let last = Duration::from_nanos(self.upd_nanos.load(Ordering::Acquire));
        self.start.elapsed().saturating_sub(last)
    }

    /// Number of successful updates.
    pub fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Number of documents currently held.
    pub fn len(&self) -> usize {
        self.heap.lock().len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot in rank order.
    pub fn sorted(&self) -> Vec<(u64, DocId)> {
        self.heap
            .lock()
            .sorted_entries()
            .iter()
            .map(|e| (e.score, e.item))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn theta_tracks_heap() {
        let h = SharedHeap::new(2);
        let t = TraceSink::new(false);
        assert!(h.offer(10, 1, &t));
        assert_eq!(h.theta(), 0, "not full");
        assert!(h.offer(20, 2, &t));
        assert_eq!(h.theta(), 10);
        assert!(!h.offer(5, 3, &t), "below threshold");
        assert!(h.offer(15, 4, &t));
        assert_eq!(h.theta(), 15);
        assert_eq!(h.sorted(), vec![(20, 2), (15, 4)]);
        assert_eq!(h.update_count(), 3);
    }

    #[test]
    // This test measures elapsed wall time, so it genuinely must sleep.
    #[allow(clippy::disallowed_methods)]
    fn update_time_advances() {
        let h = SharedHeap::new(1);
        let t = TraceSink::new(false);
        h.offer(1, 1, &t);
        let d1 = h.since_last_update();
        std::thread::sleep(Duration::from_millis(5));
        let d2 = h.since_last_update();
        assert!(d2 > d1);
        h.offer(2, 2, &t);
        assert!(h.since_last_update() < d2);
    }

    #[test]
    fn concurrent_offers_keep_true_topk() {
        let h = Arc::new(SharedHeap::new(50));
        let t = Arc::new(TraceSink::new(false));
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let h = Arc::clone(&h);
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..1000u32 {
                        let doc = w * 1000 + i;
                        h.offer(u64::from(doc % 997), doc, &t);
                    }
                });
            }
        });
        let got = h.sorted();
        assert_eq!(got.len(), 50);
        // The true top-50 scores of the union stream.
        let mut all: Vec<(u64, u32)> = (0..4u32)
            .flat_map(|w| {
                (0..1000u32).map(move |i| (u64::from((w * 1000 + i) % 997), w * 1000 + i))
            })
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        let want: Vec<(u64, u32)> = all.into_iter().take(50).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn trace_records_changes_only() {
        let h = SharedHeap::new(1);
        let t = TraceSink::new(true);
        h.offer(10, 1, &t);
        h.offer(5, 2, &t); // rejected
        h.offer(20, 3, &t);
        let ev = t.into_events().unwrap();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].doc, 1);
        assert_eq!(ev[1].doc, 3);
    }
}
