//! Recall helpers shared by tests and the benchmark harness.

use crate::oracle::Oracle;
use crate::trace::{replay, TraceEvent};
use sparta_corpus::types::DocId;
use std::time::Duration;

/// Tie-aware recall of `docs` against `oracle` (see
/// [`Oracle::recall`]).
pub fn recall_of_docs(oracle: &Oracle, docs: &[DocId]) -> f64 {
    oracle.recall(docs)
}

/// Recall-over-time curve for one traced run (Figures 3f/3g): for each
/// of `samples` instants in `[0, horizon]`, the recall of the top-k
/// candidate set implied by the trace so far.
pub fn recall_dynamics(
    events: &[TraceEvent],
    oracle: &Oracle,
    horizon: Duration,
    samples: usize,
) -> Vec<(Duration, f64)> {
    replay(events, oracle.k(), horizon, samples, |docs| {
        oracle.recall(docs)
    })
}

/// Time (if any) at which the curve first reaches `target` recall.
pub fn time_to_recall(curve: &[(Duration, f64)], target: f64) -> Option<Duration> {
    curve.iter().find(|(_, r)| *r >= target).map(|(t, _)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparta_corpus::types::Query;
    use sparta_index::{InMemoryIndex, Posting};

    #[test]
    fn dynamics_reach_full_recall() {
        let t0 = vec![
            Posting::new(0, 30),
            Posting::new(1, 20),
            Posting::new(2, 10),
        ];
        let ix = InMemoryIndex::from_term_postings(vec![t0], 5);
        let oracle = Oracle::compute(&ix, &Query::new(vec![0]), 2);
        let events = vec![
            TraceEvent {
                at: Duration::from_millis(1),
                doc: 2,
                score: 10,
            },
            TraceEvent {
                at: Duration::from_millis(2),
                doc: 0,
                score: 30,
            },
            TraceEvent {
                at: Duration::from_millis(6),
                doc: 1,
                score: 20,
            },
        ];
        let curve = recall_dynamics(&events, &oracle, Duration::from_millis(10), 5);
        assert_eq!(curve.len(), 5);
        // After 2ms: {2, 0} → recall 0.5; after 6ms: {0, 1} → 1.0.
        assert_eq!(curve[0].1, 0.5);
        assert_eq!(curve[4].1, 1.0);
        assert_eq!(
            time_to_recall(&curve, 1.0),
            Some(Duration::from_millis(6)),
            "first sample at/after the winning event"
        );
        assert_eq!(time_to_recall(&curve, 1.1), None);
    }
}
