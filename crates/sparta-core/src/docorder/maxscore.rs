//! MaxScore (Turtle & Flood 1995; Strohman et al. 2005): document-
//! order retrieval that partitions lists into *essential* and
//! *non-essential* by their maximum scores (§3.1 cites it among the
//! popular production algorithms).
//!
//! Lists are sorted by ascending max score; the longest prefix whose
//! cumulative bound is ≤ Θ is non-essential — no document found only
//! there can beat Θ. Candidates are driven from the essential lists;
//! non-essential scores are added lazily with early bailout.

use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_exec::Executor;
use sparta_index::Index;
use std::sync::Arc;
use std::time::Instant;

/// Sequential MaxScore.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxScore;

impl Algorithm for MaxScore {
    fn name(&self) -> &'static str {
        "maxscore"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        _exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let trace = TraceSink::new(cfg.trace);
        let mut work = WorkStats::default();

        // Sort lists by ascending max score; prefix_bounds[i] = sum of
        // max scores of lists 0..=i.
        let mut terms = query.terms.clone();
        terms.sort_by_key(|&t| index.max_score(t));
        let mut cursors: Vec<_> = terms
            .iter()
            .map(|&t| Arc::clone(index).doc_cursor_arc(t))
            .collect();
        let m = cursors.len();
        let prefix_bounds: Vec<u64> = cursors
            .iter()
            .scan(0u64, |acc, c| {
                *acc += u64::from(c.max_score());
                Some(*acc)
            })
            .collect();

        let mut heap = BoundedTopK::new(cfg.k.max(1));
        // First essential list index: lists below it cannot, together,
        // beat Θ.
        let mut first_essential = 0usize;

        loop {
            if first_essential >= m {
                break; // every list non-essential: nothing can beat Θ
            }
            // Next candidate: the minimum current doc among essentials.
            let mut cand: Option<DocId> = None;
            for c in cursors[first_essential..].iter() {
                if let Some(d) = c.doc() {
                    cand = Some(cand.map_or(d, |x: DocId| x.min(d)));
                }
            }
            let Some(d) = cand else { break };

            // Score essentials positioned on d.
            let mut score = 0u64;
            for c in cursors[first_essential..].iter_mut() {
                if c.doc() == Some(d) {
                    score += u64::from(c.score());
                    c.advance();
                    work.postings_scanned += 1;
                }
            }
            // Add non-essential lists in descending bound order,
            // bailing out as soon as even their full bounds cannot
            // lift the document over Θ.
            let theta = heap.threshold();
            for j in (0..first_essential).rev() {
                if score + prefix_bounds[j] <= theta {
                    score = 0; // cannot make it: suppress the offer
                    break;
                }
                if cursors[j].seek(d) == Some(d) {
                    score += u64::from(cursors[j].score());
                    work.postings_scanned += 1;
                }
            }
            if score > theta && heap.offer(score, d) {
                work.heap_updates += 1;
                trace.record(d, score);
                // Θ rose: recompute the essential split.
                let theta = heap.threshold();
                first_essential = prefix_bounds.partition_point(|&b| b <= theta);
            }
        }

        let hits = finalize_hits(
            heap.into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: trace.into_events(),
            spans: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docorder::wand::tests::pseudo_index;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;

    #[test]
    fn exact_maxscore_matches_oracle() {
        for seed in [2u32, 13, 77] {
            let ix = pseudo_index(4000, 4, seed);
            let q = Query::new(vec![0, 1, 2, 3]);
            let oracle = Oracle::compute(ix.as_ref(), &q, 10);
            let r = MaxScore.search(
                &ix,
                &q,
                &SearchConfig::exact(10),
                &DedicatedExecutor::new(1),
            );
            assert_eq!(oracle.recall(&r.docs()), 1.0, "seed {seed}: {:?}", r.docs());
        }
    }

    #[test]
    fn skips_non_essential_postings() {
        // One dominant list and one weak list: once Θ exceeds the weak
        // list's max, its postings are only probed by seek.
        let ix = pseudo_index(50_000, 3, 21);
        let q = Query::new(vec![0, 1, 2]);
        let r = MaxScore.search(
            &ix,
            &q,
            &SearchConfig::exact(10),
            &DedicatedExecutor::new(1),
        );
        let total: u64 = (0..3u32).map(|t| ix.doc_freq(t)).sum();
        assert!(r.work.postings_scanned < total);
        let oracle = Oracle::compute(ix.as_ref(), &q, 10);
        assert_eq!(oracle.recall(&r.docs()), 1.0);
    }

    #[test]
    fn single_list_degenerates_to_scan_prefix() {
        let ix = pseudo_index(1000, 1, 5);
        let q = Query::new(vec![0]);
        let oracle = Oracle::compute(ix.as_ref(), &q, 7);
        let r = MaxScore.search(&ix, &q, &SearchConfig::exact(7), &DedicatedExecutor::new(1));
        assert_eq!(oracle.recall(&r.docs()), 1.0);
    }
}
