//! Document-order ("document-at-a-time") top-k algorithms (§3.1):
//! WAND, Block-Max WAND (BMW), MaxScore, and the doc-sharded parallel
//! BMW (pBMW) used as the paper's best-in-class document-order
//! baseline.
//!
//! These algorithms "simultaneously scan all relevant posting lists in
//! order of document id, fully scoring each document before moving to
//! the next one", pruning with list-wide (WAND/MaxScore) or per-block
//! (BMW) score upper bounds.

pub mod bmw;
pub mod maxscore;
pub mod pbmw;
pub mod wand;

pub use bmw::SeqBmw;
pub use maxscore::MaxScore;
pub use pbmw::PBmw;
pub use wand::Wand;

use sparta_index::DocCursor;

/// Sorts cursor indexes by current document id (exhausted cursors
/// last). The WAND/BMW pivot scan relies on this ordering.
pub(crate) fn sort_by_doc(order: &mut [usize], cursors: &[Box<dyn DocCursor + '_>]) {
    order.sort_by_key(|&i| cursors[i].doc().map_or(u64::MAX, u64::from));
}

/// Computes the WAND pivot: the first position `p` in `order` such
/// that the cumulative list-wide upper bounds of cursors
/// `order[0..=p]` exceed `threshold`. Returns `None` when even the
/// full sum cannot beat it (search is over).
pub(crate) fn find_pivot(
    order: &[usize],
    cursors: &[Box<dyn DocCursor + '_>],
    threshold: u64,
) -> Option<usize> {
    let mut acc = 0u64;
    for (pos, &i) in order.iter().enumerate() {
        cursors[i].doc()?; // exhausted ⇒ all later ones exhausted too
        acc += u64::from(cursors[i].max_score());
        if acc > threshold {
            return Some(pos);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparta_index::{InMemoryIndex, Index, Posting};

    fn cursors() -> (InMemoryIndex, Vec<usize>) {
        let t0 = vec![Posting::new(5, 10)];
        let t1 = vec![Posting::new(2, 20)];
        let t2 = vec![Posting::new(9, 5)];
        (
            InMemoryIndex::from_term_postings(vec![t0, t1, t2], 10),
            vec![0, 1, 2],
        )
    }

    #[test]
    fn sort_by_doc_orders_heads() {
        let (ix, mut order) = cursors();
        let cs: Vec<_> = (0..3).map(|t| ix.doc_cursor(t)).collect();
        sort_by_doc(&mut order, &cs);
        assert_eq!(order, vec![1, 0, 2], "docs 2 < 5 < 9");
    }

    #[test]
    fn pivot_respects_threshold() {
        let (ix, mut order) = cursors();
        let cs: Vec<_> = (0..3).map(|t| ix.doc_cursor(t)).collect();
        sort_by_doc(&mut order, &cs);
        // Max scores in doc order: t1=20, t0=10, t2=5 (cumulative 20, 30, 35).
        assert_eq!(find_pivot(&order, &cs, 0), Some(0));
        assert_eq!(find_pivot(&order, &cs, 20), Some(1));
        assert_eq!(find_pivot(&order, &cs, 30), Some(2));
        assert_eq!(find_pivot(&order, &cs, 35), None, "unbeatable threshold");
    }

    #[test]
    fn pivot_skips_exhausted() {
        let (ix, mut order) = cursors();
        let mut cs: Vec<_> = (0..3).map(|t| ix.doc_cursor(t)).collect();
        cs[1].advance(); // exhaust t1 (single posting)
        sort_by_doc(&mut order, &cs);
        assert_eq!(find_pivot(&order, &cs, 14), Some(1), "10 + 5 = 15 > 14");
        assert_eq!(find_pivot(&order, &cs, 15), None);
    }
}
