//! Block-Max WAND (Ding & Suel, SIGIR'11): WAND with per-block upper
//! bounds, "us[ing] block-level statistics to prune the search"
//! (§5.2.1). The paper's selected block size is 64 postings.

use super::wand::wand_range;
use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_exec::Executor;
use sparta_index::Index;
use std::sync::Arc;
use std::time::Instant;

/// Sequential BMW.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqBmw;

impl Algorithm for SeqBmw {
    fn name(&self) -> &'static str {
        "bmw"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        _exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let trace = TraceSink::new(cfg.trace);
        let mut cursors: Vec<_> = query
            .terms
            .iter()
            .map(|&t| Arc::clone(index).doc_cursor_arc(t))
            .collect();
        let mut heap = BoundedTopK::new(cfg.k.max(1));
        let mut work = WorkStats::default();
        wand_range(
            &mut cursors,
            DocId::MAX,
            &mut heap,
            cfg.bmw_f,
            &|| 0,
            &mut work,
            &trace,
            true, // block-max pruning on
        );
        let hits = finalize_hits(
            heap.into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: trace.into_events(),
            spans: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docorder::wand::{tests::pseudo_index, Wand};
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;

    #[test]
    fn exact_bmw_matches_oracle() {
        for seed in [1u32, 7, 42] {
            let ix = pseudo_index(4000, 3, seed);
            let q = Query::new(vec![0, 1, 2]);
            let cfg = SearchConfig::exact(10);
            let oracle = Oracle::compute(ix.as_ref(), &q, 10);
            let r = SeqBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
            assert_eq!(oracle.recall(&r.docs()), 1.0, "seed {seed}");
        }
    }

    #[test]
    fn bmw_scores_no_more_than_wand() {
        let ix = pseudo_index(50_000, 3, 9);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(10);
        let bmw = SeqBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        let wand = Wand.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert!(
            bmw.work.postings_scanned <= wand.work.postings_scanned,
            "BMW {} > WAND {}",
            bmw.work.postings_scanned,
            wand.work.postings_scanned
        );
        // Same exact results.
        assert_eq!(bmw.docs(), wand.docs());
    }

    #[test]
    fn approximate_f_trades_recall_for_speed() {
        let ix = crate::docorder::wand::tests::correlated_index(50_000, 4, 11);
        let q = Query::new(vec![0, 1, 2, 3]);
        let oracle = Oracle::compute(ix.as_ref(), &q, 100);
        let exact = SeqBmw.search(
            &ix,
            &q,
            &SearchConfig::exact(100),
            &DedicatedExecutor::new(1),
        );
        let high = SeqBmw.search(
            &ix,
            &q,
            &SearchConfig::exact(100).with_bmw_f(1.1),
            &DedicatedExecutor::new(1),
        );
        let low = SeqBmw.search(
            &ix,
            &q,
            &SearchConfig::exact(100).with_bmw_f(1.5),
            &DedicatedExecutor::new(1),
        );
        assert_eq!(oracle.recall(&exact.docs()), 1.0);
        // Larger f ⇒ more pruning ⇒ fewer scored postings, lower or
        // equal recall — the paper's high/low trade-off. (The f values
        // achieving a given recall are corpus-dependent; the paper's
        // f = 5/10 on ClueWeb correspond to much smaller factors on
        // this small synthetic index, where Θ saturates quickly.)
        assert!(high.work.postings_scanned <= exact.work.postings_scanned);
        assert!(low.work.postings_scanned <= high.work.postings_scanned);
        let (rh, rl) = (oracle.recall(&high.docs()), oracle.recall(&low.docs()));
        assert!(rh >= rl, "f=1.1 recall {rh} < f=1.5 recall {rl}");
        assert!(rl < 1.0, "f=1.5 should actually approximate");
        // Absolute recall at a given f is corpus-dependent (this
        // synthetic index has a compressed top-score band, so even
        // small f cuts deep); only the trade-off direction is asserted.
    }
}
