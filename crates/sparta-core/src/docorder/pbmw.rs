//! pBMW — parallel Block-Max WAND by document-space sharding (§5.2.1,
//! following Rojas, Gil-Costa & Marin).
//!
//! "The algorithm partitions the execution of the sequential BMW among
//! multiple threads. Each thread handles a distinct subset of
//! documents, and computes a local top-k result. The algorithm then
//! merges the partial results … a job defines a range of document ids
//! to scan. We set the number of jobs to be twice the number of worker
//! threads … Each thread maintains a thread-local heap … Similarly,
//! each thread T maintains a local threshold Θ_T … Θ_T is at least the
//! lowest score in the local heap, but may be higher due to the
//! progress of other threads. Thread T periodically compares Θ to its
//! local Θ_T and promotes the smaller of the two to max(Θ_T, Θ)."

use super::wand::wand_range;
use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use parking_lot::Mutex;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_exec::{Executor, JobQueue};
use sparta_index::Index;
use sparta_obs::{Phase, QueryTrace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The pBMW baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct PBmw;

struct Shared {
    /// Global Θ: the maximum of the thresholds published by any range
    /// job so far — a valid lower bound on the global k-th score.
    theta: AtomicU64,
    merged: Mutex<BoundedTopK<DocId>>,
    work: Mutex<WorkStats>,
    trace: TraceSink,
    spans: QueryTrace,
}

impl Algorithm for PBmw {
    fn name(&self) -> &'static str {
        "pbmw"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        if query.terms.is_empty() {
            return TopKResult {
                hits: Vec::new(),
                elapsed: start.elapsed(),
                work: WorkStats::default(),
                trace: cfg.trace.then(Vec::new),
                spans: cfg.spans.then(Vec::new),
            };
        }
        let shared = Arc::new(Shared {
            theta: AtomicU64::new(0),
            merged: Mutex::new(BoundedTopK::new(cfg.k.max(1))),
            work: Mutex::new(WorkStats::default()),
            trace: TraceSink::with_clock(cfg.trace, cfg.clock),
            spans: QueryTrace::new(cfg.spans, cfg.clock),
        });
        // Twice as many equal ranges as workers (§5.2.1) — "this
        // partition results in well-balanced executions".
        let jobs = (2 * exec.parallelism()).max(1) as u64;
        let n = index.num_docs().max(1);
        let queue = JobQueue::new();
        let cfg = *cfg;
        let plan = shared.spans.span(Phase::Plan);
        for j in 0..jobs {
            let lo = (n * j / jobs) as DocId;
            let hi = (n * (j + 1) / jobs) as DocId;
            if lo == hi {
                continue;
            }
            let shared = Arc::clone(&shared);
            let index = Arc::clone(index);
            let terms = query.terms.clone();
            queue.push(Box::new(move || {
                let _span = shared.spans.span(Phase::RangeScan);
                run_range(&shared, &index, &terms, &cfg, lo, hi);
            }));
        }
        drop(plan);
        exec.run(queue);

        let merge_span = shared.spans.span(Phase::HeapMerge);
        let hits = finalize_hits(
            shared
                .merged
                .lock()
                .sorted_entries()
                .iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        drop(merge_span);
        let work = *shared.work.lock();
        let shared = Arc::into_inner(shared).expect("all range jobs drained");
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: shared.trace.into_events(),
            spans: shared.spans.into_spans(),
        }
    }
}

/// One range job: BMW over docs `[lo, hi)` with a thread-local heap,
/// seeded and periodically refreshed from the global Θ.
fn run_range(
    shared: &Shared,
    index: &Arc<dyn Index>,
    terms: &[u32],
    cfg: &SearchConfig,
    lo: DocId,
    hi: DocId,
) {
    let mut cursors: Vec<_> = terms
        .iter()
        .map(|&t| Arc::clone(index).doc_cursor_arc(t))
        .collect();
    for c in cursors.iter_mut() {
        c.seek(lo);
    }
    let mut local = BoundedTopK::new(cfg.k.max(1));
    let mut work = WorkStats::default();
    // The floor closure reads the shared Θ on every pivot selection —
    // our "periodic" promotion is per-pivot, the natural granularity
    // of the WAND loop.
    wand_range(
        &mut cursors,
        hi,
        &mut local,
        cfg.bmw_f,
        &|| shared.theta.load(Ordering::Acquire),
        &mut work,
        &shared.trace,
        true,
    );
    // Publish the local threshold: Θ ← max(Θ, Θ_T).
    shared.theta.fetch_max(local.threshold(), Ordering::AcqRel);
    // Merge the local top-k into the global result.
    {
        let mut merged = shared.merged.lock();
        for e in local.sorted_entries() {
            merged.offer(e.score, e.item);
        }
        shared.theta.fetch_max(merged.threshold(), Ordering::AcqRel);
    }
    // Full-field merge: a hand-rolled two-field sum here silently
    // dropped `blocks_skipped` (and would drop every future counter).
    shared.work.lock().merge(&work);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docorder::wand::tests::pseudo_index;
    use crate::docorder::SeqBmw;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;

    #[test]
    fn exact_pbmw_matches_oracle() {
        for threads in [1usize, 4] {
            let ix = pseudo_index(4000, 3, 6);
            let q = Query::new(vec![0, 1, 2]);
            let oracle = Oracle::compute(ix.as_ref(), &q, 10);
            let r = PBmw.search(
                &ix,
                &q,
                &SearchConfig::exact(10),
                &DedicatedExecutor::new(threads),
            );
            assert_eq!(oracle.recall(&r.docs()), 1.0, "threads={threads}");
            for h in &r.hits {
                assert_eq!(h.score, oracle.score(h.doc));
            }
        }
    }

    #[test]
    fn matches_sequential_bmw_results() {
        let ix = pseudo_index(10_000, 4, 8);
        let q = Query::new(vec![0, 1, 2, 3]);
        let cfg = SearchConfig::exact(20);
        let seq = SeqBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        let par = PBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        // Same score multiset (doc ties may differ at the boundary).
        assert_eq!(seq.scores(), par.scores());
    }

    #[test]
    fn range_jobs_cover_whole_corpus() {
        // A top doc in the last range must be found.
        let n = 10_000u32;
        let lists = vec![(0..n)
            .map(|d| sparta_index::Posting::new(d, if d == n - 1 { 9999 } else { 1 + d % 7 }))
            .collect()];
        let ix: Arc<dyn Index> = Arc::new(sparta_index::InMemoryIndex::from_term_postings(
            lists,
            u64::from(n),
        ));
        let q = Query::new(vec![0]);
        let r = PBmw.search(&ix, &q, &SearchConfig::exact(1), &DedicatedExecutor::new(3));
        assert_eq!(r.docs(), vec![n - 1]);
    }

    #[test]
    fn block_skips_survive_the_work_merge() {
        // Regression: run_range once merged only postings/heap counters
        // into the shared stats, so pBMW always reported
        // `blocks_skipped == 0` even while skipping. Compare against
        // sequential BMW, which skips on this index.
        let ix = pseudo_index(20_000, 4, 8);
        let q = Query::new(vec![0, 1, 2, 3]);
        let cfg = SearchConfig::exact(10);
        let seq = SeqBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert!(seq.work.blocks_skipped > 0, "seq BMW must skip here");
        for threads in [1usize, 4] {
            let par = PBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(threads));
            assert!(
                par.work.blocks_skipped > 0,
                "pBMW dropped its skip counter (threads={threads})"
            );
        }
    }

    #[test]
    fn shared_theta_reduces_work_vs_isolated_ranges() {
        // With f=1 both are exact; the shared threshold lets later
        // ranges prune using earlier ranges' results, so the parallel
        // run never scores more than 2×-jobs-isolated would. We just
        // sanity-check pBMW does not exceed sequential BMW's scored
        // postings by more than the sharding overhead factor.
        let ix = pseudo_index(50_000, 3, 10);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(10);
        let seq = SeqBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        let par = PBmw.search(&ix, &q, &cfg, &DedicatedExecutor::new(4));
        assert!(
            par.work.postings_scanned < seq.work.postings_scanned * 16,
            "par {} vs seq {}",
            par.work.postings_scanned,
            seq.work.postings_scanned
        );
    }
}
