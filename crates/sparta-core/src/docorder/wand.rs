//! WAND (Broder et al., CIKM'03): document-order retrieval with
//! list-wide upper-bound pruning.
//!
//! At each step the cursors are ordered by current document; the
//! *pivot* is the first position where the cumulative maximum scores
//! exceed Θ. Documents before the pivot cannot beat Θ and are skipped
//! wholesale with `seek`.

use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_exec::Executor;
use sparta_index::{DocCursor, Index};
use std::sync::Arc;
use std::time::Instant;

/// Sequential WAND.
#[derive(Debug, Default, Clone, Copy)]
pub struct Wand;

/// Runs WAND over pre-opened doc cursors, bounded to docs `< limit`
/// (pass `DocId::MAX` for the full corpus). `f ≥ 1` relaxes pruning
/// for the approximate variant (upper bounds must exceed `Θ·f`).
///
/// `theta_floor` supplies an external lower bound on the k-th score
/// (pBMW's promoted global Θ); pass a closure returning 0 when unused.
#[allow(clippy::too_many_arguments)]
pub(crate) fn wand_range(
    cursors: &mut [Box<dyn DocCursor + '_>],
    limit: DocId,
    heap: &mut BoundedTopK<DocId>,
    f: f64,
    theta_floor: &dyn Fn() -> u64,
    work: &mut WorkStats,
    trace: &TraceSink,
    use_block_max: bool,
) {
    let m = cursors.len();
    let mut order: Vec<usize> = (0..m).collect();
    loop {
        super::sort_by_doc(&mut order, cursors);
        let theta = heap.threshold().max(theta_floor());
        let pruned = (theta as f64 * f) as u64;
        let Some(pivot_pos) = super::find_pivot(&order, cursors, pruned) else {
            return;
        };
        let pivot_doc = cursors[order[pivot_pos]]
            .doc()
            .expect("pivot cursor non-exhausted");
        if pivot_doc >= limit {
            return;
        }

        if use_block_max {
            // BMW's block-max check: the *block-level* bounds of every
            // list that can contribute to the pivot document must also
            // beat the threshold. Lists beyond the pivot position that
            // are parked on the same document contribute real score,
            // so they are included (`last_pos`); omitting them would
            // under-estimate the pivot's potential and skip true hits.
            let mut last_pos = pivot_pos;
            while last_pos + 1 < m && cursors[order[last_pos + 1]].doc() == Some(pivot_doc) {
                last_pos += 1;
            }
            let mut block_sum = 0u64;
            let mut min_block_last = DocId::MAX;
            for &i in &order[..=last_pos] {
                if let Some((last, bmax)) = cursors[i].block_at(pivot_doc) {
                    block_sum += u64::from(bmax);
                    min_block_last = min_block_last.min(last);
                }
            }
            if block_sum <= pruned {
                // The aligned blocks cannot produce a winner: jump to
                // the first doc past the shallowest block boundary
                // (bounded by the next list's head).
                work.blocks_skipped += 1;
                let mut next = min_block_last.saturating_add(1);
                if last_pos + 1 < m {
                    if let Some(d) = cursors[order[last_pos + 1]].doc() {
                        next = next.min(d);
                    }
                }
                let next = next.max(pivot_doc.saturating_add(1));
                for &i in &order[..=last_pos] {
                    if cursors[i].doc().is_some_and(|d| d < next) {
                        cursors[i].seek(next);
                    }
                }
                continue;
            }
        }

        if cursors[order[0]].doc() == Some(pivot_doc) {
            // All lists up to the pivot are aligned: fully score the
            // pivot document.
            let mut score = 0u64;
            for cursor in cursors.iter_mut() {
                if cursor.doc() == Some(pivot_doc) {
                    score += u64::from(cursor.score());
                    cursor.advance();
                    work.postings_scanned += 1;
                }
            }
            if score > theta && heap.offer(score, pivot_doc) {
                work.heap_updates += 1;
                trace.record(pivot_doc, score);
            }
        } else {
            // Advance one of the leading lists up to the pivot; pick
            // the one with the largest upper bound (it skips the most).
            let lead = order[..pivot_pos]
                .iter()
                .copied()
                .filter(|&i| cursors[i].doc().is_some_and(|d| d < pivot_doc))
                .max_by_key(|&i| cursors[i].max_score())
                .expect("unaligned pivot implies a lagging cursor");
            cursors[lead].seek(pivot_doc);
        }
    }
}

impl Algorithm for Wand {
    fn name(&self) -> &'static str {
        "wand"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        _exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let trace = TraceSink::new(cfg.trace);
        let mut cursors: Vec<_> = query
            .terms
            .iter()
            .map(|&t| Arc::clone(index).doc_cursor_arc(t))
            .collect();
        let mut heap = BoundedTopK::new(cfg.k.max(1));
        let mut work = WorkStats::default();
        wand_range(
            &mut cursors,
            DocId::MAX,
            &mut heap,
            cfg.bmw_f,
            &|| 0,
            &mut work,
            &trace,
            false,
        );
        let hits = finalize_hits(
            heap.into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: trace.into_events(),
            spans: None,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    pub(crate) fn pseudo_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    .filter(|d| (d.wrapping_mul(97).wrapping_add(t)) % 3 != 0)
                    .map(|d| {
                        let x = d
                            .wrapping_mul(2654435761)
                            .wrapping_add(t * 61 + seed)
                            .wrapping_mul(2246822519);
                        // Heavy-tailed scores (like tf-idf): ~1% of
                        // postings score an order of magnitude higher.
                        let r = x % 1000;
                        let score = if r >= 990 { 10_000 + x % 5_000 } else { 1 + r };
                        Posting::new(d, score)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    #[test]
    fn exact_wand_matches_oracle() {
        let ix = pseudo_index(4000, 3, 3);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(10);
        let oracle = Oracle::compute(ix.as_ref(), &q, 10);
        let r = Wand.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert_eq!(oracle.recall(&r.docs()), 1.0);
        for h in &r.hits {
            assert_eq!(h.score, oracle.score(h.doc), "full scores");
        }
    }

    /// An index whose per-document quality is correlated across terms
    /// (as in real corpora, where relevant documents score high for
    /// several query terms). WAND-style pruning needs Θ to exceed
    /// partial sums of list maxima, which requires such correlation.
    pub(crate) fn correlated_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    // Sparse lists (~40% density, different docs per
                    // term): skipping requires that low-quality docs
                    // appear in few lists.
                    .filter(|d| d.wrapping_mul(2246822519).wrapping_add(t * 977) % 5 < 2)
                    .map(|d| {
                        let base = d.wrapping_mul(2654435761).wrapping_add(seed) % 500;
                        let noise = d
                            .wrapping_mul(2246822519)
                            .wrapping_add(t * 7919)
                            .wrapping_mul(3266489917)
                            % 100;
                        Posting::new(d, 1 + base + noise)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    #[test]
    fn wand_scores_fewer_postings_than_exhaustive() {
        let ix = correlated_index(50_000, 3, 4);
        let q = Query::new(vec![0, 1, 2]);
        let r = Wand.search(
            &ix,
            &q,
            &SearchConfig::exact(10),
            &DedicatedExecutor::new(1),
        );
        let total: u64 = (0..3u32).map(|t| ix.doc_freq(t)).sum();
        assert!(
            r.work.postings_scanned < total / 2,
            "scored {} of {total}",
            r.work.postings_scanned
        );
        let oracle = Oracle::compute(ix.as_ref(), &q, 10);
        assert_eq!(oracle.recall(&r.docs()), 1.0);
    }

    #[test]
    fn disjoint_lists_are_unioned() {
        // Documents appearing in a single list must still be scored
        // (top-k is disjunctive, not conjunctive).
        let t0 = vec![Posting::new(1, 100)];
        let t1 = vec![Posting::new(2, 90)];
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(vec![t0, t1], 5));
        let q = Query::new(vec![0, 1]);
        let r = Wand.search(&ix, &q, &SearchConfig::exact(2), &DedicatedExecutor::new(1));
        assert_eq!(r.docs(), vec![1, 2]);
    }

    #[test]
    fn relaxed_f_prunes_more() {
        let ix = pseudo_index(30_000, 3, 5);
        let q = Query::new(vec![0, 1, 2]);
        let exact = Wand.search(
            &ix,
            &q,
            &SearchConfig::exact(100),
            &DedicatedExecutor::new(1),
        );
        let relaxed = Wand.search(
            &ix,
            &q,
            &SearchConfig::exact(100).with_bmw_f(5.0),
            &DedicatedExecutor::new(1),
        );
        assert!(relaxed.work.postings_scanned < exact.work.postings_scanned);
    }
}
