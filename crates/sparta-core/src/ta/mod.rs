//! The Threshold Algorithm (Fagin, Lotem & Naor) in the IR setting
//! (§3.2): sequential NRA and RA over score-ordered posting lists.
//!
//! These are both baselines in their own right (the 1-thread points of
//! Figures 3h/3i) and substrates: [`snra`](crate::snra) runs
//! [`nra::run_nra`] per shard, and Sparta's stopping conditions are
//! NRA's.

pub mod nra;
pub mod ra;

pub use nra::SeqNra;
pub use ra::SeqRa;

/// Shared upper-bound state of an interleaved score-order traversal.
///
/// `UB[i]` bounds the term scores of documents not yet visited in term
/// i's posting list: the last traversed score, or ∞ before the first
/// posting, or 0 once the list is exhausted (nothing untraversed
/// remains).
#[derive(Debug, Clone)]
pub struct UpperBounds {
    ub: Vec<u64>,
    exhausted: Vec<bool>,
}

impl UpperBounds {
    /// Creates bounds for `m` terms, all ∞.
    pub fn new(m: usize) -> Self {
        Self {
            ub: vec![u64::from(u32::MAX); m],
            exhausted: vec![false; m],
        }
    }

    /// Records the last traversed score of term `i`.
    #[inline]
    pub fn update(&mut self, i: usize, score: u32) {
        self.ub[i] = u64::from(score);
    }

    /// Marks term `i`'s list exhausted (UB drops to 0).
    #[inline]
    pub fn exhaust(&mut self, i: usize) {
        self.ub[i] = 0;
        self.exhausted[i] = true;
    }

    /// Whether term `i`'s list is exhausted.
    #[inline]
    pub fn is_exhausted(&self, i: usize) -> bool {
        self.exhausted[i]
    }

    /// Whether every list is exhausted.
    pub fn all_exhausted(&self) -> bool {
        self.exhausted.iter().all(|&e| e)
    }

    /// Σᵢ UB[i].
    #[inline]
    pub fn sum(&self) -> u64 {
        self.ub.iter().sum()
    }

    /// UB[i].
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.ub[i]
    }

    /// The `UBStop` condition (Equation 1): Σᵢ UB[i] ≤ Θ. With Θ = 0
    /// (heap not yet full) this only fires when every list is
    /// exhausted — the degenerate "fewer than k matches" case.
    #[inline]
    pub fn ub_stop(&self, theta: u64) -> bool {
        self.sum() <= theta
    }

    /// Upper bound of a document given its known per-term scores
    /// (`0` = unknown): known score where available, UB[i] otherwise.
    pub fn doc_ub(&self, scores: &[u32]) -> u64 {
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| if s > 0 { u64::from(s) } else { self.ub[i] })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bounds_are_infinite() {
        let ub = UpperBounds::new(3);
        assert!(ub.sum() >= 3 * u64::from(u32::MAX));
        assert!(!ub.ub_stop(1_000_000));
    }

    #[test]
    fn figure_1_worked_example() {
        // Figure 1: UB = [38, 32, 41]; for D57 the known scores are
        // (unknown, 40, 41) ⇒ UB(D57) = 38+40+41 = 119.
        let mut ub = UpperBounds::new(3);
        ub.update(0, 38);
        ub.update(1, 32);
        ub.update(2, 41);
        assert_eq!(ub.sum(), 111);
        assert_eq!(ub.doc_ub(&[0, 40, 41]), 119);
        // LB(D57) = 0+40+41 = 81 (lower bounds are just known sums).
        assert_eq!([0u64, 40, 41].iter().sum::<u64>(), 81);
    }

    #[test]
    fn exhaustion_zeroes_bounds() {
        let mut ub = UpperBounds::new(2);
        ub.update(0, 10);
        ub.exhaust(1);
        assert_eq!(ub.sum(), 10);
        assert!(!ub.all_exhausted());
        ub.exhaust(0);
        assert!(ub.all_exhausted());
        assert!(ub.ub_stop(0), "all exhausted stops even with Θ = 0");
    }

    #[test]
    fn ub_stop_thresholding() {
        let mut ub = UpperBounds::new(2);
        ub.update(0, 30);
        ub.update(1, 20);
        assert!(!ub.ub_stop(49));
        assert!(ub.ub_stop(50));
    }
}
