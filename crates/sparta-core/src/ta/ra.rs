//! Sequential Random-Access TA (§3.2).
//!
//! RA "computes the full score for every document it encounters" via
//! the secondary index, inserts it into the heap if it beats Θ, and
//! stops when `UBStop` (Equation 1) holds. Random access is costly by
//! design — on disk-resident indexes every lookup is an I/O request.

use super::UpperBounds;
use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_exec::Executor;
use sparta_index::Index;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Postings between Δ-timeout checks.
const DELTA_CHECK_EVERY: u64 = 1024;

/// Sequential RA as an [`Algorithm`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqRa;

impl Algorithm for SeqRa {
    fn name(&self) -> &'static str {
        "ra"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        _exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let trace = TraceSink::new(cfg.trace);
        let ra = index
            .random_access()
            .expect("RA requires an index with a secondary index");
        let m = query.terms.len();
        let mut cursors: Vec<_> = query.terms.iter().map(|&t| index.score_cursor(t)).collect();
        let mut ub = UpperBounds::new(m);
        let mut heap: BoundedTopK<DocId> = BoundedTopK::new(cfg.k);
        let mut seen: HashSet<DocId> = HashSet::new();
        let mut work = WorkStats::default();
        // lint: allow(wall-clock): sequential-baseline stall timeout (no queue to park on)
        let mut last_change = Instant::now();
        let mut since_check = 0u64;

        'outer: while !ub.all_exhausted() {
            for (i, cursor) in cursors.iter_mut().enumerate() {
                if ub.is_exhausted(i) {
                    continue;
                }
                let Some(p) = cursor.next() else {
                    ub.exhaust(i);
                    continue;
                };
                work.postings_scanned += 1;
                since_check += 1;
                ub.update(i, p.score);

                if seen.insert(p.doc) {
                    // Full scoring: one random access per *other* term
                    // (this term's score came from the posting).
                    let mut full = u64::from(p.score);
                    for (j, &t) in query.terms.iter().enumerate() {
                        if j != i {
                            full += u64::from(ra.term_score(t, p.doc));
                            work.random_accesses += 1;
                        }
                    }
                    work.docmap_peak = work.docmap_peak.max(seen.len() as u64);
                    if full > heap.threshold() && heap.offer(full, p.doc) {
                        work.heap_updates += 1;
                        // lint: allow(wall-clock): sequential-baseline stall timeout (no queue to park on)
                        last_change = Instant::now();
                        trace.record(p.doc, full);
                    }
                }

                // RA's stopping detection is lightweight (§5.2.2):
                // check UBStop after every posting.
                if ub.ub_stop(heap.threshold()) {
                    break 'outer;
                }
                if since_check >= DELTA_CHECK_EVERY {
                    since_check = 0;
                    if let Some(delta) = cfg.delta {
                        if heap.is_full() && last_change.elapsed() >= delta {
                            break 'outer;
                        }
                    }
                }
            }
        }

        let hits = finalize_hits(
            heap.into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: trace.into_events(),
            spans: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    fn small_index() -> Arc<dyn Index> {
        let mk = |mul: u32, off: u32| -> Vec<Posting> {
            (0..50u32)
                .map(|d| Posting::new(d, (d * mul + off) % 101 + 1))
                .collect()
        };
        Arc::new(InMemoryIndex::from_term_postings(
            vec![mk(7, 3), mk(13, 11), mk(29, 5)],
            50,
        ))
    }

    #[test]
    fn exact_ra_returns_exact_scores() {
        let ix = small_index();
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(5);
        let oracle = Oracle::compute(ix.as_ref(), &q, 5);
        let r = SeqRa.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert_eq!(oracle.recall(&r.docs()), 1.0);
        // RA reports *full* scores, matching the oracle exactly.
        for h in &r.hits {
            assert_eq!(h.score, oracle.score(h.doc), "doc {}", h.doc);
        }
        assert!(r.work.random_accesses > 0);
    }

    #[test]
    fn ra_stops_early_on_skewed_lists() {
        let n = 50_000u32;
        let lists: Vec<Vec<Posting>> = (0..2)
            .map(|t| {
                (0..n)
                    .map(|d| {
                        Posting::new(
                            d,
                            if d < 5 {
                                1_000_000 - d
                            } else {
                                1 + (d + t) % 40
                            },
                        )
                    })
                    .collect()
            })
            .collect();
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)));
        let q = Query::new(vec![0, 1]);
        let r = SeqRa.search(&ix, &q, &SearchConfig::exact(5), &DedicatedExecutor::new(1));
        let oracle = Oracle::compute(ix.as_ref(), &q, 5);
        assert_eq!(oracle.recall(&r.docs()), 1.0);
        assert!(
            r.work.postings_scanned < u64::from(n),
            "scanned {}",
            r.work.postings_scanned
        );
    }

    #[test]
    fn duplicate_encounters_scored_once() {
        let ix = small_index();
        let q = Query::new(vec![0, 1, 2]);
        // Every doc appears in all 3 lists; with exhaustive traversal
        // RA must perform exactly (m-1) lookups per distinct doc.
        let cfg = SearchConfig::exact(50); // k = all docs: no early stop
        let r = SeqRa.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert_eq!(r.work.random_accesses, 50 * 2);
        assert_eq!(r.hits.len(), 50);
    }
}
