//! Sequential No-Random-Access TA (§3.2).
//!
//! NRA interleaves the m posting lists in score order, maintaining
//! per-candidate partial scores. The heap is ordered by document
//! *lower bounds*; the safe variant stops when (1) `UBStop` holds and
//! (2) every traversed non-heap candidate has an upper bound ≤ Θ.
//! Condition (2) is detected the way Sparta's cleaner does it: prune
//! dead candidates periodically and stop once the candidate map is the
//! same size as the heap.

use super::UpperBounds;
use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::trace::TraceSink;
use crate::Algorithm;
use sparta_collections::MutableTopK;
use sparta_corpus::types::{DocId, Query};
use sparta_exec::Executor;
use sparta_index::{Index, ScoreCursor};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How many postings between stopping-condition / pruning sweeps.
/// Sweeps are O(|candidates|), so they are amortized over many O(1)
/// posting steps.
const SWEEP_EVERY: u64 = 4096;

/// Runs sequential NRA over pre-opened score cursors (`cursors[i]` for
/// query term i). Shared with sNRA, which calls this once per shard.
pub fn run_nra(
    mut cursors: Vec<Box<dyn ScoreCursor + '_>>,
    cfg: &SearchConfig,
    trace: &TraceSink,
) -> (Vec<SearchHit>, WorkStats) {
    let m = cursors.len();
    let mut ub = UpperBounds::new(m);
    let mut candidates: HashMap<DocId, Vec<u32>> = HashMap::new();
    let mut heap: MutableTopK<DocId> = MutableTopK::new(cfg.k);
    let mut work = WorkStats::default();
    // lint: allow(wall-clock): sequential-baseline stall timeout (no queue to park on)
    let mut last_heap_change = Instant::now();
    let mut since_sweep = 0u64;

    'outer: loop {
        if ub.all_exhausted() {
            break;
        }
        for i in 0..m {
            if ub.is_exhausted(i) {
                continue;
            }
            let Some(p) = cursors[i].next() else {
                ub.exhaust(i);
                continue;
            };
            work.postings_scanned += 1;
            since_sweep += 1;
            ub.update(i, p.score);

            let theta = heap.threshold();
            let ub_stop = ub.ub_stop(theta);
            match candidates.get_mut(&p.doc) {
                Some(scores) => {
                    scores[i] = p.score;
                    let lb: u64 = scores.iter().map(|&s| u64::from(s)).sum();
                    if heap.offer(lb, p.doc) {
                        work.heap_updates += 1;
                        // lint: allow(wall-clock): sequential-baseline stall timeout (no queue to park on)
                        last_heap_change = Instant::now();
                        trace.record(p.doc, lb);
                    }
                }
                None if !ub_stop => {
                    // New candidate (only while new documents can
                    // still make the top-k).
                    let mut scores = vec![0u32; m];
                    scores[i] = p.score;
                    let lb = u64::from(p.score);
                    if heap.offer(lb, p.doc) {
                        work.heap_updates += 1;
                        // lint: allow(wall-clock): sequential-baseline stall timeout (no queue to park on)
                        last_heap_change = Instant::now();
                        trace.record(p.doc, lb);
                    }
                    candidates.insert(p.doc, scores);
                    work.docmap_peak = work.docmap_peak.max(candidates.len() as u64);
                }
                None => {}
            }

            if since_sweep >= SWEEP_EVERY {
                since_sweep = 0;
                if let Some(delta) = cfg.delta {
                    if heap.is_full() && last_heap_change.elapsed() >= delta {
                        break 'outer;
                    }
                }
                let theta = heap.threshold();
                if ub.ub_stop(theta) {
                    // Prune candidates that can no longer enter the
                    // heap (condition 2 bookkeeping).
                    candidates.retain(|d, scores| heap.contains(d) || ub.doc_ub(scores) > theta);
                    if candidates.len() == heap.len() {
                        break 'outer; // Equation 2 holds
                    }
                }
            }
        }
    }

    let hits = finalize_hits(
        heap.sorted()
            .into_iter()
            .map(|(score, doc)| SearchHit { doc, score })
            .collect(),
        cfg.k,
    );
    (hits, work)
}

/// Sequential NRA as an [`Algorithm`] (ignores the executor's
/// parallelism — it always runs on the calling thread).
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqNra;

impl Algorithm for SeqNra {
    fn name(&self) -> &'static str {
        "nra"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        _exec: &dyn Executor,
    ) -> TopKResult {
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let trace = TraceSink::new(cfg.trace);
        let cursors: Vec<_> = query.terms.iter().map(|&t| index.score_cursor(t)).collect();
        let (hits, work) = run_nra(cursors, cfg, &trace);
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: trace.into_events(),
            spans: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::{InMemoryIndex, Posting};

    fn small_index() -> Arc<dyn Index> {
        // 3 terms, 30 docs, deterministic scores.
        let mk = |mul: u32, off: u32| -> Vec<Posting> {
            (0..30u32)
                .map(|d| Posting::new(d, (d * mul + off) % 97 + 1))
                .collect()
        };
        Arc::new(InMemoryIndex::from_term_postings(
            vec![mk(7, 3), mk(13, 11), mk(29, 5)],
            30,
        ))
    }

    #[test]
    fn exact_nra_returns_true_topk_set() {
        let ix = small_index();
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(5);
        let oracle = Oracle::compute(ix.as_ref(), &q, 5);
        let r = SeqNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert_eq!(r.hits.len(), 5);
        assert_eq!(oracle.recall(&r.docs()), 1.0, "docs {:?}", r.docs());
        // Lower bounds never exceed true scores.
        for h in &r.hits {
            assert!(h.score <= oracle.score(h.doc));
        }
    }

    #[test]
    fn handles_fewer_matches_than_k() {
        let t0 = vec![Posting::new(3, 10), Posting::new(7, 20)];
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(vec![t0], 10));
        let q = Query::new(vec![0]);
        let cfg = SearchConfig::exact(5);
        let r = SeqNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert_eq!(r.docs(), vec![7, 3]);
    }

    #[test]
    fn single_term_query_is_prefix_of_list() {
        let ix = small_index();
        let q = Query::new(vec![1]);
        let cfg = SearchConfig::exact(3);
        let oracle = Oracle::compute(ix.as_ref(), &q, 3);
        let r = SeqNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert_eq!(oracle.recall(&r.docs()), 1.0);
        // For m = 1, LB = true score.
        for h in &r.hits {
            assert_eq!(h.score, oracle.score(h.doc));
        }
    }

    #[test]
    fn early_stops_before_scanning_everything() {
        // One dominant doc per term; k=1 must stop early.
        let n = 100_000u32;
        let lists: Vec<Vec<Posting>> = (0..2)
            .map(|t| {
                (0..n)
                    .map(|d| Posting::new(d, if d == 42 { 1_000_000 } else { 1 + (d + t) % 50 }))
                    .collect()
            })
            .collect();
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)));
        let q = Query::new(vec![0, 1]);
        let cfg = SearchConfig::exact(1);
        let r = SeqNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert_eq!(r.docs(), vec![42]);
        assert!(
            r.work.postings_scanned < u64::from(n), // far less than 2n total
            "scanned {} of {}",
            r.work.postings_scanned,
            2 * n
        );
    }

    #[test]
    fn trace_is_recorded_when_enabled() {
        let ix = small_index();
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(5).with_trace(true);
        let r = SeqNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        let tr = r.trace.expect("trace requested");
        assert!(tr.len() as u64 >= 5);
    }
}
